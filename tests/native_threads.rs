//! Cross-crate integration on real threads: elections, failover, and
//! replication, driven by scenarios through the thread backend.

use std::sync::Arc;
use std::time::Duration;

use omega_shm::consensus::{KvCommand, LogHandle, LogShared};
use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::{Driver, Scenario, ThreadDriver};

const WINDOW: Duration = Duration::from_millis(40);
const DEADLINE: Duration = Duration::from_secs(15);

/// 150k ticks × 100 µs/tick = a 15 s wall-clock budget; the driver returns
/// as soon as the election settles.
fn scenario_for(variant: OmegaVariant, n: usize) -> Scenario {
    Scenario::fault_free(variant, n)
        .named(format!("native/{}/n{n}", variant.name()))
        .horizon(150_000)
}

#[test]
fn every_variant_elects_on_threads() {
    for variant in OmegaVariant::all() {
        let outcome = ThreadDriver::default().run(&scenario_for(variant, 3));
        assert!(outcome.stabilized, "{variant}: no election on threads");
        assert!(outcome.leader_is_correct(), "{variant}");
        assert!(
            outcome.steps.iter().all(|&s| s > 0),
            "{variant}: every node stepped"
        );
    }
}

#[test]
fn write_optimality_holds_on_threads() {
    let driver = ThreadDriver::default();
    let cluster = driver.launch(&scenario_for(OmegaVariant::Alg1, 4));
    let leader = cluster
        .await_stable_leader(WINDOW, DEADLINE)
        .expect("elects");
    // Theorem 3 is an *eventually* statement: sample successive real-time
    // windows until one shows the single-writer pattern (trailing STOP
    // writes from followers that flapped during the election can pollute
    // the first windows).
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        let before = cluster.space().stats();
        std::thread::sleep(Duration::from_millis(120));
        let delta = cluster.space().stats().delta_since(&before);
        let writers: Vec<ProcessId> = delta.writer_set().iter().collect();
        if writers == vec![leader] {
            for pid in ProcessId::all(4) {
                assert!(
                    delta.reads_of(pid) > 0,
                    "Lemma 6 on real threads: {pid} reads"
                );
            }
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "single-writer window never observed; last writers: {writers:?}"
        );
    }
    cluster.shutdown();
}

#[test]
fn alg2_everyone_writes_on_threads() {
    let outcome = ThreadDriver::default().run(&scenario_for(OmegaVariant::Alg2, 3));
    outcome.assert_election();
    let tail = outcome.tail.as_ref().expect("tail captured");
    assert_eq!(
        tail.writers.len(),
        3,
        "Corollary 1 on real threads: every correct process writes"
    );
}

#[test]
fn replicated_kv_on_threads_with_failover() {
    // Ω runs inside the cluster; replication runs on separate app threads,
    // feeding each replica the co-located node's live leader estimate.
    let n = 3;
    let driver = ThreadDriver::default();
    let cluster = Arc::new(driver.launch(&scenario_for(OmegaVariant::Alg1, n)));
    let _ = cluster
        .await_stable_leader(WINDOW, DEADLINE)
        .expect("elects");

    let shared = LogShared::<KvCommand>::new(cluster.space().clone());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut apps = Vec::new();
    for pid in ProcessId::all(n) {
        let shared = Arc::clone(&shared);
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        apps.push(std::thread::spawn(move || {
            let mut handle = LogHandle::new(shared, pid);
            handle.submit(KvCommand::Put(
                format!("key-{}", pid.index()),
                pid.index() as u64,
            ));
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                if let Some(leader) = cluster.node(pid).cached_leader() {
                    handle.step(leader);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            handle.committed().to_vec()
        }));
    }

    // Let some commands commit, then crash the leader and keep going.
    std::thread::sleep(Duration::from_millis(150));
    let crashed = cluster.crash_current_leader().expect("has a leader");
    let _ = cluster
        .await_stable_leader(WINDOW, DEADLINE)
        .expect("re-elects");
    // Liveness is *eventual*: poll the shared log until every survivor's
    // command has a decided slot (bounded by DEADLINE) rather than hoping a
    // fixed sleep suffices under CPU contention.
    let wanted: Vec<KvCommand> = ProcessId::all(n)
        .filter(|&q| q != crashed)
        .map(|pid| KvCommand::Put(format!("key-{}", pid.index()), pid.index() as u64))
        .collect();
    let poll_deadline = std::time::Instant::now() + DEADLINE;
    loop {
        let decided: Vec<KvCommand> = (0..shared.allocated_slots())
            .filter_map(|k| shared.instance(k).peek_decision())
            .collect();
        if wanted.iter().all(|cmd| decided.contains(cmd)) {
            break;
        }
        assert!(
            std::time::Instant::now() < poll_deadline,
            "survivors' commands never committed; decided so far: {decided:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Give the app threads a moment to fold the decided slots into their
    // own committed lists before stopping them.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Release);

    let logs: Vec<Vec<KvCommand>> = apps.into_iter().map(|h| h.join().unwrap()).collect();
    // Prefix consistency across replicas.
    for a in 0..n {
        for b in (a + 1)..n {
            let (short, long) = if logs[a].len() <= logs[b].len() {
                (&logs[a], &logs[b])
            } else {
                (&logs[b], &logs[a])
            };
            assert_eq!(&short[..], &long[..short.len()], "replica logs diverged");
        }
    }
    // The longest log contains at least the survivors' commands. Note the
    // *node* crashed but the app thread keeps stepping — its queued command
    // may or may not commit; survivors' must.
    let longest = logs.iter().max_by_key(|l| l.len()).unwrap();
    for pid in ProcessId::all(n).filter(|&q| q != crashed) {
        let cmd = KvCommand::Put(format!("key-{}", pid.index()), pid.index() as u64);
        assert!(
            longest.contains(&cmd),
            "surviving {pid}'s command missing from the log"
        );
    }
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still referenced"),
    }
}
