//! Cross-crate integration on real threads: elections, failover, and
//! replication through the facade crate.

use std::sync::Arc;
use std::time::Duration;

use omega_shm::consensus::{KvCommand, LogHandle, LogShared};
use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::runtime::{Cluster, NodeConfig};

fn fast() -> NodeConfig {
    NodeConfig {
        step_interval: Duration::from_micros(200),
        tick: Duration::from_micros(300),
    }
}

const WINDOW: Duration = Duration::from_millis(40);
const DEADLINE: Duration = Duration::from_secs(15);

#[test]
fn every_variant_elects_on_threads() {
    for variant in OmegaVariant::all() {
        let cluster = Cluster::start(variant, 3, fast());
        let leader = cluster
            .await_stable_leader(WINDOW, DEADLINE)
            .unwrap_or_else(|| panic!("{variant}: no election on threads"));
        assert!(cluster.correct().contains(leader));
        cluster.shutdown();
    }
}

#[test]
fn write_optimality_holds_on_threads() {
    let cluster = Cluster::start(OmegaVariant::Alg1, 4, fast());
    let leader = cluster.await_stable_leader(WINDOW, DEADLINE).expect("elects");
    // Theorem 3 is an *eventually* statement: sample successive real-time
    // windows until one shows the single-writer pattern (trailing STOP
    // writes from followers that flapped during the election can pollute
    // the first windows).
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        let before = cluster.space().stats();
        std::thread::sleep(Duration::from_millis(120));
        let delta = cluster.space().stats().delta_since(&before);
        let writers: Vec<ProcessId> = delta.writer_set().iter().collect();
        if writers == vec![leader] {
            for pid in ProcessId::all(4) {
                assert!(delta.reads_of(pid) > 0, "Lemma 6 on real threads: {pid} reads");
            }
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "single-writer window never observed; last writers: {writers:?}"
        );
    }
    cluster.shutdown();
}

#[test]
fn alg2_everyone_writes_on_threads() {
    let cluster = Cluster::start(OmegaVariant::Alg2, 3, fast());
    let _ = cluster.await_stable_leader(WINDOW, DEADLINE).expect("elects");
    let before = cluster.space().stats();
    std::thread::sleep(Duration::from_millis(120));
    let delta = cluster.space().stats().delta_since(&before);
    assert_eq!(
        delta.writer_set().len(),
        3,
        "Corollary 1 on real threads: every correct process writes"
    );
    cluster.shutdown();
}

#[test]
fn replicated_kv_on_threads_with_failover() {
    // Ω runs inside the cluster; replication runs on separate app threads,
    // feeding each replica the co-located node's live leader estimate.
    let n = 3;
    let cluster = Arc::new(Cluster::start(OmegaVariant::Alg1, n, fast()));
    let _ = cluster.await_stable_leader(WINDOW, DEADLINE).expect("elects");

    let shared = LogShared::<KvCommand>::new(cluster.space().clone());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut apps = Vec::new();
    for pid in ProcessId::all(n) {
        let shared = Arc::clone(&shared);
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        apps.push(std::thread::spawn(move || {
            let mut handle = LogHandle::new(shared, pid);
            handle.submit(KvCommand::Put(format!("key-{}", pid.index()), pid.index() as u64));
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                if let Some(leader) = cluster.node(pid).cached_leader() {
                    handle.step(leader);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            handle.committed().to_vec()
        }));
    }

    // Let some commands commit, then crash the leader and keep going.
    std::thread::sleep(Duration::from_millis(150));
    let crashed = cluster.crash_current_leader().expect("has a leader");
    let _ = cluster.await_stable_leader(WINDOW, DEADLINE).expect("re-elects");
    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, std::sync::atomic::Ordering::Release);

    let logs: Vec<Vec<KvCommand>> = apps.into_iter().map(|h| h.join().unwrap()).collect();
    // Prefix consistency across replicas.
    for a in 0..n {
        for b in (a + 1)..n {
            let (short, long) = if logs[a].len() <= logs[b].len() {
                (&logs[a], &logs[b])
            } else {
                (&logs[b], &logs[a])
            };
            assert_eq!(&short[..], &long[..short.len()], "replica logs diverged");
        }
    }
    // The longest log contains at least the survivors' commands. Note the
    // *node* crashed but the app thread keeps stepping — its queued command
    // may or may not commit; survivors' must.
    let longest = logs.iter().max_by_key(|l| l.len()).unwrap();
    for pid in ProcessId::all(n).filter(|&q| q != crashed) {
        let cmd = KvCommand::Put(format!("key-{}", pid.index()), pid.index() as u64);
        assert!(
            longest.contains(&cmd),
            "surviving {pid}'s command missing from the log"
        );
    }
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("cluster still referenced"),
    }
}
