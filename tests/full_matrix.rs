//! Cross-crate integration: the full (variant × adversary × timer) matrix.
//!
//! Every Ω variant must elect a correct eventual leader under every
//! AWB-compatible combination in the suite — this is Theorem 1 quantified
//! over the whole adversary library, exercised through the facade crate.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::sim::crash::CrashPlan;
use omega_shm::sim::prelude::*;
use omega_shm::sim::timers::TimerModel;
use omega_shm::sim::Simulation;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn min_delay_for(variant: OmegaVariant) -> u64 {
    // §3.5 step-clock: timeouts are counted in own steps, so bound the
    // step-rate variance (see EXPERIMENTS.md E11).
    if variant == OmegaVariant::StepClock {
        2
    } else {
        1
    }
}

type TimerFactory = fn(ProcessId) -> Box<dyn TimerModel>;

fn exact_timers(_: ProcessId) -> Box<dyn TimerModel> {
    Box::new(ExactTimer)
}

fn affine_timers(pid: ProcessId) -> Box<dyn TimerModel> {
    Box::new(AffineTimer::new(1 + pid.index() as u64 % 3, 2))
}

fn jittered_timers(pid: ProcessId) -> Box<dyn TimerModel> {
    Box::new(JitteredTimer::new(pid.index() as u64, 4))
}

fn chaotic_timers(pid: ProcessId) -> Box<dyn TimerModel> {
    Box::new(ChaoticThen::new(
        SimTime::from_ticks(8_000),
        40,
        pid.index() as u64 + 11,
        JitteredTimer::new(pid.index() as u64, 2),
    ))
}

#[test]
fn matrix_variants_x_adversaries_x_timers() {
    let timer_suites: [(&str, TimerFactory); 4] = [
        ("exact", exact_timers),
        ("affine", affine_timers),
        ("jittered", jittered_timers),
        ("chaotic-then-jittered", chaotic_timers),
    ];

    for variant in OmegaVariant::all() {
        let lo = min_delay_for(variant);
        for (adv_name, seed) in [("random-a", 101u64), ("random-b", 202)] {
            for (timer_name, factory) in timer_suites {
                let sys = variant.build(4);
                let report = Simulation::builder(sys.actors)
                    .adversary(AwbEnvelope::new(
                        SeededRandom::new(seed, lo, 7),
                        p(0),
                        SimTime::from_ticks(1_500),
                        4,
                    ))
                    .timers_from(factory)
                    .horizon(60_000)
                    .sample_every(100)
                    .run();
                let stab = report.stabilization().unwrap_or_else(|| {
                    panic!("{variant} / {adv_name} / {timer_name}: no stabilization")
                });
                assert!(
                    report.correct.contains(stab.leader),
                    "{variant} / {adv_name} / {timer_name}: crashed leader elected"
                );
            }
        }
    }
}

#[test]
fn matrix_failover_chains() {
    for variant in [OmegaVariant::Alg1, OmegaVariant::Alg2] {
        let sys = variant.build(5);
        let report = Simulation::builder(sys.actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(7, 1, 6),
                p(4),
                SimTime::ZERO,
                4,
            ))
            .crash_plan(
                CrashPlan::none()
                    .with_leader_crash_at(SimTime::from_ticks(20_000))
                    .with_leader_crash_at(SimTime::from_ticks(50_000)),
            )
            .horizon(110_000)
            .sample_every(100)
            .run();
        assert_eq!(report.crashed.len(), 2, "{variant}: two leaders crashed");
        let stab = report
            .stabilization()
            .unwrap_or_else(|| panic!("{variant}: no re-election after double failover"));
        assert!(report.correct.contains(stab.leader));
        assert!(
            stab.stable_from > SimTime::from_ticks(50_000),
            "{variant}: final stabilization must postdate the second crash"
        );
    }
}

#[test]
fn matrix_self_stabilization_from_corruption() {
    use omega_shm::omega::{boxed_actors, Alg1Memory, Alg1Process, Alg2Memory, Alg2Process};
    use omega_shm::registers::MemorySpace;
    use std::sync::Arc;

    for corruption_seed in [1u64, 0xdead, 0xffff_ffff] {
        // Algorithm 1.
        let space = MemorySpace::new(4);
        let mem = Alg1Memory::new(&space);
        mem.corrupt(corruption_seed);
        let procs: Vec<Alg1Process> = ProcessId::all(4)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let report = Simulation::builder(boxed_actors(procs))
            .adversary(AwbEnvelope::new(
                SeededRandom::new(3, 1, 6),
                p(0),
                SimTime::from_ticks(1_000),
                4,
            ))
            .horizon(80_000)
            .sample_every(100)
            .run();
        assert!(
            report.stabilization().is_some(),
            "alg1 seed={corruption_seed:#x}: must converge from arbitrary state"
        );

        // Algorithm 2.
        let space = MemorySpace::new(4);
        let mem = Alg2Memory::new(&space);
        mem.corrupt(corruption_seed);
        let procs: Vec<Alg2Process> = ProcessId::all(4)
            .map(|pid| Alg2Process::new(Arc::clone(&mem), pid))
            .collect();
        let report = Simulation::builder(boxed_actors(procs))
            .adversary(AwbEnvelope::new(
                SeededRandom::new(3, 1, 6),
                p(0),
                SimTime::from_ticks(1_000),
                4,
            ))
            .horizon(80_000)
            .sample_every(100)
            .run();
        assert!(
            report.stabilization().is_some(),
            "alg2 seed={corruption_seed:#x}: must converge from arbitrary state"
        );
    }
}

#[test]
fn heavy_crash_load_any_minority_survives() {
    // t = n − 1 is allowed: crash all but one process; the survivor must
    // end up electing itself.
    let sys = OmegaVariant::Alg1.build(4);
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            SeededRandom::new(9, 1, 5),
            p(3),
            SimTime::ZERO,
            4,
        ))
        .crash_plan(
            CrashPlan::none()
                .with_crash_at(SimTime::from_ticks(5_000), p(0))
                .with_crash_at(SimTime::from_ticks(10_000), p(1))
                .with_crash_at(SimTime::from_ticks(15_000), p(2)),
        )
        .horizon(60_000)
        .sample_every(100)
        .run();
    let stab = report.stabilization().expect("lone survivor elects");
    assert_eq!(stab.leader, p(3));
    assert_eq!(report.correct.len(), 1);
}
