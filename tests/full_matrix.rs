//! Cross-crate integration: the full (variant × adversary × timer) matrix.
//!
//! Every Ω variant must elect a correct eventual leader under every
//! AWB-compatible combination in the suite — this is Theorem 1 quantified
//! over the whole adversary library, expressed as a grid of scenarios run
//! through the facade crate.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::{AdversarySpec, Driver, Scenario, SimDriver, TimerSpec};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn min_delay_for(variant: OmegaVariant) -> u64 {
    // §3.5 step-clock: timeouts are counted in own steps, so bound the
    // step-rate variance (see EXPERIMENTS.md E11).
    if variant == OmegaVariant::StepClock {
        2
    } else {
        1
    }
}

#[test]
fn matrix_variants_x_adversaries_x_timers() {
    let timer_suites: [(&str, TimerSpec); 5] = [
        ("exact", TimerSpec::Exact),
        (
            "affine",
            TimerSpec::Affine {
                scale: 2,
                offset: 2,
            },
        ),
        ("jittered", TimerSpec::Jittered { jitter: 4 }),
        (
            "chaotic-then-exact",
            TimerSpec::ChaoticThenExact {
                chaos_until: 8_000,
                chaos_max: 40,
            },
        ),
        // Heterogeneous cell: different processes run *different* timer
        // functions, catching regressions that assume a uniform T_R.
        (
            "jitter-affine-mix",
            TimerSpec::JitterAffineMix {
                jitter: 4,
                scale: 2,
                offset: 2,
            },
        ),
    ];

    for variant in OmegaVariant::all() {
        let lo = min_delay_for(variant);
        for (adv_name, seed) in [("random-a", 101u64), ("random-b", 202)] {
            for (timer_name, timers) in timer_suites {
                let scenario = Scenario::fault_free(variant, 4)
                    .named(format!("matrix/{variant}/{adv_name}/{timer_name}"))
                    .adversary(AdversarySpec::Random { min: lo, max: 7 })
                    .awb(p(0), 1_500, 4)
                    .timers(timers)
                    .seed(seed)
                    .horizon(60_000)
                    .sample_every(100);
                let outcome = SimDriver.run(&scenario);
                assert!(
                    outcome.stabilized,
                    "{variant} / {adv_name} / {timer_name}: no stabilization"
                );
                assert!(
                    outcome.leader_is_correct(),
                    "{variant} / {adv_name} / {timer_name}: crashed leader elected"
                );
            }
        }
    }
}

#[test]
fn matrix_failover_chains() {
    for variant in [OmegaVariant::Alg1, OmegaVariant::Alg2] {
        let scenario = Scenario::fault_free(variant, 5)
            .named(format!("failover-chain/{variant}"))
            .adversary(AdversarySpec::Random { min: 1, max: 6 })
            .awb(p(4), 0, 4)
            .seed(7)
            .crash_leader_at(20_000)
            .crash_leader_at(50_000)
            .horizon(110_000)
            .sample_every(100);
        let outcome = SimDriver.run(&scenario);
        assert_eq!(outcome.crashed.len(), 2, "{variant}: two leaders crashed");
        assert!(
            outcome.stabilized,
            "{variant}: no re-election after double failover"
        );
        assert!(outcome.leader_is_correct(), "{variant}");
        assert!(
            outcome.stabilization_ticks.unwrap() > 50_000,
            "{variant}: final stabilization must postdate the second crash"
        );
    }
}

#[test]
fn matrix_self_stabilization_from_corruption() {
    use omega_shm::omega::{boxed_actors, Alg1Memory, Alg1Process, Alg2Memory, Alg2Process};
    use omega_shm::registers::MemorySpace;
    use std::sync::Arc;

    for corruption_seed in [1u64, 0xdead, 0xffff_ffff] {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
            .named("self-stabilization")
            .seed(3)
            .horizon(80_000)
            .sample_every(100);

        // Algorithm 1.
        let space = MemorySpace::new(4);
        let mem = Alg1Memory::new(&space);
        mem.corrupt(corruption_seed);
        let procs: Vec<Alg1Process> = ProcessId::all(4)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let outcome = SimDriver.run_actors(&scenario, boxed_actors(procs), &space);
        assert!(
            outcome.stabilized,
            "alg1 seed={corruption_seed:#x}: must converge from arbitrary state"
        );

        // Algorithm 2.
        let space = MemorySpace::new(4);
        let mem = Alg2Memory::new(&space);
        mem.corrupt(corruption_seed);
        let procs: Vec<Alg2Process> = ProcessId::all(4)
            .map(|pid| Alg2Process::new(Arc::clone(&mem), pid))
            .collect();
        let outcome = SimDriver.run_actors(&scenario, boxed_actors(procs), &space);
        assert!(
            outcome.stabilized,
            "alg2 seed={corruption_seed:#x}: must converge from arbitrary state"
        );
    }
}

#[test]
fn heavy_crash_load_any_minority_survives() {
    // t = n − 1 is allowed: crash all but one process; the survivor must
    // end up electing itself.
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("all-but-one")
        .adversary(AdversarySpec::Random { min: 1, max: 5 })
        .awb(p(3), 0, 4)
        .seed(9)
        .crash_at(5_000, p(0))
        .crash_at(10_000, p(1))
        .crash_at(15_000, p(2))
        .horizon(60_000)
        .sample_every(100);
    let outcome = SimDriver.run(&scenario);
    assert_eq!(outcome.elected, Some(p(3)), "lone survivor elects");
    assert_eq!(outcome.correct.len(), 1);
}

#[test]
fn whole_registry_behaves_as_classified() {
    for scenario in omega_shm::scenario::registry::all() {
        // The scaling probes get their own workout elsewhere; keep the
        // matrix fast by skipping n > 8 here.
        if scenario.n > 8 {
            continue;
        }
        let outcome = SimDriver.run(&scenario);
        if scenario.expect_stabilization {
            outcome.assert_election();
        } else {
            assert!(
                !outcome.stabilized_for(0.34),
                "{}: AWB-violating scenario stabilized anyway",
                scenario.name
            );
        }
    }
}
