//! Scaling probes for the sharded suspicion scan (PR 2 acceptance).
//!
//! The quadratic full-matrix rescan put ~93 M shared reads into the old
//! `n-scaling-32` run; the epoch-gated `leader()` cache plus the sharded
//! `T3` scan must hold `n-scaling-64` under 4× that figure (the quadratic
//! trend would be ~16×) while still electing a leader — and the same
//! scenario must elect on real threads.

use omega_shm::scenario::{registry, Driver, SimDriver, ThreadDriver};
use std::time::Duration;

/// The `n-scaling-32` total-read figure measured before the sharded scan
/// (see ROADMAP "Scale past n≈32" and the PR 2 issue).
const QUADRATIC_N32_BASELINE_READS: u64 = 93_001_953;

#[test]
fn n_scaling_64_stabilizes_cheaply_on_sim_and_elects_on_threads() {
    // Sim: the registry scenario exactly as the benchmark runs it.
    let scenario = registry::named("n-scaling-64").expect("registry scenario");
    let sim = SimDriver.run(&scenario);
    sim.assert_election();
    assert!(
        sim.total_reads() < 4 * QUADRATIC_N32_BASELINE_READS,
        "n=64 must cost < 4x the old n=32 scan ({} reads measured)",
        sim.total_reads()
    );
    assert!(
        sim.reads_skipped > sim.total_reads(),
        "the epoch cache must be doing the bulk of the scanning work \
         ({} skipped vs {} performed)",
        sim.reads_skipped,
        sim.total_reads()
    );
    assert!(sim.shard_passes > 0, "T3 must be running in sharded passes");

    // Threads: same spec, gentle pacing — 128 task threads may share one
    // core, so give T2 loops a 1 ms cadence and a 30 s wall budget
    // (horizon × tick); the driver returns at stabilization, normally
    // well under a second.
    let scenario = scenario.horizon(150_000);
    let driver = ThreadDriver {
        tick: Duration::from_micros(200),
        step_interval: Duration::from_millis(1),
        window: Duration::from_millis(60),
        tail_sample: Duration::from_millis(100),
    };
    let native = driver.run(&scenario);
    native.assert_election();
    assert_eq!(
        sim.register_count, native.register_count,
        "both backends build the same 64-process register layout"
    );
    assert!(
        native.steps.iter().all(|&s| s > 0),
        "[threads] every process stepped"
    );
    assert!(
        native.correct.contains(native.elected.unwrap()),
        "[threads] elected leader must be correct"
    );
}
