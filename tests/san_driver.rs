//! Four-way backend parity and SAN-substrate coverage.
//!
//! The SAN driver is the paper's motivating deployment (Section 1:
//! registers as network-attached disk blocks) and the coop driver is the
//! cooperative deadline-wheel runtime — both promoted to first-class
//! backends. These tests pin the backend matrix from three sides:
//!
//! * **Outcome parity** — every n ≤ 16 registry scenario that promises
//!   stabilization must stabilize on the simulator, on plain threads, on
//!   the SAN, *and* on the cooperative scheduler, with identical
//!   experiment metadata, a correct elected leader, and the crash script
//!   honored identically. (The elected *identity* is only deterministic
//!   on the simulator: on wall-clock backends the schedule — kernel
//!   preemption or the deadline wheel — decides which correct process
//!   ends up least suspected, exactly the freedom the Ω contract grants.)
//! * **Block accounting** — one block per register, accesses mirrored
//!   between the register instrumentation and the disk.
//! * **Disk registers** — the hand-laid `DiskNatRegister` /
//!   `DiskFlagRegister` path: ownership enforcement, zero-on-fresh-block
//!   reads, and the cross-machine read path.

use omega_shm::registers::ProcessId;
use omega_shm::runtime::san::{DiskFlagRegister, DiskNatRegister, SanDisk, SanLatency};
use omega_shm::scenario::{
    registry, CoopDriver, Driver, Outcome, SanDriver, Scenario, SimDriver, ThreadDriver,
};

/// The registry scenarios every wall-clock backend can realize:
/// stabilization promised (no literal adversary needed) at
/// thread-friendly system sizes, and admitted by the whole backend matrix
/// — chaos campaigns with storms or recovery waves are refused by some
/// wall backends and parity over a refused realization is meaningless.
/// (Coop alone also runs n > 16; that headroom is covered in
/// `tests/coop_driver.rs`.)
fn eligible(scenario: &Scenario) -> bool {
    let admitted = scenario.eligible_drivers();
    scenario.expect_stabilization
        && scenario.n <= 16
        && admitted.sim
        && admitted.threads
        && admitted.san
        && admitted.coop
}

fn assert_four_way(
    scenario: &Scenario,
    sim: &Outcome,
    threads: &Outcome,
    san: &Outcome,
    coop: &Outcome,
) {
    assert_eq!(sim.backend, "sim");
    assert_eq!(threads.backend, "threads");
    assert_eq!(san.backend, "san");
    assert_eq!(coop.backend, "coop");
    for outcome in [sim, threads, san, coop] {
        // Identical experiment metadata: all four realized the same spec.
        assert_eq!(outcome.scenario, scenario.name);
        assert_eq!(outcome.variant, scenario.variant);
        assert_eq!(outcome.n, scenario.n);
        assert_eq!(outcome.horizon_ticks, scenario.horizon);
        assert_eq!(
            outcome.register_count, sim.register_count,
            "{} [{}]: register layout must not depend on the backend",
            scenario.name, outcome.backend
        );
        // The stabilization outcome matches: elected, correct, not crashed.
        outcome.assert_election();
        assert_eq!(
            outcome.crashed.len(),
            sim.crashed.len(),
            "{} [{}]: crash script honored identically",
            scenario.name,
            outcome.backend
        );
        assert!(
            outcome.steps.iter().all(|&s| s > 0),
            "{} [{}]: every process stepped",
            scenario.name,
            outcome.backend
        );
    }
    // Only the SAN backend reports a block footprint, and its layout is
    // one block per register.
    assert!(sim.san.is_none() && threads.san.is_none() && coop.san.is_none());
    let footprint = san.san.expect("SAN backend reports block footprint");
    assert_eq!(footprint.blocks_mapped, san.register_count as u64);
    assert!(footprint.blocks_touched <= footprint.blocks_mapped);
    if scenario.campaign.is_none() {
        assert!(
            footprint.block_accesses >= san.total_reads() + san.total_writes(),
            "{}: disk cannot serve fewer accesses than the registers counted",
            scenario.name
        );
    } else {
        // A severed read is served from the frozen snapshot without a disk
        // round trip (the far side of a split fabric sees its stale view,
        // not the medium), so mid-partition the register counters run
        // ahead of the disk's.
        assert!(footprint.block_accesses > 0, "{}: disk saw no traffic", {
            &scenario.name
        });
    }
}

fn run_four_way(filter: impl Fn(&Scenario) -> bool) {
    let san_driver = SanDriver::instant();
    let thread_driver = ThreadDriver::default();
    let coop_driver = CoopDriver::default();
    for scenario in registry::all().into_iter().filter(eligible) {
        if !filter(&scenario) {
            continue;
        }
        let sim = SimDriver.run(&scenario);
        let threads = thread_driver.run(&scenario);
        let san = san_driver.run(&scenario);
        let coop = coop_driver.run(&scenario);
        assert_four_way(&scenario, &sim, &threads, &san, &coop);
        assert_eq!(coop.workers, Some(1));
        // Sharding the deadline wheel is an implementation detail of the
        // coop backend: growing the worker pool must not change what the
        // scenario observes.
        for workers in [2, 4] {
            let pooled = CoopDriver {
                workers,
                ..CoopDriver::default()
            }
            .run(&scenario);
            assert_eq!(pooled.workers, Some(workers));
            assert_four_way(&scenario, &sim, &threads, &san, &pooled);
            assert_eq!(
                pooled.stabilized, coop.stabilized,
                "{} [coop x{}]: pool size changed the stabilization verdict",
                scenario.name, workers
            );
        }
    }
}

#[test]
fn four_way_parity_on_fault_free_registry_scenarios() {
    run_four_way(|s| s.crashes.is_empty() && s.san_latency.is_none());
}

#[test]
fn four_way_parity_on_crash_script_registry_scenarios() {
    run_four_way(|s| !s.crashes.is_empty());
}

#[test]
fn four_way_parity_on_the_san_latency_sweep() {
    // The sweep members pin a real (nonzero) disk latency: the SAN driver
    // pays simulated service time per access and still elects; the other
    // wall-clock backends ignore the pin and run them as plain scenarios.
    let mut saw_service_time = false;
    for scenario in registry::all()
        .into_iter()
        .filter(|s| s.san_latency.is_some() && s.crashes.is_empty())
    {
        let sim = SimDriver.run(&scenario);
        let threads = ThreadDriver::default().run(&scenario);
        let san = SanDriver::instant().run(&scenario);
        let coop = CoopDriver::default().run(&scenario);
        assert_four_way(&scenario, &sim, &threads, &san, &coop);
        if san.san.unwrap().service_time_ms > 0.0 {
            saw_service_time = true;
        }
    }
    assert!(
        saw_service_time,
        "pinned latency must surface as simulated service time"
    );
}

#[test]
fn disk_registers_enforce_ownership_and_zero_fresh_blocks() {
    let disk = SanDisk::new(SanLatency::instant(), 9);
    let owner = ProcessId::new(1);
    let other = ProcessId::new(0);

    // Zero-on-fresh-block: unwritten registers read as 0 / false from any
    // machine.
    let nat = DiskNatRegister::new(std::sync::Arc::clone(&disk), 0, owner);
    let flag = DiskFlagRegister::new(std::sync::Arc::clone(&disk), 1, owner);
    assert_eq!(nat.read(owner), 0);
    assert_eq!(nat.read(other), 0);
    assert!(!flag.read(other));

    // Cross-machine read path: a non-owner observes the owner's write
    // through the shared disk.
    nat.write(owner, 77);
    flag.write(owner, true);
    assert_eq!(nat.read(other), 77, "non-owner reads the owner's write");
    assert!(flag.read(other));
    assert_eq!(nat.owner(), owner);

    // Ownership enforcement: a foreign write is a model violation.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nat.write(other, 1);
    }));
    assert!(result.is_err(), "foreign writer must be rejected");
    assert_eq!(nat.read(other), 77, "rejected write must not land");
    let flag_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        flag.write(other, false);
    }));
    assert!(flag_result.is_err());
    assert!(flag.read(owner), "rejected flag write must not land");
}

#[test]
fn san_module_doc_flow_runs_end_to_end() {
    // The executable version of the `omega_runtime::san` module-doc
    // example (which is `ignore`d there because the scenario crate sits
    // above the runtime in the workspace).
    let outcome = SanDriver::instant().run(&registry::fault_free());
    outcome.assert_election();
    let san = outcome.san.expect("SAN backends report block footprints");
    assert_eq!(san.blocks_mapped, outcome.register_count as u64);
}
