//! Trace record/replay and the fuzz shrinker, end to end through the
//! facade.
//!
//! The tentpole claim of the fuzzing subsystem is that a recorded run is
//! *exactly* reproducible from its trace file: same `Outcome` fingerprint,
//! same bytes when re-encoded. These tests prove it over real registry
//! scenarios (one fault-free, one with a crash script) and pin the
//! shrinker's contract — a planted violation minimizes to a spec small
//! enough to read in a bug report.

use omega_shm::scenario::fuzz::{self, Violation};
use omega_shm::scenario::spec_text::{from_spec_text, to_spec_text};
use omega_shm::scenario::{registry, CrashSpec, SimDriver};
use omega_shm::sim::Trace;

/// Records a scenario, round-trips the trace through its binary codec,
/// replays from the decoded file image, and demands byte identity.
fn assert_replay_is_byte_identical(name: &str) {
    let scenario = registry::named(name).expect("registry scenario");
    let (live, trace) = SimDriver.run_traced(&scenario);

    // The file image survives encode → decode unchanged.
    let bytes = trace.encode();
    let decoded = Trace::decode(&bytes).expect("trace decodes");
    assert_eq!(
        decoded.encode(),
        bytes,
        "{name}: codec round-trip is not byte-stable"
    );

    // The spec embedded in the trace reconstructs the scenario, so a
    // trace file is self-describing: no side channel needed to replay.
    let reparsed = from_spec_text(&decoded.meta).expect("trace meta parses");
    assert_eq!(to_spec_text(&reparsed), to_spec_text(&scenario));

    // And the replayed run is indistinguishable from the live one on
    // every deterministic field.
    let replayed = SimDriver.run_replay(&reparsed, &decoded);
    assert_eq!(
        replayed.fingerprint(),
        live.fingerprint(),
        "{name}: replay diverged from the live run"
    );
}

#[test]
fn fault_free_trace_replays_byte_identically() {
    assert_replay_is_byte_identical("fault-free");
}

#[test]
fn crash_failover_trace_replays_byte_identically() {
    // The crash script exercises the trace's crash events, not just steps
    // and timer expirations.
    assert_replay_is_byte_identical("leader-crash-failover");
}

#[test]
fn partition_heal_trace_replays_byte_identically() {
    // A chaos campaign in the spec: the trace carries the phase-boundary
    // events and the campaign stanzas in its meta, and the replayed
    // ChaosOutcome (in the fingerprint) must match the live one.
    assert_replay_is_byte_identical("chaos/partition-heal");
}

#[test]
fn planted_violation_shrinks_to_a_minimal_spec() {
    // A deliberately baroque starting point: six processes, a five-crash
    // storm, a non-default AWB envelope and horizon.
    let original = registry::named("crash-storm").expect("registry scenario");
    assert_eq!(original.n, 6);
    assert_eq!(original.crashes.len(), 5);
    assert!(fuzz::spec_lines(&original) > 5, "start is non-minimal");

    // The planted "bug" fires whenever n >= 4 and any absolute-tick crash
    // remains — so the shrinker can halve n once and drop all but one
    // crash, but no further. Seeded, deterministic, no simulator runs.
    let mut oracle = |s: &omega_shm::scenario::Scenario| {
        let has_at = s.crashes.iter().any(|c| matches!(c, CrashSpec::At { .. }));
        (s.n >= 4 && has_at).then(|| Violation::Safety {
            detail: "planted".into(),
        })
    };

    let minimal = fuzz::shrink(&original, &mut oracle);
    assert!(oracle(&minimal).is_some(), "shrinking preserved the bug");
    assert_eq!(minimal.n, 4, "n halved to the oracle's floor");
    assert_eq!(minimal.crashes.len(), 1, "all but one crash dropped");
    assert!(
        fuzz::spec_lines(&minimal) <= 5,
        "minimal reproducer must fit a 5-line spec, got {} lines:\n{}",
        fuzz::spec_lines(&minimal),
        to_spec_text(&minimal)
    );

    // The reproducer's registry name is stable across renames: it hashes
    // the spec text minus the `scenario` line.
    let name = fuzz::reproducer_name(&minimal);
    assert!(name.starts_with("fuzz-regression/"), "got {name}");
    assert_eq!(name, fuzz::reproducer_name(&minimal.clone().named("x")));
}
