//! Deferred instrumentation parity: the simulator's fast counting mode
//! must be *observationally invisible*.
//!
//! `Instrumentation::Deferred` accumulates access counters in
//! unsynchronized scratch and flushes them at snapshot boundaries; eager
//! mode pays an atomic read-modify-write per access. Same schedule, same
//! seed ⇒ every checkpointed `StatsSnapshot` (totals, per-process,
//! per-register rows), every footprint high-water mark, and the tail
//! writer/reader sets must be identical tick-for-tick between the two
//! modes — otherwise the speedup changed what the experiments measure.

use omega_shm::registers::{Instrumentation, MemorySpace};
use omega_shm::scenario::{registry, Scenario};
use omega_shm::sim::RunReport;

/// Runs `scenario` on the simulator over a space with the given
/// instrumentation mode, returning the report and the space.
fn run_with(scenario: &Scenario, mode: Instrumentation) -> (RunReport, MemorySpace) {
    let sys = scenario.variant.build_with(scenario.n, mode);
    let space = sys.space.clone();
    let report = scenario.sim_builder(sys.actors).memory(space.clone()).run();
    (report, space)
}

fn assert_parity(name: &str) {
    let scenario = registry::named(name).unwrap_or_else(|| panic!("{name} in registry"));
    let (eager, eager_space) = run_with(&scenario, Instrumentation::Eager);
    let (deferred, deferred_space) = run_with(&scenario, Instrumentation::Deferred);
    assert_eq!(eager_space.instrumentation(), Instrumentation::Eager);
    assert_eq!(deferred_space.instrumentation(), Instrumentation::Deferred);

    // Identical schedule first (counting must not perturb the run).
    assert_eq!(eager.events_processed, deferred.events_processed, "{name}");
    assert_eq!(eager.steps_taken, deferred.steps_taken, "{name}");

    // Every statistics checkpoint, tick-for-tick.
    let a = eager.windowed.snapshots();
    let b = deferred.windowed.snapshots();
    assert_eq!(a.len(), b.len(), "{name}: checkpoint counts");
    assert!(a.len() >= 2, "{name}: scenario must checkpoint");
    for ((ta, sa), (tb, sb)) in a.iter().zip(b) {
        assert_eq!(ta, tb, "{name}: checkpoint times");
        assert_eq!(sa.total_reads(), sb.total_reads(), "{name} @ {ta}");
        assert_eq!(sa.total_writes(), sb.total_writes(), "{name} @ {ta}");
        assert_eq!(
            sa, sb,
            "{name} @ {ta}: full per-register, per-process equality"
        );
    }

    // Footprint checkpoints: high-water marks flush through scratch too.
    assert_eq!(eager.footprints.len(), deferred.footprints.len(), "{name}");
    for ((ta, fa), (tb, fb)) in eager.footprints.iter().zip(&deferred.footprints) {
        assert_eq!(ta, tb, "{name}: footprint times");
        assert_eq!(fa, fb, "{name} @ {ta}: footprints (hwm bits)");
    }

    // Tail window: the writer/reader sets the optimality theorems inspect.
    let tail_a = eager.windowed.tail(0.25).expect("checkpoints exist");
    let tail_b = deferred.windowed.tail(0.25).expect("checkpoints exist");
    assert_eq!(
        tail_a.stats.writer_set(),
        tail_b.stats.writer_set(),
        "{name}"
    );
    assert_eq!(
        tail_a.stats.reader_set(),
        tail_b.stats.reader_set(),
        "{name}"
    );
    assert_eq!(
        tail_a.stats.written_registers(),
        tail_b.stats.written_registers(),
        "{name}"
    );

    // And the final cumulative view through the space itself.
    assert_eq!(eager_space.stats(), deferred_space.stats(), "{name}: final");
}

#[test]
fn deferred_equals_eager_on_fault_free() {
    assert_parity("fault-free");
}

#[test]
fn deferred_equals_eager_on_bounded_memory() {
    assert_parity("bounded-memory");
}

#[test]
fn deferred_equals_eager_on_mwmr_lean() {
    assert_parity("mwmr-lean");
}

#[test]
fn deferred_equals_eager_on_crash_storm() {
    assert_parity("crash-storm");
}

/// A snapshot taken *between* checkpoints is also exact: `stats()` is a
/// flush boundary, so mid-run reads see everything counted so far.
#[test]
fn mid_run_snapshot_is_a_flush_boundary() {
    use omega_shm::registers::ProcessId;
    let space = MemorySpace::with_instrumentation(2, Instrumentation::Deferred);
    let reg = space.nat_register("R", ProcessId::new(0), 0);
    reg.write(ProcessId::new(0), 5);
    reg.read(ProcessId::new(1));
    let snap = space.stats();
    assert_eq!(snap.total_writes(), 1);
    assert_eq!(snap.total_reads(), 1);
    assert_eq!(snap.writes_of(ProcessId::new(0)), 1);
    // Footprint flushes the high-water mark the same way.
    assert_eq!(space.footprint().total_hwm_bits(), 3);
}
