//! Root-level property tests: the theorems hold across randomized
//! AWB-compatible environments, not just hand-picked ones. Environments
//! are generated from a seeded stream and expressed as scenarios, so every
//! failing case is reproducible from its case number.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::{AdversarySpec, Driver, Scenario, SimDriver};
use omega_shm::sim::rng::SmallRng;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Theorem 1, randomized: Algorithm 1 elects a correct leader for
/// arbitrary seeds, delay ranges, σ, τ₁, and timely-process choice.
#[test]
fn alg1_elects_across_random_awb_environments() {
    let mut g = SmallRng::seed_from_u64(0x0A11);
    for case in 0..12 {
        let n = g.gen_range(2..=5) as usize;
        let seed = g.next_u64();
        let delay_hi = g.gen_range(2..=9);
        let sigma = g.gen_range(1..=7);
        let tau1 = g.gen_range(0..=4_999);
        let timely = p(g.gen_range(0..=5) as usize % n);
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, n)
            .named(format!("random-awb/case{case}"))
            .adversary(AdversarySpec::Random {
                min: 1,
                max: delay_hi,
            })
            .awb(timely, tau1, sigma)
            .seed(seed)
            .horizon(60_000)
            .sample_every(100);
        let outcome = SimDriver.run(&scenario);
        assert!(
            outcome.stabilized,
            "case {case}: no stabilization (n={n}, seed={seed})"
        );
        assert!(outcome.leader_is_correct(), "case {case}");
    }
}

/// Theorem 6 + Corollary 1, randomized: Algorithm 2 stays bounded and
/// keeps every process writing, whatever the AWB environment.
#[test]
fn alg2_bounded_and_all_writing_across_environments() {
    let mut g = SmallRng::seed_from_u64(0x0A12);
    for case in 0..12 {
        let n = 3;
        let seed = g.next_u64();
        let sigma = g.gen_range(1..=5);
        let scenario = Scenario::fault_free(OmegaVariant::Alg2, n)
            .named(format!("bounded/case{case}"))
            .awb(p(0), 1_000, sigma)
            .seed(seed)
            .horizon(50_000)
            .stats_checkpoints(12)
            .sample_every(100);
        let outcome = SimDriver.run(&scenario);
        assert!(outcome.stabilized, "case {case}");
        // Boundedness: nothing still growing late in the run.
        assert!(
            outcome.grown_in_tail.is_empty(),
            "case {case}: grew late: {:?}",
            outcome.grown_in_tail
        );
        // Everyone writes in the tail.
        let tail = outcome.tail.as_ref().unwrap();
        for pid in ProcessId::all(n) {
            assert!(
                tail.writers.contains(pid),
                "case {case}: {pid} stopped writing"
            );
        }
    }
}

/// Footnote 7, randomized: arbitrary initial register contents never
/// prevent convergence (self-stabilization of both algorithms).
#[test]
fn corrupted_starts_always_converge() {
    use omega_shm::omega::{boxed_actors, Alg1Memory, Alg1Process};
    use omega_shm::registers::MemorySpace;
    use std::sync::Arc;

    let mut g = SmallRng::seed_from_u64(0x0A13);
    for case in 0..12 {
        let corruption = g.next_u64();
        let seed = g.next_u64();
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
            .named(format!("corrupted/case{case}"))
            .awb(p(0), 500, 4)
            .seed(seed)
            .horizon(60_000)
            .sample_every(100);
        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        mem.corrupt(corruption);
        let procs: Vec<Alg1Process> = ProcessId::all(3)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let outcome = SimDriver.run_actors(&scenario, boxed_actors(procs), &space);
        assert!(
            outcome.stabilized,
            "case {case}: corruption {corruption:#x} broke convergence"
        );
    }
}

/// Validity + Termination (the other two Ω properties) in one deterministic
/// sweep: every estimate ever sampled is a real process identity, and the
/// leader query keeps answering throughout the run. Uses the scenario's
/// raw sim builder because the claim is about the whole sampled timeline,
/// not just the stabilized suffix an `Outcome` condenses.
#[test]
fn validity_and_termination_of_estimates() {
    for variant in OmegaVariant::all() {
        let n = 4;
        let scenario = Scenario::fault_free(variant, n)
            .named(format!("validity/{variant}"))
            .awb(p(0), 500, 4)
            .seed(5)
            .horizon(30_000)
            .sample_every(50);
        let sys = variant.build(n);
        let report = scenario.sim_builder(sys.actors).run();
        let mut answered = vec![false; n];
        for sample in report.timeline.samples() {
            for (i, estimate) in sample.leaders.iter().enumerate() {
                if let Some(leader) = estimate {
                    assert!(leader.index() < n, "{variant}: invalid identity");
                    answered[i] = true;
                }
            }
        }
        assert!(
            answered.iter().all(|&a| a),
            "{variant}: some process never produced an estimate"
        );
    }
}
