//! Root-level property tests: the theorems hold across randomized
//! AWB-compatible environments, not just hand-picked ones.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::sim::prelude::*;
use omega_shm::sim::Simulation;
use proptest::prelude::*;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 1, randomized: Algorithm 1 elects a correct leader for
    /// arbitrary seeds, delay ranges, σ, τ₁, and timely-process choice.
    #[test]
    fn alg1_elects_across_random_awb_environments(
        n in 2usize..6,
        seed in any::<u64>(),
        delay_hi in 2u64..10,
        sigma in 1u64..8,
        tau1 in 0u64..5_000,
        timely in 0usize..6,
    ) {
        let timely = p(timely % n);
        let sys = OmegaVariant::Alg1.build(n);
        let report = Simulation::builder(sys.actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(seed, 1, delay_hi),
                timely,
                SimTime::from_ticks(tau1),
                sigma,
            ))
            .horizon(60_000)
            .sample_every(100)
            .run();
        let stab = report.stabilization();
        prop_assert!(stab.is_some(), "no stabilization (n={n}, seed={seed})");
        prop_assert!(report.correct.contains(stab.unwrap().leader));
    }

    /// Theorems 6 + Corollary 1, randomized: Algorithm 2 stays bounded and
    /// keeps every process writing, whatever the AWB environment.
    #[test]
    fn alg2_bounded_and_all_writing_across_environments(
        seed in any::<u64>(),
        sigma in 1u64..6,
    ) {
        let n = 3;
        let sys = OmegaVariant::Alg2.build(n);
        let space = sys.space.clone();
        let report = Simulation::builder(sys.actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(seed, 1, 6),
                p(0),
                SimTime::from_ticks(1_000),
                sigma,
            ))
            .memory(space)
            .horizon(50_000)
            .stats_checkpoints(12)
            .sample_every(100)
            .run();
        prop_assert!(report.stabilization().is_some());
        // Boundedness: final quarter grows nothing.
        let len = report.footprints.len();
        prop_assert!(len >= 4);
        let grown = report.footprints[len - 1].1.grown_since(&report.footprints[len * 3 / 4].1);
        prop_assert!(grown.is_empty(), "grew late: {grown:?}");
        // Everyone writes in the tail.
        let tail = report.windowed.tail(0.25).unwrap();
        for pid in ProcessId::all(n) {
            prop_assert!(tail.stats.writes_of(pid) > 0, "{pid} stopped writing");
        }
    }

    /// Footnote 7, randomized: arbitrary initial register contents never
    /// prevent convergence (self-stabilization of both algorithms).
    #[test]
    fn corrupted_starts_always_converge(corruption in any::<u64>(), seed in any::<u64>()) {
        use omega_shm::omega::{boxed_actors, Alg1Memory, Alg1Process};
        use omega_shm::registers::MemorySpace;
        use std::sync::Arc;

        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        mem.corrupt(corruption);
        let procs: Vec<Alg1Process> = ProcessId::all(3)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let report = Simulation::builder(boxed_actors(procs))
            .adversary(AwbEnvelope::new(
                SeededRandom::new(seed, 1, 6),
                p(0),
                SimTime::from_ticks(500),
                4,
            ))
            .horizon(60_000)
            .sample_every(100)
            .run();
        prop_assert!(
            report.stabilization().is_some(),
            "corruption {corruption:#x} broke convergence"
        );
    }
}

/// Validity + Termination (the other two Ω properties) in one deterministic
/// sweep: every estimate ever sampled is a real process identity, and the
/// leader query keeps answering throughout the run.
#[test]
fn validity_and_termination_of_estimates() {
    for variant in OmegaVariant::all() {
        let n = 4;
        let sys = variant.build(n);
        let lo = if variant == OmegaVariant::StepClock { 2 } else { 1 };
        let report = Simulation::builder(sys.actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(5, lo, 6),
                p(0),
                SimTime::from_ticks(500),
                4,
            ))
            .horizon(30_000)
            .sample_every(50)
            .run();
        let mut answered = vec![false; n];
        for sample in report.timeline.samples() {
            for (i, estimate) in sample.leaders.iter().enumerate() {
                if let Some(leader) = estimate {
                    assert!(leader.index() < n, "{variant}: invalid identity");
                    answered[i] = true;
                }
            }
        }
        assert!(
            answered.iter().all(|&a| a),
            "{variant}: some process never produced an estimate"
        );
    }
}
