//! The cooperative backend beyond the thread wall.
//!
//! Four-way parity at n ≤ 16 lives in `tests/san_driver.rs`; this file
//! covers what is *new* about the coop substrate — the sizes and sweeps no
//! other real-time backend can attempt, the worker-pool variant, and the
//! interactive `launch` surface.

use std::time::Duration;

use omega_shm::scenario::{registry, CoopDriver, Driver, Scenario, SimDriver};

#[test]
fn coop_runs_a_contention_sweep_member_no_thread_backend_can() {
    // contention/32x4: 32 contending suspicion writers. Two OS threads per
    // node would be 64 kernel threads — the size class the thread and SAN
    // drivers refuse — while the coop driver multiplexes it on one worker.
    let scenario = registry::named("contention/32x4").expect("registry member");
    assert_eq!(scenario.n, 32);
    let outcome = CoopDriver::default().run(&scenario);
    outcome.assert_election();
    assert_eq!(outcome.backend, "coop");
    assert!(
        outcome.steps.iter().all(|&s| s > 0),
        "all 32 multiplexed nodes stepped"
    );
    // And the simulator agrees the scenario stabilizes, so the sweep's
    // records are comparable across the two backends that realize it.
    SimDriver.run(&scenario).assert_election();
}

#[test]
fn coop_contention_sweep_spans_the_sigma_axis() {
    // Both σ points at the small size elect; the sweep's axes are real.
    for name in ["contention/4x4", "contention/4x32"] {
        let scenario = registry::named(name).expect("registry member");
        let outcome = CoopDriver::default().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.n, 4);
    }
}

#[test]
fn coop_survives_a_directed_cut_with_a_timely_core() {
    // hostile/asym-core: a directed cut blinds the majority {2,3,4} to the
    // core {0,1}, but everyone still reads the core live and the core holds
    // the timely process — the election must hold straight through the cut
    // on the cooperative backend, not just on the simulator.
    let scenario = registry::named("hostile/asym-core").expect("registry member");
    assert!(
        scenario.eligible_drivers().coop,
        "a directed cut acts through the visibility mask"
    );
    let outcome = CoopDriver::default().run(&scenario);
    outcome.assert_election();
    assert_eq!(outcome.chaos.expect("campaign ran").partitions, 1);
}

#[test]
fn a_small_worker_pool_still_elects() {
    // workers = 2: the pool variant exercises the cross-worker dispatch
    // path (tasks mid-execution while a sibling sleeps on the condvar).
    let driver = CoopDriver {
        workers: 2,
        ..CoopDriver::default()
    };
    let scenario = Scenario::fault_free(omega_shm::omega::OmegaVariant::Alg1, 5).horizon(100_000);
    let outcome = driver.run(&scenario);
    outcome.assert_election();
    assert!(outcome.steps.iter().all(|&s| s > 0));
    assert_eq!(outcome.workers, Some(2));
}

#[test]
fn coop_launch_serves_interactive_queries() {
    let scenario = Scenario::fault_free(omega_shm::omega::OmegaVariant::Alg2, 3).horizon(100_000);
    let cluster = CoopDriver::default().launch(&scenario);
    let leader = cluster
        .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
        .expect("interactive coop cluster elects");
    assert_eq!(cluster.node(leader).leader(), Some(leader));
    cluster.shutdown();
}

#[test]
fn every_variant_elects_on_coop() {
    for variant in omega_shm::omega::OmegaVariant::all() {
        let scenario = Scenario::fault_free(variant, 3)
            .named(format!("coop/{}/n3", variant.name()))
            .horizon(150_000);
        let outcome = CoopDriver::default().run(&scenario);
        assert!(outcome.stabilized, "{variant}: no election on coop");
        assert!(outcome.leader_is_correct(), "{variant}");
    }
}
