//! The omega-service SLO surface: failover unavailability is finite, and
//! sim records are byte-reproducible.
//!
//! These are the two promises `BENCH_service.json` rests on. The window
//! bound says the headline metric measures an *election*, not a hang: a
//! scripted leader crash must produce an unavailability window that heals
//! inside the horizon and is far shorter than the crash-to-horizon gap.
//! The determinism test says the sim record is a fixed point of the seed —
//! the property that lets CI gate the artifact byte-for-byte.

use omega_shm::service::{registry, RequestState, ServiceSimDriver};

#[test]
fn failover_window_is_finite_and_bounded() {
    let scenario = registry::by_name("failover/alg1").expect("suite scenario");
    let outcome = ServiceSimDriver.run(&scenario);

    assert!(outcome.stabilized, "Ω must re-elect after the crash");
    assert_eq!(outcome.windows.len(), 1, "one crash ⇒ one window");
    let window = &outcome.windows[0];
    assert!(
        window.healed_at.is_some(),
        "the service must serve again inside the horizon"
    );
    let unavail = outcome.unavail_ticks();
    assert!(unavail > 0, "a leader crash is never free");
    assert!(
        unavail < 20_000,
        "re-election must be far quicker than crash-to-horizon ({unavail} ticks)"
    );

    // The window is where the damage concentrates: requests failing
    // inside it never exceed the total, and the crash does cause some.
    assert!(outcome.committed > 0);
    let failed = outcome.rejected + outcome.stalled;
    let in_window = outcome.unavail_rejected() + outcome.unavail_stalled();
    assert!(
        in_window <= failed,
        "window attribution can never exceed the totals"
    );
    assert!(
        in_window > 0,
        "a leader crash under open-loop load fails at least one request"
    );
    assert!(
        failed * 100 <= outcome.requests,
        "under 1 % of requests may fail across a single failover"
    );
    assert_eq!(
        outcome.inflight, 0,
        "every deadline lands inside the horizon"
    );
}

#[test]
fn steady_state_commits_everything() {
    let scenario = registry::by_name("steady/alg1").expect("suite scenario");
    let outcome = ServiceSimDriver.run(&scenario);
    assert_eq!(outcome.committed, outcome.requests);
    assert_eq!(outcome.rejected + outcome.stalled, 0);
    assert!(outcome.windows.is_empty(), "no crash ⇒ no window");
}

#[test]
fn same_seed_yields_a_byte_identical_record() {
    let scenario = registry::by_name("failover/alg2").expect("suite scenario");
    let mut first = ServiceSimDriver.run(&scenario);
    let mut second = ServiceSimDriver.run(&scenario);
    // Wall time is the one legitimately nondeterministic field.
    first.elapsed_ms = 0.0;
    second.elapsed_ms = 0.0;
    assert_eq!(
        first.json_record(),
        second.json_record(),
        "sim records must be reproducible byte-for-byte"
    );
}

#[test]
fn a_different_seed_yields_a_different_workload() {
    let scenario = registry::by_name("steady/alg1").expect("suite scenario");
    let mut reseeded = scenario.clone();
    reseeded.election = scenario.election.clone().seed(scenario.election.seed + 1);
    let a = scenario.requests();
    let b = reseeded.requests();
    assert_ne!(
        a.iter().map(|m| m.arrival).collect::<Vec<_>>(),
        b.iter().map(|m| m.arrival).collect::<Vec<_>>(),
        "the workload must be derived from the scenario seed"
    );
}

#[test]
fn request_states_resolve_terminally_on_sim() {
    // No request may end the horizon issued-but-unresolved: the registry
    // sizes every deadline inside the horizon and the driver sweeps at the
    // end, so `Pending`/`Issued` states would mean the sweep is broken.
    let scenario = registry::by_name("double-failover/alg1").expect("suite scenario");
    let outcome = ServiceSimDriver.run(&scenario);
    assert_eq!(outcome.inflight, 0);
    assert_eq!(
        outcome.committed + outcome.rejected + outcome.stalled,
        outcome.requests
    );
    // The `RequestState` surface stays exported through the facade (used
    // by downstream tooling to interpret per-request dumps).
    assert!(matches!(
        RequestState::Committed { at: 1 },
        RequestState::Committed { .. }
    ));
}
