//! Edge cases across the facade: degenerate system sizes and less-used
//! schedulers.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::sim::prelude::*;
use omega_shm::sim::Simulation;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn single_process_systems_elect_themselves() {
    // n = 1: the only process is trivially the eventual leader in every
    // variant (candidates = {self}, no one to suspect).
    for variant in OmegaVariant::all() {
        let sys = variant.build(1);
        let report = Simulation::builder(sys.actors)
            .adversary(SeededRandom::new(3, 1, 5))
            .horizon(5_000)
            .sample_every(50)
            .run();
        let stab = report
            .stabilization()
            .unwrap_or_else(|| panic!("{variant}: singleton must stabilize"));
        assert_eq!(stab.leader, p(0));
        assert!(report.stabilized_for(0.5), "{variant}: and quickly");
    }
}

#[test]
fn two_processes_one_crash_leaves_survivor() {
    for variant in [OmegaVariant::Alg1, OmegaVariant::Alg2] {
        let sys = variant.build(2);
        let report = Simulation::builder(sys.actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(9, 1, 4),
                p(1),
                SimTime::ZERO,
                3,
            ))
            .crash_plan(
                omega_shm::sim::crash::CrashPlan::none()
                    .with_crash_at(SimTime::from_ticks(3_000), p(0)),
            )
            .horizon(30_000)
            .sample_every(50)
            .run();
        let stab = report.stabilization().unwrap();
        assert_eq!(stab.leader, p(1), "{variant}: the survivor leads");
    }
}

#[test]
fn round_robin_schedule_elects() {
    // The RoundRobin adversary is the strictest fair rotation; everyone is
    // timely, so AWB holds trivially and all variants elect.
    for variant in OmegaVariant::all() {
        let n = 4;
        let sys = variant.build(n);
        let report = Simulation::builder(sys.actors)
            .adversary(RoundRobin::new(n, 2))
            .horizon(40_000)
            .sample_every(100)
            .run();
        let stab = report
            .stabilization()
            .unwrap_or_else(|| panic!("{variant}: round-robin must elect"));
        assert!(report.correct.contains(stab.leader));
    }
}

#[test]
fn immediate_crash_of_everyone_but_one() {
    // All crashes land before the first sample: the survivor must still
    // come to lead, starting from a world of corpses.
    let sys = OmegaVariant::Alg1.build(4);
    let report = Simulation::builder(sys.actors)
        .adversary(Synchronous::new(2))
        .crash_plan(
            omega_shm::sim::crash::CrashPlan::none()
                .with_crash_at(SimTime::from_ticks(1), p(0))
                .with_crash_at(SimTime::from_ticks(1), p(1))
                .with_crash_at(SimTime::from_ticks(1), p(3)),
        )
        .horizon(20_000)
        .sample_every(50)
        .run();
    let stab = report.stabilization().expect("survivor elects");
    assert_eq!(stab.leader, p(2));
    assert_eq!(report.correct.len(), 1);
}

#[test]
fn zero_tick_tau1_is_awb_from_the_start() {
    let sys = OmegaVariant::Alg1.build(3);
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            SeededRandom::new(5, 1, 30),
            p(0),
            SimTime::ZERO,
            2,
        ))
        .horizon(30_000)
        .sample_every(50)
        .run();
    assert!(report.stabilization().is_some());
}
