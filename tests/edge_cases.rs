//! Edge cases across the facade: degenerate system sizes and less-used
//! schedulers, all expressed as scenarios.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::{AdversarySpec, Driver, Scenario, SimDriver};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn single_process_systems_elect_themselves() {
    // n = 1: the only process is trivially the eventual leader in every
    // variant (candidates = {self}, no one to suspect).
    for variant in OmegaVariant::all() {
        let scenario = Scenario::fault_free(variant, 1)
            .adversary(AdversarySpec::Random { min: 1, max: 5 })
            .without_awb()
            .expect_stabilization(true)
            .seed(3)
            .horizon(5_000)
            .sample_every(50);
        let outcome = SimDriver.run(&scenario);
        assert_eq!(
            outcome.elected,
            Some(p(0)),
            "{variant}: singleton must stabilize"
        );
        assert!(outcome.stabilized_for(0.5), "{variant}: and quickly");
    }
}

#[test]
fn two_processes_one_crash_leaves_survivor() {
    for variant in [OmegaVariant::Alg1, OmegaVariant::Alg2] {
        let scenario = Scenario::fault_free(variant, 2)
            .adversary(AdversarySpec::Random { min: 1, max: 4 })
            .awb(p(1), 0, 3)
            .seed(9)
            .crash_at(3_000, p(0))
            .horizon(30_000)
            .sample_every(50);
        let outcome = SimDriver.run(&scenario);
        assert_eq!(outcome.elected, Some(p(1)), "{variant}: the survivor leads");
    }
}

#[test]
fn round_robin_schedule_elects() {
    // The RoundRobin adversary is the strictest fair rotation; everyone is
    // timely, so AWB holds trivially and all variants elect.
    for variant in OmegaVariant::all() {
        let scenario = Scenario::fault_free(variant, 4)
            .adversary(AdversarySpec::RoundRobin { slot: 2 })
            .without_awb()
            .expect_stabilization(true)
            .horizon(40_000)
            .sample_every(100);
        let outcome = SimDriver.run(&scenario);
        assert!(outcome.stabilized, "{variant}: round-robin must elect");
        assert!(outcome.leader_is_correct(), "{variant}");
    }
}

#[test]
fn immediate_crash_of_everyone_but_one() {
    // All crashes land before the first sample: the survivor must still
    // come to lead, starting from a world of corpses.
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
        .adversary(AdversarySpec::Synchronous { period: 2 })
        .without_awb()
        .expect_stabilization(true)
        .crash_at(1, p(0))
        .crash_at(1, p(1))
        .crash_at(1, p(3))
        .horizon(20_000)
        .sample_every(50);
    let outcome = SimDriver.run(&scenario);
    assert_eq!(outcome.elected, Some(p(2)), "survivor elects");
    assert_eq!(outcome.correct.len(), 1);
}

#[test]
fn zero_tick_tau1_is_awb_from_the_start() {
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
        .adversary(AdversarySpec::Random { min: 1, max: 30 })
        .awb(p(0), 0, 2)
        .seed(5)
        .horizon(30_000)
        .sample_every(50);
    SimDriver.run(&scenario).assert_election();
}
