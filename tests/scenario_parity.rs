//! Cross-backend parity: the point of the whole Scenario API.
//!
//! A single `Scenario` value must run unmodified on both the deterministic
//! simulator and the native thread runtime and yield a comparable
//! `Outcome` — same type, same tick units, same instrumentation. These
//! tests assert the paper-level invariants that must agree across
//! backends: a correct leader is elected for every Ω variant, the
//! write-optimality/boundedness shapes match, and the outcome metadata
//! lines up.

use omega_shm::omega::OmegaVariant;
use omega_shm::scenario::{registry, Driver, Outcome, Scenario, SimDriver, ThreadDriver};

/// A scenario both backends can finish quickly: modest horizon (the thread
/// driver maps 120k ticks × 100 µs = a 12 s budget but returns at
/// stabilization, typically well under a second).
fn parity_scenario(variant: OmegaVariant, n: usize) -> Scenario {
    Scenario::fault_free(variant, n)
        .named(format!("parity/{}/n{n}", variant.name()))
        .horizon(120_000)
}

fn assert_comparable(scenario: &Scenario, sim: &Outcome, native: &Outcome) {
    // Identical metadata: the outcomes describe the same experiment.
    assert_eq!(sim.scenario, native.scenario);
    assert_eq!(sim.variant, native.variant);
    assert_eq!(sim.n, native.n);
    assert_eq!(sim.horizon_ticks, native.horizon_ticks);
    assert_eq!(
        sim.register_count, native.register_count,
        "{}: both backends build the same register layout",
        scenario.name
    );
    assert_eq!(sim.backend, "sim");
    assert_eq!(native.backend, "threads");

    // The Ω contract holds on both.
    sim.assert_election();
    native.assert_election();

    // Both backends measured real traffic through the same instrumentation.
    for outcome in [sim, native] {
        assert!(
            outcome.total_writes() > 0 && outcome.total_reads() > 0,
            "{} [{}]: no measured shared-memory traffic",
            scenario.name,
            outcome.backend
        );
        assert!(
            outcome.steps.iter().all(|&s| s > 0),
            "{} [{}]: some process never stepped",
            scenario.name,
            outcome.backend
        );
        assert!(
            outcome.stabilization_ticks.unwrap() <= outcome.horizon_ticks,
            "{} [{}]: stabilization tick beyond horizon",
            scenario.name,
            outcome.backend
        );
    }
}

#[test]
fn every_variant_agrees_across_backends() {
    for variant in OmegaVariant::all() {
        let scenario = parity_scenario(variant, 3);
        let sim = SimDriver.run(&scenario);
        let native = ThreadDriver::default().run(&scenario);
        assert_comparable(&scenario, &sim, &native);
    }
}

#[test]
fn failover_scenario_agrees_across_backends() {
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("parity/failover")
        .crash_leader_at(3_000)
        .horizon(240_000);
    let sim = SimDriver.run(&scenario);
    let native = ThreadDriver::default().run(&scenario);
    assert_comparable(&scenario, &sim, &native);
    for outcome in [&sim, &native] {
        assert_eq!(
            outcome.crashed.len(),
            1,
            "[{}] exactly the deposed leader fell",
            outcome.backend
        );
        assert!(
            !outcome.crashed.contains(outcome.elected.unwrap()),
            "[{}] a crashed process cannot stay leader",
            outcome.backend
        );
    }
}

#[test]
fn write_shape_matches_across_backends() {
    // Theorem 3 vs Corollary 1, observed identically through both drivers:
    // Figure 2 converges to a lone writer; Figure 5 keeps everyone writing.
    let alg1 = parity_scenario(OmegaVariant::Alg1, 3);
    let sim = SimDriver.run(&alg1);
    let sim_tail = sim.tail.as_ref().expect("sim captures a tail");
    assert_eq!(sim_tail.writers.len(), 1, "sim: single tail writer");

    let alg2 = parity_scenario(OmegaVariant::Alg2, 3);
    let sim2 = SimDriver.run(&alg2);
    let sim2_tail = sim2.tail.as_ref().expect("tail captured");
    assert_eq!(
        sim2_tail.writers.len(),
        3,
        "sim alg2: everyone writes forever"
    );
    assert!(sim2.grown_in_tail.is_empty(), "sim alg2: fully bounded");

    // On threads, "everyone writes forever" is an eventually-statement
    // observed over one wall-clock window, and a node's T2 thread can be
    // starved for an entire window when the test host is saturated — so
    // allow a couple of fresh runs before judging.
    let mut native2 = ThreadDriver::default().run(&alg2);
    for _ in 0..2 {
        let settled = native2
            .tail
            .as_ref()
            .is_some_and(|t| t.writers.len() == 3 && native2.grown_in_tail.is_empty());
        if settled {
            break;
        }
        native2 = ThreadDriver::default().run(&alg2);
    }
    let tail = native2.tail.as_ref().expect("tail captured");
    assert_eq!(
        tail.writers.len(),
        3,
        "[threads] alg2: every correct process writes forever"
    );
    assert!(
        native2.grown_in_tail.is_empty(),
        "[threads] alg2: fully bounded"
    );
}

#[test]
fn registry_scenarios_are_backend_free() {
    // Every registry entry must at least *run* on the simulator; the suite
    // is the shared vocabulary of tests and benches, so a scenario that
    // panics in a driver is a bug even before its assertions.
    for scenario in registry::all() {
        if scenario.n > 8 {
            continue; // scaling probes excluded from the quick matrix
        }
        let outcome = SimDriver.run(&scenario);
        assert_eq!(outcome.scenario, scenario.name);
    }
    // And one registry entry end-to-end on threads.
    let outcome = ThreadDriver::default().run(&registry::fault_free());
    outcome.assert_election();
}
