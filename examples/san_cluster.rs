//! SAN cluster: the paper's motivating deployment.
//!
//! ```text
//! cargo run --release --example san_cluster
//! ```
//!
//! Section 1 of the paper motivates shared-memory Ω with storage area
//! networks: "computers that communicate through a network of attached
//! disks … such architectures are becoming more and more attractive for
//! achieving fault-tolerance". This example shows both halves of that
//! story:
//!
//! 1. the register ↔ disk-block mapping (one block per 1WnR register, the
//!    Disk-Paxos layout) on a simulated latency-injecting SAN disk, and
//! 2. an election cluster running with SAN-like pacing: everything is three
//!    orders of magnitude slower, and nothing about the algorithm changes —
//!    its assumptions are only about *eventual* timeliness.

use std::time::{Duration, Instant};

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::runtime::san::{DiskRegisterLayout, SanDisk, SanLatency};
use omega_shm::scenario::{Scenario, ThreadDriver};

fn main() {
    // ---- Part 1: registers as disk blocks -------------------------------
    let n = 4;
    println!("== Part 1: the Figure-2 registers laid out on a shared disk ==");
    let disk = SanDisk::new(SanLatency::commodity(), 2026);
    let layout = DiskRegisterLayout::new(&disk, n);
    println!(
        "{} machines -> {} disk blocks (PROGRESS: {}, STOP: {}, SUSPICIONS: {})",
        n,
        layout.blocks(),
        n,
        n,
        n * n
    );

    // Machine 0 heartbeats through its PROGRESS block; everyone reads it.
    let start = Instant::now();
    for beat in 1..=5u64 {
        layout.progress[0].write(ProcessId::new(0), beat);
    }
    let observed = layout.progress[0].read(ProcessId::new(3));
    println!(
        "machine 3 reads machine 0's heartbeat = {} after {} block accesses ({:?} of simulated SAN latency)",
        observed,
        disk.accesses(),
        start.elapsed()
    );
    assert_eq!(observed, 5);

    // ---- Part 2: the election cluster at SAN pacing ---------------------
    println!();
    println!("== Part 2: electing over 'disks' (SAN-like pacing, Algorithm 2) ==");
    println!("(bounded registers matter on real disks: a counter can outgrow a block)");
    let scenario = Scenario::fault_free(OmegaVariant::Alg2, n).named("san-cluster");
    let cluster = ThreadDriver::san_like().launch(&scenario);
    let started = Instant::now();
    let leader = cluster
        .await_stable_leader(Duration::from_millis(300), Duration::from_secs(30))
        .expect("SAN pacing changes constants, not correctness");
    println!("stable leader after {:?}: {leader}", started.elapsed());

    println!("crashing {leader} (pulling the machine, not the disk)…");
    cluster.crash(leader);
    let next = cluster
        .await_stable_leader(Duration::from_millis(300), Duration::from_secs(30))
        .expect("failover over the SAN");
    println!("re-elected {next} after {:?} total", started.elapsed());
    assert_ne!(next, leader);

    // Boundedness is what makes Algorithm 2 disk-friendly: report it.
    let fp = cluster.space().footprint();
    println!(
        "total shared state ever needed: {} bits across {} registers (all bounded)",
        fp.total_hwm_bits(),
        fp.rows().len()
    );
    cluster.shutdown();
}
