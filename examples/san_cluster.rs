//! SAN cluster: the paper's motivating deployment.
//!
//! ```text
//! cargo run --release --example san_cluster
//! ```
//!
//! Section 1 of the paper motivates shared-memory Ω with storage area
//! networks: "computers that communicate through a network of attached
//! disks … such architectures are becoming more and more attractive for
//! achieving fault-tolerance". This example shows both halves of that
//! story:
//!
//! 1. the register ↔ disk-block mapping (one block per 1WnR register, the
//!    Disk-Paxos layout) on a simulated latency-injecting SAN disk, and
//! 2. an election cluster whose shared registers *actually live on that
//!    disk*: every access pays simulated SAN latency, pacing stretches to
//!    match ([`NodeConfig::san_paced`]), and nothing about the algorithm
//!    changes — its assumptions are only about *eventual* timeliness.
//!
//! (For scripted experiments use `omega_scenario::SanDriver`, which wraps
//! exactly this flow behind the standard `Driver` interface.)

use std::time::{Duration, Instant};

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::runtime::san::{DiskRegisterLayout, SanDisk, SanLatency};
use omega_shm::runtime::{Cluster, NodeConfig};

fn main() {
    // ---- Part 1: registers as disk blocks -------------------------------
    let n = 4;
    println!("== Part 1: the Figure-2 registers laid out on a shared disk ==");
    let disk = SanDisk::new(SanLatency::commodity(), 2026);
    let layout = DiskRegisterLayout::new(&disk, n);
    println!(
        "{} machines -> {} disk blocks (PROGRESS: {}, STOP: {}, SUSPICIONS: {})",
        n,
        layout.blocks(),
        n,
        n,
        n * n
    );

    // Machine 0 heartbeats through its PROGRESS block; everyone reads it.
    let start = Instant::now();
    for beat in 1..=5u64 {
        layout.progress[0].write(ProcessId::new(0), beat);
    }
    let observed = layout.progress[0].read(ProcessId::new(3));
    println!(
        "machine 3 reads machine 0's heartbeat = {} after {} block accesses ({:?} of simulated SAN latency)",
        observed,
        disk.accesses(),
        start.elapsed()
    );
    assert_eq!(observed, 5);

    // ---- Part 2: the election cluster ON the disk -----------------------
    println!();
    println!("== Part 2: electing over disk blocks (Algorithm 2 on the SAN) ==");
    println!("(bounded registers matter on real disks: a counter can outgrow a block)");
    // A faster disk than Part 1's, so the demo stays interactive; pacing
    // stretches with the latency model either way.
    let latency = SanLatency {
        base: Duration::from_micros(50),
        jitter: Duration::from_micros(50),
    };
    let san = SanDisk::new(latency, 2027);
    let space = san.memory_space(n);
    let cluster = Cluster::start_in(OmegaVariant::Alg2, &space, NodeConfig::san_paced(latency));
    let started = Instant::now();
    let leader = cluster
        .await_stable_leader(Duration::from_millis(300), Duration::from_secs(30))
        .expect("SAN latency changes constants, not correctness");
    println!("stable leader after {:?}: {leader}", started.elapsed());

    println!("crashing {leader} (pulling the machine, not the disk)…");
    cluster.crash(leader);
    let next = cluster
        .await_stable_leader(Duration::from_millis(300), Duration::from_secs(30))
        .expect("failover over the SAN");
    println!("re-elected {next} after {:?} total", started.elapsed());
    assert_ne!(next, leader);

    // Boundedness is what makes Algorithm 2 disk-friendly: report it,
    // along with what the disk itself served.
    let fp = cluster.space().footprint();
    let stats = san.stats();
    println!(
        "total shared state ever needed: {} bits across {} registers (all bounded)",
        fp.total_hwm_bits(),
        fp.rows().len()
    );
    println!(
        "disk served {} block accesses over {} blocks ({:.1} ms simulated service time)",
        stats.accesses,
        stats.blocks_touched,
        stats.service_time.as_secs_f64() * 1e3
    );
    cluster.shutdown();
}
