//! Leadership as a service: subscribe to Ω instead of polling it.
//!
//! ```text
//! cargo run --release --example leader_watch
//! ```
//!
//! A downstream system (a primary-backup store, a job scheduler, a lock
//! service) doesn't poll `leader()` — it reacts to *changes*. This example
//! runs an election cluster, subscribes to leadership events, and walks a
//! chain of crashes.
//!
//! One deliberate lesson: Ω's agreement may **flap** while an election is
//! settling, so a queued promotion event can already be stale by the time
//! you act on it. Fencing decisions must therefore be based on the watch's
//! *current* state ([`LeaderWatch::current`]); the event stream is perfect
//! for narration, auditing, and cache invalidation — not for choosing whom
//! to fence.
//!
//! [`LeaderWatch::current`]: omega_shm::runtime::LeaderWatch::current

use std::sync::Arc;
use std::time::Duration;

use omega_shm::omega::OmegaVariant;
use omega_shm::runtime::LeaderWatch;
use omega_shm::scenario::{Scenario, ThreadDriver};

fn main() {
    let n = 5;
    println!("starting {n}-process cluster + leadership watch…");
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, n).named("leader-watch");
    let cluster = Arc::new(ThreadDriver::default().launch(&scenario));
    let mut watch = LeaderWatch::start(Arc::clone(&cluster), Duration::from_millis(1));
    let events = watch.subscribe();

    let deadline = Duration::from_secs(10);
    let mut history = Vec::new();

    for round in 1..=3 {
        // Authoritative state, not a (possibly stale) event:
        let leader = watch.await_leader(deadline).expect("agreed leader");
        println!("  reign #{round}: {leader}");
        history.push(leader);

        println!("  crash!    {leader} is gone");
        cluster.crash(leader);

        // Wait until the authoritative view moves off the corpse.
        let deadline_at = std::time::Instant::now() + deadline;
        loop {
            match watch.current() {
                Some(current) if current != leader => break,
                _ if std::time::Instant::now() > deadline_at => {
                    panic!("no re-election observed within {deadline:?}")
                }
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }
    let last = watch.await_leader(deadline).expect("final leader");
    history.push(last);

    // Narrate the audit trail the subscription captured.
    let audit = events.drain();
    println!();
    println!("audit trail ({} events):", audit.len());
    for e in &audit {
        let prev = e.previous.map_or("∅".to_string(), |p| p.to_string());
        let cur = e
            .current
            .map_or("∅ (no agreement)".to_string(), |p| p.to_string());
        println!("    {prev} → {cur}");
    }

    // Sanity: each reign's leader was distinct, last leader is alive.
    for w in history.windows(2) {
        assert_ne!(w[0], w[1], "a crashed leader cannot reign twice in a row");
    }
    assert!(cluster.correct().contains(last));
    println!();
    println!(
        "reign history: {}  — survivors {:?}",
        history
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" → "),
        cluster.correct()
    );

    watch.shutdown();
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("cluster still referenced"),
    }
}
