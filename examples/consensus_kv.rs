//! A replicated key-value store: Ω put to work.
//!
//! ```text
//! cargo run --release --example consensus_kv
//! ```
//!
//! Ω matters because it is the weakest failure detector for shared-memory
//! consensus. This example replicates a KV store across four simulated
//! processes: commands are submitted at different replicas, sequenced
//! through the Ω-driven replicated log, and applied to deterministic state
//! machines — which end up identical everywhere, across a leader crash.

use std::sync::Arc;

use omega_shm::consensus::{KvCommand, KvStore, LogActor, LogHandle, LogShared};
use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::Scenario;
use omega_shm::sim::Actor;

fn main() {
    let n = 4;
    println!("replicating a KV store over {n} processes (Ω = Figure 2 + round-based consensus)…");

    let (space, omegas) = OmegaVariant::Alg1.build_processes(n);
    let shared = LogShared::<KvCommand>::new(space);

    // Different replicas receive different client commands.
    let client_commands: Vec<(usize, KvCommand)> = vec![
        (0, KvCommand::Put("region/eu".into(), 3)),
        (1, KvCommand::Put("region/us".into(), 7)),
        (2, KvCommand::Put("region/ap".into(), 5)),
        (1, KvCommand::Delete("region/eu".into())),
        (3, KvCommand::Put("region/eu".into(), 9)),
    ];

    let mut actors: Vec<Box<dyn Actor>> = Vec::new();
    let mut handles_meta = Vec::new();
    for omega in omegas {
        let pid = omega.pid();
        let mut handle = LogHandle::new(Arc::clone(&shared), pid);
        for (target, cmd) in &client_commands {
            if *target == pid.index() {
                handle.submit(cmd.clone());
            }
        }
        handles_meta.push(pid);
        actors.push(Box::new(LogActor::new(omega, handle)));
    }

    // Crash whoever leads a sixth of the way in: replication must survive.
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, n)
        .named("consensus-kv")
        .awb(ProcessId::new(3), 500, 4)
        .seed(12)
        .crash_leader_at(20_000)
        .horizon(120_000)
        .sample_every(100);
    let report = scenario.sim_builder(actors).run();

    let crashed: Vec<String> = report.crashed.iter().map(|p| p.to_string()).collect();
    println!("crashed leader mid-run: [{}]", crashed.join(", "));

    // Rebuild every replica's state machine from the decided slots.
    let slots = shared.allocated_slots();
    let mut committed = Vec::new();
    for k in 0..slots {
        if let Some(cmd) = shared.instance(k).peek_decision() {
            committed.push(cmd);
        } else {
            break; // only the decided prefix counts
        }
    }
    println!("decided log prefix ({} entries):", committed.len());
    for (k, cmd) in committed.iter().enumerate() {
        println!("  slot {k}: {cmd:?}");
    }

    let mut store = KvStore::new();
    store.apply_committed(&committed);
    println!("replicated state ({} keys):", store.len());
    for (key, value) in store.iter() {
        println!("  {key} = {value}");
    }

    // Every command from a surviving submitter must be in the log.
    let survivors = &report.correct;
    let expected: usize = client_commands
        .iter()
        .filter(|(t, _)| survivors.contains(ProcessId::new(*t)))
        .count();
    assert!(
        committed.len() >= expected,
        "survivors' commands must commit ({} < {expected})",
        committed.len()
    );
    println!(
        "{} of {} submitted commands committed (crashed submitters may lose queued ones) — replication held.",
        committed.len(),
        client_commands.len()
    );
}
