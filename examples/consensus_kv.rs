//! A replicated key-value store: Ω put to work — as a *service*.
//!
//! ```text
//! cargo run --release --example consensus_kv
//! ```
//!
//! Ω matters because it is the weakest failure detector for shared-memory
//! consensus. Earlier revisions of this example drove the replicated log
//! by hand; the service layer (`omega_shm::service`) now provides the real
//! client path — routing, leader gating, per-request outcomes — so the
//! example exercises it twice:
//!
//! 1. **A hand-held mini-cluster** — three replicas polled step by step,
//!    client requests routed through the ledger to the believed leader,
//!    puts sequenced through the Ω-gated log, state machines verified
//!    identical on every replica.
//! 2. **The headline experiment** — the registry's `failover/alg1`
//!    scenario: thousands of open-loop clients, a scripted leader crash,
//!    and the user-visible unavailability window it causes.

use std::sync::Arc;

use omega_shm::consensus::{KvCommand, LogShared};
use omega_shm::registers::{MemorySpace, ProcessId};
use omega_shm::scenario::CrashSpec;
use omega_shm::service::{
    registry, Ledger, RequestKind, RequestMeta, RequestState, ServiceNode, ServiceSimDriver,
    WorkloadSpec,
};

/// Part 1: a three-replica service driven by hand, so every moving part is
/// visible — the router, the leader gate, the log, the replicas.
fn mini_cluster() {
    let n = 3;
    println!("— mini-cluster: {n} replicas, requests routed through the service ledger —");

    // Five client requests: four puts and a get, all with generous
    // deadlines. A put's committed value is its request id, so the last
    // put to a key must win.
    let kinds = [
        RequestKind::Put { key: 3 },
        RequestKind::Put { key: 7 },
        RequestKind::Put { key: 5 },
        RequestKind::Get { key: 3 },
        RequestKind::Put { key: 3 },
    ];
    let meta: Vec<RequestMeta> = kinds
        .iter()
        .enumerate()
        .map(|(id, &kind)| RequestMeta {
            arrival: id as u64,
            deadline: id as u64 + 10_000,
            fail_fast: None,
            client: id as u64,
            kind,
        })
        .collect();

    let space = MemorySpace::new(n);
    let shared = LogShared::<KvCommand>::new(space);
    let ledger = Ledger::new(meta, n);
    let mut nodes: Vec<ServiceNode> = ProcessId::all(n)
        .map(|pid| ServiceNode::new(pid, Arc::clone(&ledger), Arc::clone(&shared)))
        .collect();

    // Elect replica 1 by fiat (part 2 lets Ω do this for real): every
    // replica publishes the same estimate, so the router targets it.
    let leader = ProcessId::new(1);
    for pid in ProcessId::all(n) {
        ledger.publish(pid, Some(leader));
    }
    for id in 0..ledger.requests() {
        ledger.issue(id, id as u64);
    }
    // Poll until everything resolves and every replica has caught up.
    for now in 0..2_000u64 {
        for node in &mut nodes {
            node.poll(Some(leader), now);
        }
    }

    for (id, state) in ledger.states().iter().enumerate() {
        assert!(
            matches!(state, RequestState::Committed { .. }),
            "request {id} should commit, got {state:?}"
        );
    }
    println!(
        "  all {} requests committed via the leader",
        ledger.requests()
    );
    let reference: Vec<(String, u64)> = nodes[0]
        .store()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    for node in &nodes {
        assert_eq!(node.committed_slots(), 4, "four puts → four log slots");
        let replica: Vec<(String, u64)> = node
            .store()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(replica, reference, "replicated state must be identical");
    }
    println!("  replicated state, identical on every replica:");
    for (key, value) in &reference {
        println!("    {key} = {value} (value = id of the winning put)");
    }
    let key = WorkloadSpec::key_name(3);
    assert_eq!(nodes[2].store().get(&key), Some(4), "last put (id 4) wins");
}

/// Part 2: the same machinery under open-loop load with Ω actually
/// electing — and losing — the leader.
fn failover_headline() {
    println!("— headline: failover/alg1 under open-loop client load —");
    let scenario = registry::by_name("failover/alg1").expect("registry scenario");
    let crash_tick = match &scenario.election.crashes[0] {
        CrashSpec::LeaderAt { tick } | CrashSpec::At { tick, .. } => *tick,
    };
    println!(
        "  {} clients, leader crash scripted at tick {crash_tick}",
        scenario.workload.clients
    );
    let outcome = ServiceSimDriver.run(&scenario);
    println!(
        "  {} requests: {} committed, {} rejected, {} stalled (p50 {} / p99 {} ticks)",
        outcome.requests,
        outcome.committed,
        outcome.rejected,
        outcome.stalled,
        outcome.commit_p50,
        outcome.commit_p99,
    );
    for window in &outcome.windows {
        println!(
            "  unavailability: crash @{} healed {} — {} ticks, {} requests failed inside",
            window.crash_at,
            window
                .healed_at
                .map_or("never".to_string(), |t| format!("@{t}")),
            window.duration(outcome.horizon),
            window.rejected + window.stalled,
        );
    }
    assert!(outcome.stabilized, "Ω must re-elect after the crash");
    assert!(
        outcome.windows[0].healed_at.is_some(),
        "the service must heal inside the horizon"
    );
    println!("  replication held across the failover.");
}

fn main() {
    mini_cluster();
    println!();
    failover_headline();
}
