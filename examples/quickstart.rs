//! Quickstart: elect a leader on real threads, crash it, watch failover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's headline result as a running program: an
//! asynchronous shared-memory system (threads + atomic registers) where a
//! unique correct leader eventually emerges — and keeps emerging as leaders
//! crash — using Algorithm 1 of Figure 2.

use std::time::Duration;

use omega_shm::omega::OmegaVariant;
use omega_shm::runtime::{Cluster, NodeConfig};

fn main() {
    let n = 5;
    println!("starting {n} election processes on OS threads (Figure 2 algorithm)…");
    let cluster = Cluster::start(OmegaVariant::Alg1, n, NodeConfig::default());

    let window = Duration::from_millis(50);
    let timeout = Duration::from_secs(10);

    let first = cluster
        .await_stable_leader(window, timeout)
        .expect("an eventual leader must emerge");
    println!("elected   : {first}  (all {n} processes agree)");

    // Theorem 3 in action: who is writing shared memory now?
    let before = cluster.space().stats();
    std::thread::sleep(Duration::from_millis(100));
    let delta = cluster.space().stats().delta_since(&before);
    let writers: Vec<String> = delta.writer_set().iter().map(|p| p.to_string()).collect();
    println!("writers   : [{}]  (write-optimality: only the leader writes)", writers.join(", "));

    println!("crashing  : {first}");
    cluster.crash(first);
    let second = cluster
        .await_stable_leader(window, timeout)
        .expect("failover must re-elect");
    println!("re-elected: {second}");
    assert_ne!(second, first);

    println!("crashing  : {second}");
    cluster.crash(second);
    let third = cluster
        .await_stable_leader(window, timeout)
        .expect("second failover");
    println!("re-elected: {third}");
    assert!(cluster.correct().contains(third));

    println!(
        "correct set now {:?}; the oracle kept its promise through two crashes.",
        cluster.correct()
    );
    cluster.shutdown();
}
