//! Quickstart: one scenario, two backends.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's headline result as a running program, stated the
//! way the paper states it: the *same* system description — Algorithm 1,
//! five processes, a leader crash partway through — checked against an
//! adversarial schedule in the deterministic simulator, then executed on
//! real OS threads. One declarative `Scenario`, two `Driver`s, two
//! directly comparable `Outcome`s.

use omega_shm::scenario::{registry, Driver, SimDriver, ThreadDriver};

fn main() {
    let scenario = registry::named("leader-crash-failover").expect("registry scenario");
    println!("scenario: {scenario}");
    println!();

    println!("-- backend 1: deterministic simulator (adversarial schedule) --");
    let simulated = SimDriver.run(&scenario);
    print!("{}", simulated.summary());
    println!();

    println!("-- backend 2: OS threads (wall-clock, same spec) --");
    let native = ThreadDriver::default().run(&scenario);
    print!("{}", native.summary());
    println!();

    // The paper's claims, asserted identically against both backends.
    for outcome in [&simulated, &native] {
        outcome.assert_election(); // Theorem 1: a correct leader emerges…
        assert_eq!(outcome.crashed.len(), 1); // …again, after the crash.
        assert!(
            !outcome.crashed.contains(outcome.elected.unwrap()),
            "a crashed process cannot stay leader"
        );
        assert!(outcome.total_writes() > 0 && outcome.total_reads() > 0);
    }
    println!(
        "both backends elected a correct leader across the crash (sim: {}, threads: {}).",
        simulated.elected.unwrap(),
        native.elected.unwrap(),
    );
    println!("write traffic, step counts, and stabilization ticks above are unit-compatible —");
    println!("that comparability is what the Scenario API buys.");
}
