//! Adversary lab: stress the election with hostile schedules and timers.
//!
//! ```text
//! cargo run --release --example adversary_lab
//! ```
//!
//! The paper's theorems quantify over *every* run satisfying AWB — so the
//! interesting experiments are the hostile ones. This lab runs Algorithm 1
//! against a grid of adversarial schedulers and timer behaviors, inside and
//! outside the AWB envelope, and prints what happened to the election in
//! each cell.

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::sim::prelude::*;
use omega_shm::sim::timers::TimerModel;
use omega_shm::sim::Simulation;

struct Cell {
    schedule: &'static str,
    timers: &'static str,
    awb: bool,
    stabilized: bool,
    leader: Option<ProcessId>,
    changes: usize,
}

fn run_cell(
    schedule: &'static str,
    timers: &'static str,
    adversary: Box<dyn Adversary>,
    timer_factory: impl Fn(ProcessId) -> Box<dyn TimerModel>,
    awb: bool,
) -> Cell {
    let n = 4;
    let sys = OmegaVariant::Alg1.build(n);
    let mut builder = Simulation::builder(sys.actors)
        .horizon(80_000)
        .sample_every(100)
        .timers_from(timer_factory);
    builder = builder.adversary(BoxedAdversary(adversary));
    let report = builder.run();
    let changes = (0..n)
        .map(|i| report.timeline.changes_of(ProcessId::new(i)))
        .sum();
    Cell {
        schedule,
        timers,
        awb,
        stabilized: report.stabilized_for(0.25),
        leader: report.elected_leader(),
        changes,
    }
}

/// Adapter so heterogeneous adversaries fit one collection.
struct BoxedAdversary(Box<dyn Adversary>);

impl Adversary for BoxedAdversary {
    fn next_step_delay(&mut self, pid: ProcessId, now: SimTime) -> u64 {
        self.0.next_step_delay(pid, now)
    }

    fn observe(&mut self, view: &omega_shm::sim::adversary::RunView<'_>) {
        self.0.observe(view);
    }
}

fn main() {
    let p0 = ProcessId::new(0);
    let tau1 = SimTime::from_ticks(2_000);

    let mut cells: Vec<Cell> = Vec::new();

    // Inside the AWB envelope: every combination must elect.
    cells.push(run_cell(
        "synchronous(3)",
        "exact",
        Box::new(Synchronous::new(3)),
        |_| Box::new(ExactTimer),
        true,
    ));
    cells.push(run_cell(
        "random[1,9] + AWB(p0, sigma=4)",
        "exact",
        Box::new(AwbEnvelope::new(SeededRandom::new(3, 1, 9), p0, tau1, 4)),
        |_| Box::new(ExactTimer),
        true,
    ));
    cells.push(run_cell(
        "bursty(stalls ~400) + AWB(p0)",
        "jitter+affine mix",
        Box::new(AwbEnvelope::new(Bursty::new(4, 5, 2, 400, 12), p0, tau1, 4)),
        |pid| {
            if pid.index() % 2 == 0 {
                Box::new(JitteredTimer::new(pid.index() as u64, 5))
            } else {
                Box::new(AffineTimer::new(2, 3))
            }
        },
        true,
    ));
    cells.push(run_cell(
        "random[1,9] + AWB(p0)",
        "chaotic 20k then exact",
        Box::new(AwbEnvelope::new(SeededRandom::new(8, 1, 9), p0, tau1, 4)),
        |pid| {
            Box::new(ChaoticThen::new(
                SimTime::from_ticks(20_000),
                60,
                pid.index() as u64 + 1,
                ExactTimer,
            ))
        },
        true,
    ));

    // Outside the envelope: the staller hunts whoever leads.
    cells.push(run_cell(
        "leader-staller (NO AWB)",
        "stuck-low cap 8",
        Box::new(LeaderStaller::new(2, 4_000)),
        |_| Box::new(StuckLowTimer::new(8)),
        false,
    ));

    println!(
        "{:<34} {:<24} {:>5} {:>11} {:>8} {:>15}",
        "schedule", "timers", "AWB", "stabilized", "leader", "estimate flips"
    );
    println!("{}", "-".repeat(104));
    for cell in &cells {
        println!(
            "{:<34} {:<24} {:>5} {:>11} {:>8} {:>15}",
            cell.schedule,
            cell.timers,
            cell.awb,
            cell.stabilized,
            cell.leader.map_or("-".into(), |l| l.to_string()),
            cell.changes,
        );
        if cell.awb {
            assert!(cell.stabilized, "{}: AWB runs must elect", cell.schedule);
        } else {
            assert!(!cell.stabilized, "{}: the staller must win without AWB", cell.schedule);
        }
    }
    println!();
    println!("inside AWB: every hostile schedule still elects (few flips, then silence).");
    println!("outside AWB: the leader-staller demotes every emerging leader forever —");
    println!("the assumption is doing real work.");
}
