//! Adversary lab: stress the election with hostile schedules and timers.
//!
//! ```text
//! cargo run --release --example adversary_lab
//! ```
//!
//! The paper's theorems quantify over *every* run satisfying AWB — so the
//! interesting experiments are the hostile ones. This lab declares a grid
//! of scenarios for Algorithm 1: adversarial schedulers and timer
//! behaviors, inside and outside the AWB envelope, and prints what
//! happened to the election in each cell. Every cell is a plain
//! [`Scenario`] value; the simulator driver realizes them all.
//!
//! [`Scenario`]: omega_shm::scenario::Scenario

use omega_shm::omega::OmegaVariant;
use omega_shm::registers::ProcessId;
use omega_shm::scenario::{AdversarySpec, Driver, Scenario, SimDriver, TimerSpec};

fn main() {
    let n = 4;
    let p0 = ProcessId::new(0);
    let tau1 = 2_000;

    let base = |name: &str| {
        Scenario::fault_free(OmegaVariant::Alg1, n)
            .named(name)
            .horizon(80_000)
            .sample_every(100)
    };

    // Inside the AWB envelope: every combination must elect.
    // Outside (the trailing cell): the staller hunts whoever leads.
    let cells: Vec<(Scenario, &str, &str)> = vec![
        (
            base("synchronous")
                .adversary(AdversarySpec::Synchronous { period: 3 })
                .without_awb()
                .expect_stabilization(true),
            "synchronous(3)",
            "exact",
        ),
        (
            base("random-awb")
                .adversary(AdversarySpec::Random { min: 1, max: 9 })
                .awb(p0, tau1, 4)
                .seed(3),
            "random[1,9] + AWB(p0, sigma=4)",
            "exact",
        ),
        (
            base("bursty-awb")
                .adversary(AdversarySpec::Bursty {
                    fast: 2,
                    stall: 400,
                    burst_len: 12,
                })
                .awb(p0, tau1, 4)
                .timers(TimerSpec::JitterAffineMix {
                    jitter: 5,
                    scale: 2,
                    offset: 3,
                })
                .seed(5),
            "bursty(stalls ~400) + AWB(p0)",
            "jitter+affine mix",
        ),
        (
            base("chaotic-timers-awb")
                .adversary(AdversarySpec::Random { min: 1, max: 9 })
                .awb(p0, tau1, 4)
                .timers(TimerSpec::ChaoticThenExact {
                    chaos_until: 20_000,
                    chaos_max: 60,
                })
                .seed(8),
            "random[1,9] + AWB(p0)",
            "chaotic 20k then exact",
        ),
        (
            base("staller-no-awb")
                .without_awb()
                .adversary(AdversarySpec::LeaderStaller {
                    base: 2,
                    stall: 4_000,
                })
                .timers(TimerSpec::StuckLow { cap: 8 }),
            "leader-staller (NO AWB)",
            "stuck-low cap 8",
        ),
    ];

    println!(
        "{:<34} {:<24} {:>5} {:>11} {:>8} {:>15}",
        "schedule", "timers", "AWB", "stabilized", "leader", "estimate flips"
    );
    println!("{}", "-".repeat(104));
    for (scenario, schedule, timers) in &cells {
        let outcome = SimDriver.run(scenario);
        let stabilized = outcome.stabilized_for(0.25);
        let flips: usize = outcome.estimate_changes.iter().sum();
        println!(
            "{:<34} {:<24} {:>5} {:>11} {:>8} {:>15}",
            schedule,
            timers,
            scenario.expect_stabilization,
            stabilized,
            outcome.elected.map_or("-".into(), |l| l.to_string()),
            flips,
        );
        if scenario.expect_stabilization {
            assert!(stabilized, "{schedule}: AWB runs must elect");
        } else {
            assert!(!stabilized, "{schedule}: the staller must win without AWB");
        }
    }
    println!();
    println!("inside AWB: every hostile schedule still elects (few flips, then silence).");
    println!("outside AWB: the leader-staller demotes every emerging leader forever —");
    println!("the assumption is doing real work.");
}
