//! # omega-shm — electing an eventual leader in asynchronous shared memory
//!
//! A production-quality Rust reproduction of *“Electing an Eventual Leader
//! in an Asynchronous Shared Memory System”* (A. Fernández, E. Jiménez,
//! M. Raynal — DSN 2007 / IRISA PI-1821): the Ω eventual-leader oracle
//! built from one-writer/multi-reader atomic registers under the weak
//! **AWB** assumption, together with everything needed to *check* the
//! paper's claims — an instrumented register substrate, a deterministic
//! adversarial simulator, a native thread runtime, an Ω-driven consensus
//! layer, and executable versions of the lower-bound proofs.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`registers`] | `omega-registers` | 1WnR/nWnR atomic registers, instrumentation, linearizability checking |
//! | [`sim`] | `omega-sim` | deterministic event loop, adversaries, AWB timer models, crash plans |
//! | [`omega`] | `omega-core` | Algorithm 1 (Fig. 2), Algorithm 2 (Fig. 5), §3.5 variants |
//! | [`runtime`] | `omega-runtime` | OS-thread clusters, SAN-style disk registers |
//! | [`scenario`] | `omega-scenario` | **the front door**: declarative scenarios, backend drivers, comparable outcomes |
//! | [`consensus`] | `omega-consensus` | round-based consensus, replicated log, KV demo |
//! | [`service`] | `omega-service` | leader-gated replicated KV under open-loop load, failover-unavailability SLO |
//! | [`lowerbound`] | `omega-lowerbound` | broken variants + executable lower-bound proofs |
//!
//! # Five-minute tour
//!
//! Describe the experiment once — variant, system size, schedule, AWB
//! envelope, crash script, horizon — and run the *same spec* on any
//! backend. [`scenario::SimDriver`] checks it against an adversarial
//! schedule in deterministic virtual time:
//!
//! ```
//! use omega_shm::omega::OmegaVariant;
//! use omega_shm::scenario::{Driver, Scenario, SimDriver};
//!
//! // A 5-process Figure-2 system under a seeded random schedule inside an
//! // AWB envelope, with the elected leader crashing at tick 20 000.
//! let scenario = Scenario::fault_free(OmegaVariant::Alg1, 5)
//!     .crash_leader_at(20_000)
//!     .horizon(60_000);
//!
//! let outcome = SimDriver.run(&scenario);
//!
//! // Theorem 1: a correct leader is eventually agreed by everyone — again,
//! // after the crash.
//! outcome.assert_election();
//! assert_eq!(outcome.crashed.len(), 1);
//!
//! // Theorem 3: after stabilization only the leader writes shared memory.
//! let tail = outcome.tail.as_ref().unwrap();
//! assert_eq!(tail.writers.iter().collect::<Vec<_>>(), vec![outcome.elected.unwrap()]);
//! ```
//!
//! [`scenario::ThreadDriver`] runs the identical value on OS threads and
//! wall-clock timers, returning the same [`scenario::Outcome`] type in the
//! same tick units:
//!
//! ```no_run
//! use omega_shm::scenario::{registry, Driver, SimDriver, ThreadDriver};
//!
//! let scenario = registry::named("leader-crash-failover").unwrap();
//! let simulated = SimDriver.run(&scenario);
//! let native = ThreadDriver::default().run(&scenario);
//! assert!(simulated.stabilized && native.stabilized);
//! ```
//!
//! The [`scenario::registry`] ships the curated suite — fault-free
//! baselines, failover chains, crash storms, σ stress, AWB edge cases,
//! scaling probes — used by the integration tests and the `omega-bench`
//! binaries alike.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured record
//! of every figure and theorem.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use omega_consensus as consensus;
pub use omega_core as omega;
pub use omega_lowerbound as lowerbound;
pub use omega_registers as registers;
pub use omega_runtime as runtime;
pub use omega_scenario as scenario;
pub use omega_service as service;
pub use omega_sim as sim;
