//! # omega-shm — electing an eventual leader in asynchronous shared memory
//!
//! A production-quality Rust reproduction of *“Electing an Eventual Leader
//! in an Asynchronous Shared Memory System”* (A. Fernández, E. Jiménez,
//! M. Raynal — DSN 2007 / IRISA PI-1821): the Ω eventual-leader oracle
//! built from one-writer/multi-reader atomic registers under the weak
//! **AWB** assumption, together with everything needed to *check* the
//! paper's claims — an instrumented register substrate, a deterministic
//! adversarial simulator, a native thread runtime, an Ω-driven consensus
//! layer, and executable versions of the lower-bound proofs.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`registers`] | `omega-registers` | 1WnR/nWnR atomic registers, instrumentation, linearizability checking |
//! | [`sim`] | `omega-sim` | deterministic event loop, adversaries, AWB timer models, crash plans |
//! | [`omega`] | `omega-core` | Algorithm 1 (Fig. 2), Algorithm 2 (Fig. 5), §3.5 variants |
//! | [`runtime`] | `omega-runtime` | OS-thread clusters, SAN-style disk registers |
//! | [`consensus`] | `omega-consensus` | round-based consensus, replicated log, KV demo |
//! | [`lowerbound`] | `omega-lowerbound` | broken variants + executable lower-bound proofs |
//!
//! # Five-minute tour
//!
//! ```
//! use omega_shm::omega::OmegaVariant;
//! use omega_shm::sim::prelude::*;
//! use omega_shm::registers::ProcessId;
//!
//! // Build a 5-process Figure-2 system and run it against a seeded
//! // adversary satisfying AWB (p0 eventually timely, everyone else wild).
//! let sys = OmegaVariant::Alg1.build(5);
//! let report = Simulation::builder(sys.actors)
//!     .adversary(AwbEnvelope::new(
//!         SeededRandom::new(7, 1, 8),
//!         ProcessId::new(0),
//!         SimTime::from_ticks(1_000),
//!         4,
//!     ))
//!     .memory(sys.space)
//!     .horizon(30_000)
//!     .run();
//!
//! // Theorem 1: a correct leader is eventually agreed by everyone.
//! let leader = report.elected_leader().expect("AWB ⇒ election");
//! assert!(report.correct.contains(leader));
//!
//! // Theorem 3: after stabilization only that leader writes shared memory.
//! let tail = report.windowed.tail(0.25).unwrap();
//! assert_eq!(tail.writer_set().iter().collect::<Vec<_>>(), vec![leader]);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured record
//! of every figure and theorem.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use omega_consensus as consensus;
pub use omega_core as omega;
pub use omega_lowerbound as lowerbound;
pub use omega_registers as registers;
pub use omega_runtime as runtime;
pub use omega_sim as sim;
