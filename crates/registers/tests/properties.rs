//! Property-based tests for the register substrate, driven by a seeded
//! in-crate generator (determinism over dependency weight): each property
//! is checked across a few hundred randomized cases per run, every failure
//! reproducible from the case number.

use omega_registers::lincheck::{is_linearizable, CompletedOp, History, HistoryRecorder, RegOp};
use omega_registers::{MemorySpace, ProcessId, ProcessSet, RegisterValue};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Minimal xorshift64* generator so this crate's tests stay dependency-free.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn vec(&mut self, max_len: u64) -> Vec<u64> {
        let len = self.below(max_len);
        (0..len).map(|_| self.next()).collect()
    }

    fn nonempty_vec(&mut self, max_len: u64) -> Vec<u64> {
        let mut v = self.vec(max_len);
        if v.is_empty() {
            v.push(self.next());
        }
        v
    }
}

/// Footprints are monotone in magnitude for naturals.
#[test]
fn footprint_monotone() {
    let mut g = Gen::new(11);
    for case in 0..500 {
        let (a, b) = (g.next(), g.next());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            lo.footprint_bits() <= hi.footprint_bits(),
            "case {case}: {lo} vs {hi}"
        );
    }
}

/// Footprint bounds: 1 ≤ bits ≤ 64 and 2^(bits-1) ≤ v (for v > 0).
#[test]
fn footprint_is_bit_length() {
    let mut g = Gen::new(12);
    let edge = [0u64, 1, 2, 3, u64::MAX - 1, u64::MAX];
    for case in 0..500usize {
        let v = if case < edge.len() {
            edge[case]
        } else {
            g.next()
        };
        let bits = v.footprint_bits();
        assert!((1..=64).contains(&bits));
        if v > 0 {
            assert!(v >= 1u64 << (bits - 1), "v={v} bits={bits}");
            if bits < 64 {
                assert!(v < 1u64 << bits, "v={v} bits={bits}");
            }
        }
    }
}

/// Last write wins: after an arbitrary sequence of owner writes, a read
/// observes the final value, and the write counters match.
#[test]
fn swmr_last_write_wins() {
    let mut g = Gen::new(13);
    for case in 0..100 {
        let values = g.nonempty_vec(50);
        let space = MemorySpace::new(2);
        let owner = pid(0);
        let reg = space.nat_register("R", owner, 0);
        for &v in &values {
            reg.write(owner, v);
        }
        assert_eq!(reg.read(pid(1)), *values.last().unwrap(), "case {case}");
        let stats = space.stats();
        assert_eq!(stats.writes_of(owner), values.len() as u64);
        assert_eq!(stats.reads_of(pid(1)), 1);
    }
}

/// The footprint high-water mark equals the max footprint over all values
/// ever stored (including the initial value).
#[test]
fn footprint_hwm_is_max() {
    let mut g = Gen::new(14);
    for case in 0..100 {
        let init = g.next();
        let values = g.vec(40);
        let space = MemorySpace::new(1);
        let owner = pid(0);
        let reg = space.nat_register("R", owner, init);
        for &v in &values {
            reg.write(owner, v);
        }
        let expect = std::iter::once(init)
            .chain(values.iter().copied())
            .map(|v| v.footprint_bits())
            .max()
            .unwrap();
        assert_eq!(
            space.footprint().row("R").unwrap().hwm_bits,
            expect,
            "case {case}"
        );
    }
}

/// Stats deltas are exact: a delta counts precisely the accesses between
/// the two snapshots.
#[test]
fn stats_delta_exact() {
    let mut g = Gen::new(15);
    for case in 0..100 {
        let ops = |g: &mut Gen| -> Vec<(usize, bool)> {
            (0..g.below(30))
                .map(|_| (g.below(3) as usize, g.below(2) == 0))
                .collect()
        };
        let (pre, post) = (ops(&mut g), ops(&mut g));
        let space = MemorySpace::new(3);
        let arr = space.nat_array("A", |_| 0);
        let apply = |ops: &[(usize, bool)]| {
            for &(i, is_write) in ops {
                let p = pid(i);
                if is_write {
                    arr.get(p).write(p, 1);
                } else {
                    arr.get(p).read(p);
                }
            }
        };
        apply(&pre);
        let baseline = space.stats();
        apply(&post);
        let delta = space.stats().delta_since(&baseline);
        let expect_writes = post.iter().filter(|(_, w)| *w).count() as u64;
        let expect_reads = post.len() as u64 - expect_writes;
        assert_eq!(delta.total_writes(), expect_writes, "case {case}");
        assert_eq!(delta.total_reads(), expect_reads, "case {case}");
    }
}

/// ProcessSet behaves like a set of indices.
#[test]
fn process_set_models_btreeset() {
    use std::collections::BTreeSet;
    let mut g = Gen::new(16);
    for case in 0..50 {
        let mut set = ProcessSet::new(100);
        let mut model = BTreeSet::new();
        for _ in 0..g.below(200) {
            let i = g.below(100) as usize;
            if g.below(2) == 0 {
                assert_eq!(set.insert(pid(i)), model.insert(i), "case {case}");
            } else {
                assert_eq!(set.remove(pid(i)), model.remove(&i), "case {case}");
            }
        }
        assert_eq!(set.len(), model.len());
        let got: Vec<usize> = set.iter().map(ProcessId::index).collect();
        let want: Vec<usize> = model.into_iter().collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// Any *sequential* history over a register is linearizable, and reads
/// that report anything other than the latest written value are not.
#[test]
fn sequential_histories_linearize() {
    let mut g = Gen::new(17);
    for case in 0..60 {
        let writes = g.nonempty_vec(20);
        let mut h = History::new();
        let mut t = 0u64;
        let mut latest = 0u64;
        for &v in &writes {
            h.push(CompletedOp {
                process: pid(0),
                op: RegOp::Write(v),
                result: None,
                invoke: t,
                response: t + 1,
            });
            t += 2;
            latest = v;
            h.push(CompletedOp {
                process: pid(1),
                op: RegOp::Read,
                result: Some(latest),
                invoke: t,
                response: t + 1,
            });
            t += 2;
        }
        assert!(is_linearizable(&h, 0), "case {case}");

        // Corrupt the last read to a value that was never the latest there;
        // sequential histories have no overlap, so it must be rejected.
        let mut ops: Vec<_> = h.ops().to_vec();
        let last = ops.len() - 1;
        ops[last].result = Some(latest.wrapping_add(1));
        let mut corrupted = History::new();
        for op in ops {
            corrupted.push(op);
        }
        assert!(!is_linearizable(&corrupted, 0), "case {case}");
    }
}

/// Concurrent stress: many threads hammer a lock-free register while the
/// recorder captures the history; the result must linearize.
#[test]
fn concurrent_stress_linearizes() {
    for round in 0..8 {
        let space = MemorySpace::new(4);
        let owner = pid(0);
        let reg = space.nat_register("R", owner, 0);
        let rec = std::sync::Arc::new(HistoryRecorder::new());

        std::thread::scope(|s| {
            {
                let reg = reg.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    for v in 1..=25u64 {
                        rec.write(owner, v + round, || reg.write(owner, v + round));
                    }
                });
            }
            for r in 1..4 {
                let reg = reg.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        rec.read(pid(r), || reg.read(pid(r)));
                    }
                });
            }
        });

        let history = std::sync::Arc::into_inner(rec).unwrap().finish();
        assert_eq!(history.len(), 100);
        assert!(
            is_linearizable(&history, 0),
            "round {round}: lock-free register produced a non-linearizable history"
        );
    }
}

/// The deliberately torn cell must produce a rejected history when a torn
/// read is observed. We drive it single-threadedly to *construct* the tear
/// deterministically rather than relying on thread timing.
#[test]
fn torn_reads_are_rejected_when_observed() {
    // Handcraft what a torn read looks like: Write(A) then Write(B) complete,
    // then a read returns a mix of A and B.
    let a = 0x0000_0001_0000_0002u64;
    let b = 0x0000_0003_0000_0004u64;
    let torn = 0x0000_0001_0000_0004u64; // hi of A, lo of B — never written
    let mut h = History::new();
    h.push(CompletedOp {
        process: pid(0),
        op: RegOp::Write(a),
        result: None,
        invoke: 0,
        response: 1,
    });
    h.push(CompletedOp {
        process: pid(0),
        op: RegOp::Write(b),
        result: None,
        invoke: 2,
        response: 3,
    });
    h.push(CompletedOp {
        process: pid(1),
        op: RegOp::Read,
        result: Some(torn),
        invoke: 4,
        response: 5,
    });
    assert!(!is_linearizable(&h, 0));
}

/// Multi-writer register stress: several writers with disjoint value
/// ranges plus readers; the recorded history must linearize.
#[test]
fn mwmr_concurrent_stress_linearizes() {
    for round in 0..6 {
        let space = MemorySpace::new(4);
        let reg = space.mwmr_cell::<u64, omega_registers::cell::AtomicNatCell>("M", 0);
        let rec = std::sync::Arc::new(HistoryRecorder::new());
        std::thread::scope(|s| {
            // Two writers with disjoint value ranges.
            for w in 0..2usize {
                let reg = reg.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    for v in 1..=15u64 {
                        let value = (w as u64 + 1) * 1000 + v + round;
                        rec.write(pid(w), value, || reg.write(pid(w), value));
                    }
                });
            }
            // Two readers.
            for r in 2..4usize {
                let reg = reg.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..15 {
                        rec.read(pid(r), || reg.read(pid(r)));
                    }
                });
            }
        });
        let history = std::sync::Arc::into_inner(rec).unwrap().finish();
        assert_eq!(history.len(), 60);
        assert!(
            is_linearizable(&history, 0),
            "round {round}: nWnR register produced a non-linearizable history"
        );
    }
}
