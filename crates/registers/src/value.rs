//! Values storable in shared registers, with bit-footprint accounting.

use std::fmt;

/// A value that can live in an atomic register.
///
/// Beyond the obvious bounds, a register value knows how many bits its
/// *current* contents occupy — this is what lets the substrate measure the
/// paper's boundedness claims (Theorems 2 and 6: which shared variables stay
/// in a bounded domain as the run grows).
///
/// For integers the footprint is the position of the highest set bit (a
/// counter that grows forever has an unbounded footprint); for booleans it is
/// one bit; for compound values it is the sum of the parts.
///
/// # Examples
///
/// ```
/// use omega_registers::RegisterValue;
///
/// assert_eq!(0u64.footprint_bits(), 1);
/// assert_eq!(255u64.footprint_bits(), 8);
/// assert_eq!(true.footprint_bits(), 1);
/// assert_eq!((7u64, false).footprint_bits(), 4);
/// ```
pub trait RegisterValue: Clone + Send + Sync + fmt::Debug + 'static {
    /// Number of bits needed to represent the current value.
    ///
    /// Must be at least 1 for any value (even "empty" values occupy a slot).
    fn footprint_bits(&self) -> u64;

    /// Whether values of this type fit in one 8-byte disk block, i.e.
    /// whether registers of this type may live on a
    /// [`BlockDevice`](crate::BlockDevice). Types that opt in must
    /// implement [`to_block`](Self::to_block) / [`from_block`](Self::from_block)
    /// as exact inverses.
    const BLOCK_ENCODABLE: bool = false;

    /// Encodes the value into one disk block.
    ///
    /// The default (for types with `BLOCK_ENCODABLE = false`) panics: a
    /// disk-backed space refuses such registers at creation time, so this
    /// is unreachable through the public API.
    fn to_block(&self) -> u64 {
        unimplemented!("register value {self:?} is not block-encodable")
    }

    /// Decodes a value from one disk block (inverse of [`to_block`](Self::to_block)).
    fn from_block(_raw: u64) -> Self {
        unimplemented!("register type is not block-encodable")
    }
}

macro_rules! impl_uint_value {
    ($($t:ty),*) => {$(
        impl RegisterValue for $t {
            fn footprint_bits(&self) -> u64 {
                let bits = (<$t>::BITS - self.leading_zeros()) as u64;
                bits.max(1)
            }

            const BLOCK_ENCODABLE: bool = <$t>::BITS <= 64;

            fn to_block(&self) -> u64 {
                *self as u64
            }

            fn from_block(raw: u64) -> Self {
                // Only values previously encoded from Self are decoded, so
                // the narrowing cast is lossless in practice.
                raw as $t
            }
        }
    )*};
}

impl_uint_value!(u8, u16, u32, u64, usize);

impl RegisterValue for bool {
    fn footprint_bits(&self) -> u64 {
        1
    }

    const BLOCK_ENCODABLE: bool = true;

    fn to_block(&self) -> u64 {
        u64::from(*self)
    }

    fn from_block(raw: u64) -> Self {
        raw != 0
    }
}

impl RegisterValue for i64 {
    fn footprint_bits(&self) -> u64 {
        // Sign bit plus magnitude.
        1 + self.unsigned_abs().footprint_bits()
    }
}

impl<T: RegisterValue> RegisterValue for Option<T> {
    fn footprint_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, RegisterValue::footprint_bits)
    }
}

impl<A: RegisterValue, B: RegisterValue> RegisterValue for (A, B) {
    fn footprint_bits(&self) -> u64 {
        self.0.footprint_bits() + self.1.footprint_bits()
    }
}

impl<A: RegisterValue, B: RegisterValue, C: RegisterValue> RegisterValue for (A, B, C) {
    fn footprint_bits(&self) -> u64 {
        self.0.footprint_bits() + self.1.footprint_bits() + self.2.footprint_bits()
    }
}

impl RegisterValue for String {
    fn footprint_bits(&self) -> u64 {
        (8 * self.len() as u64).max(1)
    }
}

impl<T: RegisterValue> RegisterValue for Vec<T> {
    fn footprint_bits(&self) -> u64 {
        self.iter()
            .map(RegisterValue::footprint_bits)
            .sum::<u64>()
            .max(1)
    }
}

impl RegisterValue for crate::ProcessId {
    fn footprint_bits(&self) -> u64 {
        (self.index() as u64).footprint_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn uint_footprints() {
        assert_eq!(0u64.footprint_bits(), 1, "zero still occupies one bit");
        assert_eq!(1u64.footprint_bits(), 1);
        assert_eq!(2u64.footprint_bits(), 2);
        assert_eq!(u64::MAX.footprint_bits(), 64);
        assert_eq!(1024u32.footprint_bits(), 11);
        assert_eq!(7u8.footprint_bits(), 3);
    }

    #[test]
    fn growth_is_monotone_in_magnitude() {
        let mut prev = 0;
        for v in [0u64, 1, 3, 9, 100, 10_000, 1 << 40] {
            let bits = v.footprint_bits();
            assert!(bits >= prev);
            prev = bits;
        }
    }

    #[test]
    fn bool_and_option() {
        assert_eq!(false.footprint_bits(), 1);
        assert_eq!(Some(255u64).footprint_bits(), 9);
        assert_eq!(None::<u64>.footprint_bits(), 1);
    }

    #[test]
    fn signed_includes_sign_bit() {
        assert_eq!(0i64.footprint_bits(), 2);
        assert_eq!((-4i64).footprint_bits(), 4);
    }

    #[test]
    fn tuples_sum_parts() {
        assert_eq!((3u64, true).footprint_bits(), 3);
        assert_eq!((1u64, 1u64, 1u64).footprint_bits(), 3);
    }

    #[test]
    fn strings_and_vecs() {
        assert_eq!(String::new().footprint_bits(), 1);
        assert_eq!("ab".to_string().footprint_bits(), 16);
        assert_eq!(vec![0u8; 4].footprint_bits(), 4);
        assert_eq!(vec![255u8; 4].footprint_bits(), 32);
        assert_eq!(vec![1u64, 255].footprint_bits(), 9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the contract
    fn block_encoding_roundtrips_for_disk_types() {
        for v in [0u64, 1, 255, u64::MAX] {
            assert_eq!(u64::from_block(v.to_block()), v);
        }
        assert!(bool::from_block(true.to_block()));
        assert!(!bool::from_block(false.to_block()));
        assert!(u64::BLOCK_ENCODABLE && bool::BLOCK_ENCODABLE);
        assert!(!String::BLOCK_ENCODABLE && !<(u64, bool)>::BLOCK_ENCODABLE);
    }

    #[test]
    fn process_id_footprint() {
        assert_eq!(ProcessId::new(0).footprint_bits(), 1);
        assert_eq!(ProcessId::new(255).footprint_bits(), 8);
    }
}
