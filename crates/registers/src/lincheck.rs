//! Linearizability checking for register histories.
//!
//! The paper's model assumes *atomic* (linearizable) registers: every read
//! or write appears to take effect instantaneously at some point between its
//! invocation and response (Herlihy & Wing \[15\]). This module records
//! concurrent histories of register operations and decides, by an explicit
//! Wing–Gong search with memoization, whether a linearization exists — so
//! the substrate's atomicity is a *checked* property rather than an article
//! of faith.
//!
//! # Examples
//!
//! ```
//! use omega_registers::lincheck::{HistoryRecorder, is_linearizable};
//! use omega_registers::ProcessId;
//!
//! let recorder = HistoryRecorder::new();
//! let p0 = ProcessId::new(0);
//! let mut value = 0u64;
//! recorder.write(p0, 7, || value = 7);
//! let got = recorder.read(p0, || value);
//! assert_eq!(got, 7);
//! assert!(is_linearizable(&recorder.finish(), 0));
//! ```

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::Mutex;

use crate::ProcessId;

/// One operation on a register.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegOp<T> {
    /// A read; its observed value is stored in [`CompletedOp::result`].
    Read,
    /// A write of the carried value.
    Write(T),
}

/// A completed operation with its real-time interval.
#[derive(Debug, Clone)]
pub struct CompletedOp<T> {
    /// The process that performed the operation.
    pub process: ProcessId,
    /// What the operation was.
    pub op: RegOp<T>,
    /// Value returned by a read (`None` for writes).
    pub result: Option<T>,
    /// Logical invocation timestamp.
    pub invoke: u64,
    /// Logical response timestamp; always greater than `invoke`.
    pub response: u64,
}

/// A finished concurrent history ready for checking.
#[derive(Debug, Clone, Default)]
pub struct History<T> {
    ops: Vec<CompletedOp<T>>,
}

impl<T> History<T> {
    /// Creates an empty history (useful for handcrafting test cases).
    #[must_use]
    pub fn new() -> Self {
        History { ops: Vec::new() }
    }

    /// Adds a completed operation.
    pub fn push(&mut self, op: CompletedOp<T>) {
        self.ops.push(op);
    }

    /// The recorded operations, in recording order.
    #[must_use]
    pub fn ops(&self) -> &[CompletedOp<T>] {
        &self.ops
    }

    /// Number of operations recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

struct Pending<T> {
    process: ProcessId,
    op: RegOp<T>,
    invoke: u64,
    done: Option<(u64, Option<T>)>,
}

/// Thread-safe recorder producing a [`History`].
///
/// Wrap each register operation in [`read`](HistoryRecorder::read) or
/// [`write`](HistoryRecorder::write); the recorder takes invocation and
/// response timestamps around the wrapped closure using a shared logical
/// clock, which preserves the real-time precedence relation between
/// non-overlapping operations.
#[derive(Default)]
pub struct HistoryRecorder<T> {
    clock: AtomicU64,
    slots: Mutex<Vec<Pending<T>>>,
}

impl<T: Clone> HistoryRecorder<T> {
    /// Creates a recorder with an empty history.
    #[must_use]
    pub fn new() -> Self {
        HistoryRecorder {
            clock: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    fn invoke(&self, process: ProcessId, op: RegOp<T>) -> usize {
        let invoke = self.tick();
        let mut slots = self.slots.lock();
        slots.push(Pending {
            process,
            op,
            invoke,
            done: None,
        });
        slots.len() - 1
    }

    fn complete(&self, token: usize, result: Option<T>) {
        let response = self.tick();
        let mut slots = self.slots.lock();
        slots[token].done = Some((response, result));
    }

    /// Records a read performed by `process`; `f` performs the actual read.
    pub fn read(&self, process: ProcessId, f: impl FnOnce() -> T) -> T {
        let token = self.invoke(process, RegOp::Read);
        let value = f();
        self.complete(token, Some(value.clone()));
        value
    }

    /// Records a write of `value` by `process`; `f` performs the actual write.
    pub fn write(&self, process: ProcessId, value: T, f: impl FnOnce()) {
        let token = self.invoke(process, RegOp::Write(value));
        f();
        self.complete(token, None);
    }

    /// Consumes the recorder, returning the completed history.
    ///
    /// # Panics
    ///
    /// Panics if any recorded operation never completed.
    #[must_use]
    pub fn finish(self) -> History<T> {
        let slots = self.slots.into_inner();
        let ops = slots
            .into_iter()
            .map(|p| {
                let (response, result) = p.done.expect("operation never completed");
                CompletedOp {
                    process: p.process,
                    op: p.op,
                    result,
                    invoke: p.invoke,
                    response,
                }
            })
            .collect();
        History { ops }
    }
}

/// Maximum history size the checker accepts.
pub const MAX_CHECKED_OPS: usize = 128;

/// Decides whether `history` is linearizable as a single atomic register
/// with initial value `initial`.
///
/// Implements the Wing–Gong search: repeatedly pick a *minimal* pending
/// operation (one whose invocation precedes the response of every other
/// pending operation), apply it to the register state, and recurse;
/// memoizing `(set of linearized ops, register value)` pairs keeps the
/// search tractable for the history sizes used in testing.
///
/// # Panics
///
/// Panics if the history contains more than [`MAX_CHECKED_OPS`] operations.
#[must_use]
pub fn is_linearizable<T: Clone + Eq + Hash>(history: &History<T>, initial: T) -> bool {
    let n = history.len();
    assert!(
        n <= MAX_CHECKED_OPS,
        "history of {n} ops exceeds MAX_CHECKED_OPS ({MAX_CHECKED_OPS})"
    );
    if n == 0 {
        return true;
    }

    let ops = history.ops();
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut memo: HashSet<(u128, T)> = HashSet::new();
    search(ops, 0, initial, full, &mut memo)
}

fn search<T: Clone + Eq + Hash>(
    ops: &[CompletedOp<T>],
    done: u128,
    value: T,
    full: u128,
    memo: &mut HashSet<(u128, T)>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, value.clone())) {
        return false;
    }
    // The next linearized op must be minimal: no *pending* op's response
    // precedes its invocation.
    let min_pending_response = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, op)| op.response)
        .min()
        .expect("at least one pending op");
    for (i, op) in ops.iter().enumerate() {
        if done & (1 << i) != 0 || op.invoke > min_pending_response {
            continue;
        }
        match &op.op {
            RegOp::Read => {
                if op.result.as_ref() == Some(&value)
                    && search(ops, done | (1 << i), value.clone(), full, memo)
                {
                    return true;
                }
            }
            RegOp::Write(v) => {
                if search(ops, done | (1 << i), v.clone(), full, memo) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn op<T>(
        process: usize,
        op: RegOp<T>,
        result: Option<T>,
        invoke: u64,
        response: u64,
    ) -> CompletedOp<T> {
        CompletedOp {
            process: p(process),
            op,
            result,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(is_linearizable(&History::<u64>::new(), 0));
    }

    #[test]
    fn sequential_history_accepted() {
        let mut h = History::new();
        h.push(op(0, RegOp::Write(1), None, 0, 1));
        h.push(op(1, RegOp::Read, Some(1), 2, 3));
        h.push(op(0, RegOp::Write(2), None, 4, 5));
        h.push(op(1, RegOp::Read, Some(2), 6, 7));
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    fn read_of_initial_value_accepted() {
        let mut h = History::new();
        h.push(op(0, RegOp::Read, Some(42u64), 0, 1));
        assert!(is_linearizable(&h, 42));
        assert!(!is_linearizable(&h, 0));
    }

    #[test]
    fn stale_read_after_completed_write_rejected() {
        // Write(5) completes strictly before the read starts; reading the
        // initial value afterwards is not linearizable.
        let mut h = History::new();
        h.push(op(0, RegOp::Write(5u64), None, 0, 1));
        h.push(op(1, RegOp::Read, Some(0), 2, 3));
        assert!(!is_linearizable(&h, 0));
    }

    #[test]
    fn overlapping_read_may_see_old_or_new() {
        // Read overlaps the write: both outcomes linearize.
        for observed in [0u64, 5] {
            let mut h = History::new();
            h.push(op(0, RegOp::Write(5u64), None, 0, 10));
            h.push(op(1, RegOp::Read, Some(observed), 1, 2));
            assert!(
                is_linearizable(&h, 0),
                "observed {observed} should linearize"
            );
        }
    }

    #[test]
    fn torn_value_rejected() {
        // A read returning a value nobody ever wrote cannot linearize.
        let mut h = History::new();
        h.push(op(0, RegOp::Write(0xffff_0000u64), None, 0, 10));
        h.push(op(1, RegOp::Read, Some(0xffff_ffff), 1, 2));
        assert!(!is_linearizable(&h, 0));
    }

    #[test]
    fn new_old_inversion_rejected() {
        // Two sequential reads around a write: the second read must not
        // travel back in time (read 5, then read 0 after both complete).
        let mut h = History::new();
        h.push(op(0, RegOp::Write(5u64), None, 0, 20));
        h.push(op(1, RegOp::Read, Some(5), 1, 2));
        h.push(op(1, RegOp::Read, Some(0), 3, 4));
        assert!(!is_linearizable(&h, 0));
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let mut h = History::new();
        h.push(op(0, RegOp::Write(1u64), None, 0, 10));
        h.push(op(1, RegOp::Write(2u64), None, 0, 10));
        h.push(op(2, RegOp::Read, Some(1), 11, 12));
        assert!(is_linearizable(&h, 0));
        let mut h2 = History::new();
        h2.push(op(0, RegOp::Write(1u64), None, 0, 10));
        h2.push(op(1, RegOp::Write(2u64), None, 0, 10));
        h2.push(op(2, RegOp::Read, Some(2), 11, 12));
        assert!(is_linearizable(&h2, 0));
    }

    #[test]
    fn recorder_produces_well_formed_history() {
        let rec = HistoryRecorder::new();
        let mut cell = 0u64;
        rec.write(p(0), 3, || cell = 3);
        let v = rec.read(p(1), || cell);
        assert_eq!(v, 3);
        let h = rec.finish();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert!(h.ops()[0].invoke < h.ops()[0].response);
        assert!(h.ops()[0].response < h.ops()[1].invoke);
        assert!(is_linearizable(&h, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CHECKED_OPS")]
    fn oversized_history_rejected() {
        let mut h = History::new();
        for i in 0..(MAX_CHECKED_OPS as u64 + 1) {
            h.push(op(0, RegOp::Write(i), None, 2 * i, 2 * i + 1));
        }
        let _ = is_linearizable(&h, 0);
    }

    #[test]
    fn concurrent_threads_on_swmr_register_linearize() {
        use crate::MemorySpace;
        use std::sync::Arc;

        let space = MemorySpace::new(3);
        let owner = p(0);
        let reg = space.nat_register("R", owner, 0);
        let rec = Arc::new(HistoryRecorder::new());

        std::thread::scope(|s| {
            {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for v in 1..=20u64 {
                        rec.write(owner, v, || reg.write(owner, v));
                    }
                });
            }
            for reader in [p(1), p(2)] {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..20 {
                        rec.read(reader, || reg.read(reader));
                    }
                });
            }
        });

        let history = Arc::into_inner(rec).unwrap().finish();
        assert_eq!(history.len(), 60);
        assert!(is_linearizable(&history, 0));
    }
}
