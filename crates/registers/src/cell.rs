//! Storage cells backing atomic registers.
//!
//! A [`SharedCell`] is the physical storage of one register: a thing that can
//! be loaded and stored atomically from many threads. Two families are
//! provided:
//!
//! * [`LockCell`] — a [`RwLock`] around any cloneable value.
//!   Loads and stores are serialized by the lock, which makes the cell
//!   trivially linearizable for arbitrary `T`.
//! * [`AtomicNatCell`] / [`AtomicFlagCell`] — lock-free cells over
//!   `AtomicU64` / `AtomicBool` with sequentially consistent ordering, the
//!   `Arc<AtomicX>` registers the paper's model maps to most directly.
//!
//! The linearizability of both families is *checked*, not assumed: see
//! [`crate::lincheck`] and the crate's property tests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::sync::RwLock;

/// Atomic single-value storage shared between threads.
///
/// Implementations must make `load` and `store` individually atomic
/// (linearizable): every operation appears to take effect at one instant
/// between its invocation and response.
pub trait SharedCell<T>: Send + Sync + 'static {
    /// Creates a cell holding `initial`.
    fn with_value(initial: T) -> Self;

    /// Atomically reads the current value.
    fn load(&self) -> T;

    /// Atomically replaces the current value.
    fn store(&self, value: T);
}

/// Lock-based cell for arbitrary cloneable values.
///
/// # Examples
///
/// ```
/// use omega_registers::cell::{LockCell, SharedCell};
///
/// let cell: LockCell<String> = LockCell::with_value("init".into());
/// cell.store("next".into());
/// assert_eq!(cell.load(), "next");
/// ```
#[derive(Debug)]
pub struct LockCell<T>(RwLock<T>);

impl<T: Clone + Send + Sync + 'static> SharedCell<T> for LockCell<T> {
    fn with_value(initial: T) -> Self {
        LockCell(RwLock::new(initial))
    }

    fn load(&self) -> T {
        self.0.read().clone()
    }

    fn store(&self, value: T) {
        *self.0.write() = value;
    }
}

/// Lock-free cell for natural-number registers (`PROGRESS`, `SUSPICIONS`).
#[derive(Debug)]
pub struct AtomicNatCell(AtomicU64);

impl SharedCell<u64> for AtomicNatCell {
    fn with_value(initial: u64) -> Self {
        AtomicNatCell(AtomicU64::new(initial))
    }

    fn load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    fn store(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }
}

/// Lock-free cell for boolean flag registers (`STOP`, handshake bits).
#[derive(Debug)]
pub struct AtomicFlagCell(AtomicBool);

impl SharedCell<bool> for AtomicFlagCell {
    fn with_value(initial: bool) -> Self {
        AtomicFlagCell(AtomicBool::new(initial))
    }

    fn load(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    fn store(&self, value: bool) {
        self.0.store(value, Ordering::SeqCst);
    }
}

/// A deliberately *non-atomic* cell that stores a `u64` as two halves.
///
/// A reader that interleaves with a writer can observe a torn value that was
/// never written. This exists purely so the linearizability checker has a
/// known-bad implementation to reject; it must never be used by algorithms.
#[derive(Debug)]
#[doc(hidden)]
pub struct TornCell {
    lo: AtomicU64,
    hi: AtomicU64,
}

impl SharedCell<u64> for TornCell {
    fn with_value(initial: u64) -> Self {
        TornCell {
            lo: AtomicU64::new(initial & 0xffff_ffff),
            hi: AtomicU64::new(initial >> 32),
        }
    }

    fn load(&self) -> u64 {
        let lo = self.lo.load(Ordering::SeqCst);
        // A writer sneaking in between the two loads produces a torn read.
        std::thread::yield_now();
        let hi = self.hi.load(Ordering::SeqCst);
        (hi << 32) | lo
    }

    fn store(&self, value: u64) {
        self.lo.store(value & 0xffff_ffff, Ordering::SeqCst);
        std::thread::yield_now();
        self.hi.store(value >> 32, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_cell_roundtrip() {
        let c: LockCell<Vec<u8>> = LockCell::with_value(vec![1, 2]);
        assert_eq!(c.load(), vec![1, 2]);
        c.store(vec![9]);
        assert_eq!(c.load(), vec![9]);
    }

    #[test]
    fn atomic_nat_roundtrip() {
        let c = AtomicNatCell::with_value(7);
        assert_eq!(c.load(), 7);
        c.store(u64::MAX);
        assert_eq!(c.load(), u64::MAX);
    }

    #[test]
    fn atomic_flag_roundtrip() {
        let c = AtomicFlagCell::with_value(true);
        assert!(c.load());
        c.store(false);
        assert!(!c.load());
    }

    #[test]
    fn cells_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LockCell<u64>>();
        assert_send_sync::<AtomicNatCell>();
        assert_send_sync::<AtomicFlagCell>();
    }

    #[test]
    fn atomic_nat_concurrent_last_write_wins_some_value() {
        // Sanity under real threads: a reader only ever observes values that
        // were actually written.
        let c = Arc::new(AtomicNatCell::with_value(0));
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for v in 1..=1000u64 {
                    c.store(v);
                }
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..1000 {
                    let v = c.load();
                    assert!(v <= 1000);
                    assert!(
                        v >= last || v == 0,
                        "reads of a monotone writer regress only never"
                    );
                    last = v;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }
}
