//! The shared memory space: register factory, registry, and reporting root.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

use crate::array::{MwmrArray, SwmrArray};
use crate::block::{BlockDevice, BlockMap};
use crate::cell::{AtomicFlagCell, AtomicNatCell, LockCell, SharedCell};
use crate::chaos::PartitionMask;
use crate::footprint::{FootprintReport, FootprintRow};
use crate::matrix::OwnedMatrix;
use crate::meta::{Instrumentation, RegisterId, RegisterMeta};
use crate::shard::{EpochedArray, EpochedMatrix, ScanCounters};
use crate::stats::{SnapshotLayout, StatsSnapshot};
use crate::swmr::{BlockSlot, MwmrRegister, RegCore, SwmrRegister};
use crate::value::RegisterValue;
use crate::ProcessId;

/// 1WnR natural-number register backed by a lock-free `AtomicU64`.
pub type NatRegister = SwmrRegister<u64, AtomicNatCell>;
/// 1WnR boolean register backed by a lock-free `AtomicBool`.
pub type FlagRegister = SwmrRegister<bool, AtomicFlagCell>;
/// Array of lock-free natural-number registers, slot `i` owned by `p_i`.
pub type NatArray = SwmrArray<u64, AtomicNatCell>;
/// Array of lock-free boolean registers, slot `i` owned by `p_i`.
pub type FlagArray = SwmrArray<bool, AtomicFlagCell>;
/// Matrix of lock-free natural-number registers.
pub type NatMatrix = OwnedMatrix<u64, AtomicNatCell>;
/// Matrix of lock-free boolean registers.
pub type FlagMatrix = OwnedMatrix<bool, AtomicFlagCell>;
/// nWnR array of lock-free natural-number registers.
pub type MwmrNatArray = MwmrArray<u64, AtomicNatCell>;
/// Epoch-tracked lock-free natural-number matrix (sharded `SUSPICIONS`).
pub type EpochedNatMatrix = EpochedMatrix<u64, AtomicNatCell>;
/// Epoch-tracked lock-free nWnR natural-number array (§3.5 suspicions).
pub type EpochedMwmrNatArray = EpochedArray<u64, AtomicNatCell>;

struct SpaceInner {
    n_processes: usize,
    mode: Instrumentation,
    regs: RwLock<Vec<Arc<dyn RegisterMeta>>>,
    /// Interned register names/owners shared by every snapshot; rebuilt
    /// (append-only) when registers were created since the last snapshot.
    layout: RwLock<Arc<SnapshotLayout>>,
    next_id: AtomicUsize,
    scan: Arc<ScanCounters>,
    /// When set, registers live on disk blocks of this device instead of
    /// local cells, laid out by `block_map`.
    backing: Option<Arc<dyn BlockDevice>>,
    block_map: Arc<BlockMap>,
    /// The chaos-campaign partition mask shared by every register.
    chaos: Arc<PartitionMask>,
    /// Epoch tables of every epoched structure created in this space.
    /// Partition install/heal bumps them all: a visibility cut changes
    /// what a read returns, so epoch-validated caches must re-read.
    epochs: RwLock<Vec<std::sync::Weak<crate::shard::Epochs>>>,
}

/// A shared memory made of atomic registers, with built-in instrumentation.
///
/// All registers of one algorithm instance are created through a single
/// `MemorySpace`, which assigns them stable identities and names and keeps
/// the per-process access counters and footprint high-water marks that the
/// experiment harness queries through [`stats`](MemorySpace::stats) and
/// [`footprint`](MemorySpace::footprint).
///
/// Handles are cheap to clone; every clone views the same memory.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let progress = space.nat_array("PROGRESS", |_| 0);
/// let p0 = ProcessId::new(0);
/// progress.get(p0).write(p0, 1);
///
/// let stats = space.stats();
/// assert_eq!(stats.total_writes(), 1);
/// assert_eq!(stats.writer_set().len(), 1);
/// ```
#[derive(Clone)]
pub struct MemorySpace {
    inner: Arc<SpaceInner>,
}

impl MemorySpace {
    /// Creates an empty memory space for a system of `n_processes`, with
    /// eager (always-atomic) instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if `n_processes == 0`.
    #[must_use]
    pub fn new(n_processes: usize) -> Self {
        MemorySpace::with_instrumentation(n_processes, Instrumentation::Eager)
    }

    /// Creates an empty memory space with an explicit [`Instrumentation`]
    /// mode. [`Instrumentation::Deferred`] is for single-threaded drivers
    /// (the simulator): counters accumulate in unsynchronized scratch and
    /// flush at [`stats`](Self::stats) / [`footprint`](Self::footprint)
    /// boundaries — see the mode's documentation for the exact contract.
    ///
    /// # Panics
    ///
    /// Panics if `n_processes == 0`.
    #[must_use]
    pub fn with_instrumentation(n_processes: usize, mode: Instrumentation) -> Self {
        MemorySpace::build(n_processes, mode, None)
    }

    /// Creates a memory space whose registers live on blocks of `device`
    /// (one block per register, assigned in creation order by the space's
    /// [`BlockMap`]) — the SAN deployment of the paper's Section 1. Uses
    /// eager instrumentation, since disk-backed spaces serve concurrent
    /// machines.
    ///
    /// Only block-encodable value types (`u64`-family integers and `bool`,
    /// i.e. everything the election algorithms use) may be created in such
    /// a space; others panic at creation.
    ///
    /// # Panics
    ///
    /// Panics if `n_processes == 0`.
    #[must_use]
    pub fn with_block_device(n_processes: usize, device: Arc<dyn BlockDevice>) -> Self {
        MemorySpace::build(n_processes, Instrumentation::Eager, Some(device))
    }

    fn build(
        n_processes: usize,
        mode: Instrumentation,
        backing: Option<Arc<dyn BlockDevice>>,
    ) -> Self {
        assert!(n_processes > 0, "a system needs at least one process");
        MemorySpace {
            inner: Arc::new(SpaceInner {
                n_processes,
                mode,
                regs: RwLock::new(Vec::new()),
                layout: RwLock::new(Arc::new(SnapshotLayout::default())),
                next_id: AtomicUsize::new(0),
                scan: Arc::new(match mode {
                    Instrumentation::Eager => ScanCounters::new(),
                    Instrumentation::Deferred => ScanCounters::new_unsync(),
                }),
                backing,
                block_map: Arc::new(BlockMap::new()),
                chaos: Arc::new(PartitionMask::new()),
                epochs: RwLock::new(Vec::new()),
            }),
        }
    }

    /// The block layout of a disk-backed space (`None` for in-memory
    /// spaces) — which register occupies which block of the device.
    #[must_use]
    pub fn block_map(&self) -> Option<Arc<BlockMap>> {
        self.inner
            .backing
            .as_ref()
            .map(|_| Arc::clone(&self.inner.block_map))
    }

    /// Binds the next block for register `name` on the backing device, if
    /// this space is disk-backed.
    ///
    /// # Panics
    ///
    /// Panics if the space is disk-backed and `T` cannot be block-encoded:
    /// silently keeping such a register in memory would corrupt the disk
    /// accounting the SAN experiments measure.
    fn bind_block<T: RegisterValue>(
        &self,
        name: &str,
        owner: Option<ProcessId>,
    ) -> Option<BlockSlot> {
        let device = self.inner.backing.as_ref()?;
        assert!(
            T::BLOCK_ENCODABLE,
            "register {name}: value type {} cannot live on a disk block",
            std::any::type_name::<T>()
        );
        Some(BlockSlot {
            device: Arc::clone(device),
            addr: self.inner.block_map.bind(name, owner),
        })
    }

    /// Number of processes `n` of the system this memory serves.
    #[must_use]
    pub fn n_processes(&self) -> usize {
        self.inner.n_processes
    }

    /// The instrumentation mode this space's registers count with.
    #[must_use]
    pub fn instrumentation(&self) -> Instrumentation {
        self.inner.mode
    }

    /// Number of registers created so far.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.inner.regs.read().len()
    }

    fn next_id(&self) -> RegisterId {
        RegisterId(self.inner.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn register(&self, meta: Arc<dyn RegisterMeta>) {
        self.inner.regs.write().push(meta);
    }

    /// Creates a 1WnR register with an explicit storage cell type.
    pub fn swmr_cell<T, C>(&self, name: &str, owner: ProcessId, initial: T) -> SwmrRegister<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        assert!(
            owner.index() < self.inner.n_processes,
            "owner {owner} out of range for n={}",
            self.inner.n_processes
        );
        let core = RegCore::<T, C>::new(
            name.to_string(),
            self.next_id(),
            Some(owner),
            self.inner.n_processes,
            self.inner.mode,
            initial,
            self.bind_block::<T>(name, Some(owner)),
            Arc::clone(&self.inner.chaos),
        );
        let reg = SwmrRegister::from_core(core);
        self.register(reg.meta());
        reg
    }

    /// Creates a 1WnR register owned by `owner` (lock-backed storage).
    pub fn swmr<T: RegisterValue>(
        &self,
        name: &str,
        owner: ProcessId,
        initial: T,
    ) -> SwmrRegister<T> {
        self.swmr_cell::<T, LockCell<T>>(name, owner, initial)
    }

    /// Creates an nWnR register with an explicit storage cell type.
    pub fn mwmr_cell<T, C>(&self, name: &str, initial: T) -> MwmrRegister<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        let core = RegCore::<T, C>::new(
            name.to_string(),
            self.next_id(),
            None,
            self.inner.n_processes,
            self.inner.mode,
            initial,
            self.bind_block::<T>(name, None),
            Arc::clone(&self.inner.chaos),
        );
        let reg = MwmrRegister::from_core(core);
        self.register(reg.meta());
        reg
    }

    /// Creates an nWnR register (lock-backed storage).
    pub fn mwmr<T: RegisterValue>(&self, name: &str, initial: T) -> MwmrRegister<T> {
        self.mwmr_cell::<T, LockCell<T>>(name, initial)
    }

    /// Creates an array `NAME[0..n]` of 1WnR registers, slot `i` owned by
    /// `p_i` and initialized to `init(p_i)`.
    pub fn swmr_array_cell<T, C>(
        &self,
        name: &str,
        mut init: impl FnMut(ProcessId) -> T,
    ) -> SwmrArray<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        let regs = ProcessId::all(self.inner.n_processes)
            .map(|pid| self.swmr_cell::<T, C>(&format!("{name}[{}]", pid.index()), pid, init(pid)))
            .collect();
        SwmrArray::from_regs(regs)
    }

    /// Lock-backed convenience form of [`swmr_array_cell`](Self::swmr_array_cell).
    pub fn swmr_array<T: RegisterValue>(
        &self,
        name: &str,
        init: impl FnMut(ProcessId) -> T,
    ) -> SwmrArray<T> {
        self.swmr_array_cell::<T, LockCell<T>>(name, init)
    }

    /// Creates an nWnR array `NAME[0..len]` initialized to `init(i)`.
    pub fn mwmr_array_cell<T, C>(
        &self,
        name: &str,
        len: usize,
        mut init: impl FnMut(usize) -> T,
    ) -> MwmrArray<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        let regs = (0..len)
            .map(|i| self.mwmr_cell::<T, C>(&format!("{name}[{i}]"), init(i)))
            .collect();
        MwmrArray::from_regs(regs)
    }

    /// Lock-backed convenience form of [`mwmr_array_cell`](Self::mwmr_array_cell).
    pub fn mwmr_array<T: RegisterValue>(
        &self,
        name: &str,
        len: usize,
        init: impl FnMut(usize) -> T,
    ) -> MwmrArray<T> {
        self.mwmr_array_cell::<T, LockCell<T>>(name, len, init)
    }

    /// Creates an `n × n` matrix `NAME[r][c]` where entry `[r][c]` is owned
    /// by the **row** process `p_r` (the `SUSPICIONS` layout).
    pub fn row_matrix_cell<T, C>(
        &self,
        name: &str,
        mut init: impl FnMut(usize, usize) -> T,
    ) -> OwnedMatrix<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        let n = self.inner.n_processes;
        let regs = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| {
                        self.swmr_cell::<T, C>(
                            &format!("{name}[{r}][{c}]"),
                            ProcessId::new(r),
                            init(r, c),
                        )
                    })
                    .collect()
            })
            .collect();
        OwnedMatrix::from_regs(regs)
    }

    /// Lock-backed convenience form of [`row_matrix_cell`](Self::row_matrix_cell).
    pub fn row_matrix<T: RegisterValue>(
        &self,
        name: &str,
        init: impl FnMut(usize, usize) -> T,
    ) -> OwnedMatrix<T> {
        self.row_matrix_cell::<T, LockCell<T>>(name, init)
    }

    /// Creates an `n × n` matrix `NAME[r][c]` where entry `[r][c]` is owned
    /// by the **column** process `p_c` (the `LAST` handshake layout of
    /// Figure 5, written by the reader side).
    pub fn column_matrix_cell<T, C>(
        &self,
        name: &str,
        mut init: impl FnMut(usize, usize) -> T,
    ) -> OwnedMatrix<T, C>
    where
        T: RegisterValue,
        C: SharedCell<T>,
    {
        let n = self.inner.n_processes;
        let regs = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| {
                        self.swmr_cell::<T, C>(
                            &format!("{name}[{r}][{c}]"),
                            ProcessId::new(c),
                            init(r, c),
                        )
                    })
                    .collect()
            })
            .collect();
        OwnedMatrix::from_regs(regs)
    }

    /// Lock-backed convenience form of [`column_matrix_cell`](Self::column_matrix_cell).
    pub fn column_matrix<T: RegisterValue>(
        &self,
        name: &str,
        init: impl FnMut(usize, usize) -> T,
    ) -> OwnedMatrix<T> {
        self.column_matrix_cell::<T, LockCell<T>>(name, init)
    }

    // ------------------------------------------------------------------
    // Lock-free convenience constructors for the layouts the algorithms use.
    // ------------------------------------------------------------------

    /// Lock-free `u64` 1WnR register.
    pub fn nat_register(&self, name: &str, owner: ProcessId, initial: u64) -> NatRegister {
        self.swmr_cell::<u64, AtomicNatCell>(name, owner, initial)
    }

    /// Lock-free `bool` 1WnR register.
    pub fn flag_register(&self, name: &str, owner: ProcessId, initial: bool) -> FlagRegister {
        self.swmr_cell::<bool, AtomicFlagCell>(name, owner, initial)
    }

    /// Lock-free `u64` array, slot `i` owned by `p_i` (`PROGRESS` layout).
    pub fn nat_array(&self, name: &str, init: impl FnMut(ProcessId) -> u64) -> NatArray {
        self.swmr_array_cell::<u64, AtomicNatCell>(name, init)
    }

    /// Lock-free `bool` array, slot `i` owned by `p_i` (`STOP` layout).
    pub fn flag_array(&self, name: &str, init: impl FnMut(ProcessId) -> bool) -> FlagArray {
        self.swmr_array_cell::<bool, AtomicFlagCell>(name, init)
    }

    /// Lock-free `u64` row-owned matrix (`SUSPICIONS` layout).
    pub fn nat_row_matrix(&self, name: &str, init: impl FnMut(usize, usize) -> u64) -> NatMatrix {
        self.row_matrix_cell::<u64, AtomicNatCell>(name, init)
    }

    /// Lock-free `bool` row-owned matrix (Figure 5 `PROGRESS` layout).
    pub fn flag_row_matrix(
        &self,
        name: &str,
        init: impl FnMut(usize, usize) -> bool,
    ) -> FlagMatrix {
        self.row_matrix_cell::<bool, AtomicFlagCell>(name, init)
    }

    /// Lock-free `bool` column-owned matrix (Figure 5 `LAST` layout).
    pub fn flag_column_matrix(
        &self,
        name: &str,
        init: impl FnMut(usize, usize) -> bool,
    ) -> FlagMatrix {
        self.column_matrix_cell::<bool, AtomicFlagCell>(name, init)
    }

    /// Lock-free `u64` nWnR array (§3.5 collapsed `SUSPICIONS` layout).
    pub fn nat_mwmr_array(
        &self,
        name: &str,
        len: usize,
        init: impl FnMut(usize) -> u64,
    ) -> MwmrNatArray {
        self.mwmr_array_cell::<u64, AtomicNatCell>(name, len, init)
    }

    /// Lock-free `u64` row-owned matrix with per-row modification epochs —
    /// the sharded-scan `SUSPICIONS` layout (see [`crate::EpochedMatrix`]).
    pub fn epoched_nat_row_matrix(
        &self,
        name: &str,
        init: impl FnMut(usize, usize) -> u64,
    ) -> EpochedNatMatrix {
        let matrix = EpochedMatrix::new(self.nat_row_matrix(name, init), self.scan_counters());
        self.inner
            .epochs
            .write()
            .push(Arc::downgrade(matrix.epochs()));
        matrix
    }

    /// Lock-free `u64` nWnR array with per-slot modification epochs.
    pub fn epoched_nat_mwmr_array(
        &self,
        name: &str,
        len: usize,
        init: impl FnMut(usize) -> u64,
    ) -> EpochedMwmrNatArray {
        EpochedArray::new(self.nat_mwmr_array(name, len, init), self.scan_counters())
    }

    /// The space-wide scan-saving counters (shared by every epoched
    /// structure created in this space).
    #[must_use]
    pub fn scan_counters(&self) -> Arc<ScanCounters> {
        Arc::clone(&self.inner.scan)
    }

    // ------------------------------------------------------------------
    // Chaos campaigns.
    // ------------------------------------------------------------------

    /// Installs a register-space partition: processes in different `groups`
    /// stop seeing each other's 1WnR rows and instead read the value each
    /// register held at the cut (its *frozen* snapshot). Processes absent
    /// from every group — including ids beyond the table, such as
    /// harness-side actors — stay connected to everyone. Ownerless nWnR
    /// registers are never severed. Writes always land (an owner reaches
    /// its own row), so the live state keeps advancing invisibly until
    /// [`heal_partition`](Self::heal_partition) reveals it.
    ///
    /// Installing over an active partition re-freezes every register and
    /// replaces the group table; only one partition is active at a time.
    ///
    /// # Panics
    ///
    /// Panics if a process id is out of range or appears in two groups.
    pub fn install_partition(&self, groups: &[Vec<ProcessId>]) {
        let n = self.inner.n_processes;
        let mut table = vec![-1_i32; n];
        for (g, members) in groups.iter().enumerate() {
            for &pid in members {
                assert!(
                    pid.index() < n,
                    "partition member {pid} out of range for n={n}"
                );
                assert_eq!(
                    table[pid.index()],
                    -1,
                    "process {pid} appears in two partition groups"
                );
                table[pid.index()] = i32::try_from(g).expect("group count fits i32");
            }
        }
        // Freeze before activating, so severed readers observe a snapshot
        // no older than the cut.
        for meta in self.inner.regs.read().iter() {
            meta.freeze();
        }
        self.inner.chaos.install(table);
        self.invalidate_epoch_caches();
    }

    /// Installs a **directed** cut: processes in `blinded` read the 1WnR
    /// rows of processes in `hidden` frozen at the cut, while `hidden`
    /// (and everyone else) keeps reading live values in every direction.
    /// This is the asymmetric-fabric analogue of
    /// [`install_partition`](Self::install_partition): one side's inbound
    /// visibility fails while its own rows stay observable, the regime in
    /// which the López–Rajsbaum–Raynal weak-connectivity results decide
    /// whether election is still possible.
    ///
    /// Installing over an active partition or cut re-freezes every
    /// register and replaces the mask; only one mask is active at a time.
    /// [`heal_partition`](Self::heal_partition) clears cuts and
    /// partitions alike.
    ///
    /// # Panics
    ///
    /// Panics if a process id is out of range or appears on both sides.
    pub fn install_cut(&self, blinded: &[ProcessId], hidden: &[ProcessId]) {
        let n = self.inner.n_processes;
        let mut table = vec![-1_i32; n];
        for (side, members) in [
            (crate::chaos::CUT_BLINDED, blinded),
            (crate::chaos::CUT_HIDDEN, hidden),
        ] {
            for &pid in members {
                assert!(pid.index() < n, "cut member {pid} out of range for n={n}");
                assert_eq!(
                    table[pid.index()],
                    -1,
                    "process {pid} appears on both sides of the cut"
                );
                table[pid.index()] = side;
            }
        }
        // Freeze before activating, so severed readers observe a snapshot
        // no older than the cut.
        for meta in self.inner.regs.read().iter() {
            meta.freeze();
        }
        self.inner.chaos.install_directed(table);
        self.invalidate_epoch_caches();
    }

    /// Heals the installed partition: every read sees live values again.
    /// A no-op when no partition is active.
    pub fn heal_partition(&self) {
        self.inner.chaos.heal();
        self.invalidate_epoch_caches();
    }

    /// Bumps every epoched structure's epochs. A partition transition
    /// changes what reads return without moving any value, so any cache
    /// validated against pre-transition epochs would keep serving its
    /// (now frozen, or now stale-frozen) snapshot as current — forever, if
    /// the registers go quiescent right after a heal. Forcing one re-read
    /// per transition restores coherence.
    fn invalidate_epoch_caches(&self) {
        let mut epochs = self.inner.epochs.write();
        epochs.retain(|weak| match weak.upgrade() {
            Some(table) => {
                table.bump_all();
                true
            }
            None => false,
        });
    }

    /// Whether a partition is currently installed.
    #[must_use]
    pub fn partition_active(&self) -> bool {
        self.inner.chaos.is_active()
    }

    // ------------------------------------------------------------------
    // Reporting.
    // ------------------------------------------------------------------

    /// The interned layout (names, owners) covering the first `count`
    /// registers, rebuilding the cached one if registers were created
    /// since. Call with the registry lock held.
    fn layout_for(&self, regs: &[Arc<dyn RegisterMeta>]) -> Arc<SnapshotLayout> {
        {
            let cached = self.inner.layout.read();
            if cached.names.len() == regs.len() {
                return Arc::clone(&cached);
            }
        }
        let rebuilt = Arc::new(SnapshotLayout {
            names: regs.iter().map(|m| Arc::clone(m.name())).collect(),
            owners: regs.iter().map(|m| m.owner()).collect(),
        });
        *self.inner.layout.write() = Arc::clone(&rebuilt);
        rebuilt
    }

    /// Takes a snapshot of all cumulative access counters.
    ///
    /// In [`Instrumentation::Deferred`] mode this is a flush boundary: all
    /// scratch counters are folded into the shared atomics first, so the
    /// snapshot is exact.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.stats_into(&mut snap);
        snap
    }

    /// Like [`stats`](Self::stats), but reuses `snap`'s counter buffers —
    /// the checkpoint fast path for large spaces, where reallocating two
    /// `registers × n` slabs per snapshot would dominate.
    pub fn stats_into(&self, snap: &mut StatsSnapshot) {
        let regs = self.inner.regs.read();
        let n = self.inner.n_processes;
        let len = regs.len() * n;
        snap.n_processes = n;
        snap.layout = self.layout_for(&regs);
        snap.reads.clear();
        snap.reads.resize(len, 0);
        snap.writes.clear();
        snap.writes.resize(len, 0);
        for (r, meta) in regs.iter().enumerate() {
            let counters = meta.counters();
            counters.flush();
            counters.copy_into(
                &mut snap.reads[r * n..(r + 1) * n],
                &mut snap.writes[r * n..(r + 1) * n],
            );
        }
        snap.scan = self.inner.scan.snapshot();
    }

    /// Reports the bit-footprint of every register: current size and
    /// high-water mark since creation. A flush boundary in deferred mode
    /// (high-water marks accumulate in scratch too; only the mark is
    /// flushed here — access counts flush at [`stats`](Self::stats)).
    #[must_use]
    pub fn footprint(&self) -> FootprintReport {
        let regs = self.inner.regs.read();
        let rows = regs
            .iter()
            .map(|meta| {
                let counters = meta.counters();
                counters.flush_hwm();
                FootprintRow {
                    name: Arc::clone(meta.name()),
                    owner: meta.owner(),
                    hwm_bits: counters.hwm_bits(),
                    current_bits: meta.current_bits(),
                }
            })
            .collect();
        FootprintReport::new(rows)
    }
}

impl std::fmt::Debug for MemorySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySpace")
            .field("n_processes", &self.inner.n_processes)
            .field("registers", &self.register_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = MemorySpace::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_rejected() {
        let s = MemorySpace::new(2);
        let _ = s.swmr::<u64>("X", ProcessId::new(2), 0);
    }

    #[test]
    fn register_ids_are_sequential() {
        let s = MemorySpace::new(2);
        let a = s.swmr::<u64>("A", ProcessId::new(0), 0);
        let b = s.mwmr::<u64>("B", 0);
        assert_eq!(a.id().index(), 0);
        assert_eq!(b.id().index(), 1);
        assert_eq!(s.register_count(), 2);
    }

    #[test]
    fn clone_views_same_registry() {
        let s = MemorySpace::new(2);
        let s2 = s.clone();
        let _ = s.swmr::<u64>("A", ProcessId::new(0), 0);
        assert_eq!(s2.register_count(), 1);
    }

    #[test]
    fn lock_free_constructors_wire_names_and_owners() {
        let s = MemorySpace::new(2);
        let p = s.nat_register("P", ProcessId::new(1), 3);
        assert_eq!(p.owner(), ProcessId::new(1));
        assert_eq!(p.peek(), 3);
        let f = s.flag_register("F", ProcessId::new(0), true);
        assert!(f.peek());
        let arr = s.nat_array("PROGRESS", |_| 0);
        assert_eq!(arr.len(), 2);
        let flags = s.flag_array("STOP", |_| true);
        assert!(flags.get(ProcessId::new(1)).peek());
        let m = s.nat_row_matrix("SUSPICIONS", |_, _| 0);
        assert_eq!(m.n(), 2);
        let pm = s.flag_row_matrix("HPROGRESS", |_, _| false);
        assert_eq!(
            pm.get(ProcessId::new(0), ProcessId::new(1)).owner(),
            ProcessId::new(0)
        );
        let lm = s.flag_column_matrix("LAST", |_, _| false);
        assert_eq!(
            lm.get(ProcessId::new(0), ProcessId::new(1)).owner(),
            ProcessId::new(1)
        );
        let mw = s.nat_mwmr_array("S", 2, |_| 0);
        assert_eq!(mw.len(), 2);
    }

    #[test]
    fn stats_snapshot_shapes() {
        let s = MemorySpace::new(3);
        let arr = s.nat_array("A", |_| 0);
        let p1 = ProcessId::new(1);
        arr.get(p1).write(p1, 7);
        arr.get(p1).read(ProcessId::new(0));
        let snap = s.stats();
        assert_eq!(snap.n_processes(), 3);
        assert_eq!(snap.rows().len(), 3);
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(snap.total_reads(), 1);
    }

    #[test]
    fn footprint_tracks_hwm_and_current() {
        let s = MemorySpace::new(1);
        let p0 = ProcessId::new(0);
        let r = s.nat_register("X", p0, 0);
        r.write(p0, 1 << 20);
        r.write(p0, 1);
        let fp = s.footprint();
        let row = &fp.rows()[0];
        assert_eq!(row.hwm_bits, 21);
        assert_eq!(row.current_bits, 1);
    }

    #[test]
    fn partition_freezes_cross_group_reads_until_heal() {
        let s = MemorySpace::new(4);
        let arr = s.nat_array("PROGRESS", |_| 0);
        let (p0, p2) = (ProcessId::new(0), ProcessId::new(2));
        arr.get(p2).write(p2, 7);
        s.install_partition(&[vec![p0, ProcessId::new(1)], vec![p2, ProcessId::new(3)]]);
        assert!(s.partition_active());
        arr.get(p2).write(p2, 9);
        assert_eq!(arr.get(p2).read(p0), 7, "severed read sees the cut value");
        assert_eq!(arr.get(p2).read(ProcessId::new(3)), 9, "same side is live");
        assert_eq!(arr.get(p2).read(p2), 9, "owner always sees own row");
        s.heal_partition();
        assert!(!s.partition_active());
        assert_eq!(arr.get(p2).read(p0), 9, "heal reveals the live value");
    }

    #[test]
    fn partition_ignores_mwmr_and_unlisted_processes() {
        let s = MemorySpace::new(4);
        let m = s.mwmr::<u64>("M", 0);
        let r = s.swmr::<u64>("X", ProcessId::new(3), 1);
        let (p0, p3) = (ProcessId::new(0), ProcessId::new(3));
        s.install_partition(&[vec![p0], vec![p3]]);
        m.write(p3, 5);
        assert_eq!(m.read(p0), 5, "ownerless registers are never severed");
        r.write(p3, 2);
        assert_eq!(r.read(ProcessId::new(1)), 2, "unlisted readers stay live");
    }

    #[test]
    fn directed_cut_blinds_one_side_only() {
        let s = MemorySpace::new(4);
        let arr = s.nat_array("PROGRESS", |_| 0);
        let (p0, p1, p2, p3) = (
            ProcessId::new(0),
            ProcessId::new(1),
            ProcessId::new(2),
            ProcessId::new(3),
        );
        arr.get(p2).write(p2, 7);
        arr.get(p0).write(p0, 3);
        s.install_cut(&[p0, p1], &[p2, p3]);
        assert!(s.partition_active());
        arr.get(p2).write(p2, 9);
        arr.get(p0).write(p0, 4);
        assert_eq!(arr.get(p2).read(p0), 7, "blinded reads hidden frozen");
        assert_eq!(arr.get(p0).read(p2), 4, "hidden reads blinded live");
        assert_eq!(arr.get(p2).read(p3), 9, "within the hidden side");
        assert_eq!(arr.get(p0).read(p1), 4, "within the blinded side");
        s.heal_partition();
        assert!(!s.partition_active());
        assert_eq!(arr.get(p2).read(p0), 9, "heal reveals the live value");
    }

    #[test]
    #[should_panic(expected = "both sides of the cut")]
    fn cut_side_overlap_rejected() {
        let s = MemorySpace::new(2);
        let p0 = ProcessId::new(0);
        s.install_cut(&[p0], &[p0]);
    }

    #[test]
    fn reinstall_refreezes_at_the_new_cut() {
        let s = MemorySpace::new(2);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        let r = s.swmr::<u64>("X", p1, 0);
        s.install_partition(&[vec![p0], vec![p1]]);
        r.write(p1, 1);
        assert_eq!(r.read(p0), 0);
        s.install_partition(&[vec![p0], vec![p1]]);
        assert_eq!(r.read(p0), 1, "second cut froze the newer value");
    }

    #[test]
    #[should_panic(expected = "two partition groups")]
    fn overlapping_partition_groups_rejected() {
        let s = MemorySpace::new(2);
        let p0 = ProcessId::new(0);
        s.install_partition(&[vec![p0], vec![p0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_member_out_of_range_rejected() {
        let s = MemorySpace::new(2);
        s.install_partition(&[vec![ProcessId::new(5)]]);
    }

    #[test]
    fn partition_transitions_move_epoched_matrix_versions() {
        // The epoch tables are NOT severed by the mask, so a severed
        // snapshot records frozen values against a live epoch. If the
        // matrix then goes quiescent, an epoch-validated cache would serve
        // that frozen snapshot as current forever — install and heal must
        // therefore bump every epoch so caches re-read once per
        // transition.
        let s = MemorySpace::new(2);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        s.install_partition(&[vec![p0], vec![p1]]);
        m.write(p0, p1, p0, 7); // live row advances invisibly
        let mut buf = vec![0; 2];
        let seen = m.snapshot_row_into(p0, p1, &mut buf);
        assert_eq!(buf, vec![0, 0], "severed snapshot is the frozen row");
        let global = m.version();
        s.heal_partition();
        assert_ne!(m.row_version(p0), seen, "heal invalidates row epochs");
        assert_ne!(m.version(), global, "heal moves the global epoch too");
        let reread = m.snapshot_row_into(p0, p1, &mut buf);
        assert_eq!(buf, vec![0, 7], "forced re-read observes the live row");
        assert_eq!(reread, m.row_version(p0), "coherent again after heal");
    }

    #[test]
    fn partitioned_reads_still_count() {
        let s = MemorySpace::new(2);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        let r = s.swmr::<u64>("X", p1, 0);
        s.install_partition(&[vec![p0], vec![p1]]);
        let _ = r.read(p0);
        assert_eq!(s.stats().reads_of(p0), 1);
    }

    #[test]
    fn debug_shows_counts() {
        let s = MemorySpace::new(4);
        let _ = s.nat_array("A", |_| 0);
        let out = format!("{s:?}");
        assert!(out.contains("n_processes: 4"));
        assert!(out.contains("registers: 4"));
    }
}
