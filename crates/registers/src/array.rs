//! Register arrays: one register per process.

use std::fmt;

use crate::cell::{LockCell, SharedCell};
use crate::swmr::{MwmrRegister, SwmrRegister};
use crate::value::RegisterValue;
use crate::ProcessId;

/// An array of 1WnR registers, slot `i` owned by process `p_i`.
///
/// This is the layout of the paper's `PROGRESS[1..n]` and `STOP[1..n]`
/// arrays: every process owns exactly its own entry and may read all of
/// them.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(3);
/// let stop = space.swmr_array::<bool>("STOP", |_| true);
/// let p1 = ProcessId::new(1);
/// stop.get(p1).write(p1, false);
/// assert!(!stop.get(p1).read(ProcessId::new(0)));
/// assert!(stop.get(ProcessId::new(2)).read(p1));
/// ```
pub struct SwmrArray<T: RegisterValue, C: SharedCell<T> = LockCell<T>> {
    regs: Vec<SwmrRegister<T, C>>,
}

impl<T: RegisterValue, C: SharedCell<T>> SwmrArray<T, C> {
    pub(crate) fn from_regs(regs: Vec<SwmrRegister<T, C>>) -> Self {
        SwmrArray { regs }
    }

    /// The register owned by process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid.index() >= len()`.
    #[must_use]
    pub fn get(&self, pid: ProcessId) -> &SwmrRegister<T, C> {
        &self.regs[pid.index()]
    }

    /// Number of slots (= number of processes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the array has zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Iterates over `(owner, register)` pairs in identity order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &SwmrRegister<T, C>)> {
        self.regs
            .iter()
            .enumerate()
            .map(|(i, r)| (ProcessId::new(i), r))
    }

    /// Batch-reads every slot into `out` on behalf of `reader` — one
    /// attributed read per slot, in identity order.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()`.
    pub fn snapshot_into(&self, reader: ProcessId, out: &mut [T]) {
        assert_eq!(
            out.len(),
            self.regs.len(),
            "snapshot buffer must hold every slot"
        );
        for (slot, reg) in out.iter_mut().zip(&self.regs) {
            *slot = reg.read(reader);
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for SwmrArray<T, C> {
    fn clone(&self) -> Self {
        SwmrArray {
            regs: self.regs.clone(),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for SwmrArray<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.regs.iter()).finish()
    }
}

/// An array of nWnR registers indexed by position.
///
/// Used by the Section 3.5 variant where each `SUSPICIONS[·][k]` column
/// becomes a single multi-writer register `SUSPICIONS[k]`.
pub struct MwmrArray<T: RegisterValue, C: SharedCell<T> = LockCell<T>> {
    regs: Vec<MwmrRegister<T, C>>,
}

impl<T: RegisterValue, C: SharedCell<T>> MwmrArray<T, C> {
    pub(crate) fn from_regs(regs: Vec<MwmrRegister<T, C>>) -> Self {
        MwmrArray { regs }
    }

    /// The register at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> &MwmrRegister<T, C> {
        &self.regs[index]
    }

    /// Number of registers in the array.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the array has zero registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Iterates over the registers in index order.
    pub fn iter(&self) -> impl Iterator<Item = &MwmrRegister<T, C>> {
        self.regs.iter()
    }

    /// Batch-reads every register into `out` on behalf of `reader`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != len()`.
    pub fn snapshot_into(&self, reader: ProcessId, out: &mut [T]) {
        assert_eq!(
            out.len(),
            self.regs.len(),
            "snapshot buffer must hold every slot"
        );
        for (slot, reg) in out.iter_mut().zip(&self.regs) {
            *slot = reg.read(reader);
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for MwmrArray<T, C> {
    fn clone(&self) -> Self {
        MwmrArray {
            regs: self.regs.clone(),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for MwmrArray<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.regs.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    #[test]
    fn swmr_array_slot_ownership() {
        let s = MemorySpace::new(3);
        let arr = s.swmr_array::<u64>("PROGRESS", |pid| pid.index() as u64);
        assert_eq!(arr.len(), 3);
        assert!(!arr.is_empty());
        for (pid, reg) in arr.iter() {
            assert_eq!(reg.owner(), pid);
            assert_eq!(reg.read(pid), pid.index() as u64);
            assert_eq!(reg.name(), format!("PROGRESS[{}]", pid.index()));
        }
    }

    #[test]
    #[should_panic(expected = "attempted to write")]
    fn swmr_array_enforces_slot_owner() {
        let s = MemorySpace::new(2);
        let arr = s.swmr_array::<u64>("A", |_| 0);
        arr.get(ProcessId::new(1)).write(ProcessId::new(0), 1);
    }

    #[test]
    fn swmr_array_clone_shares() {
        let s = MemorySpace::new(2);
        let a = s.swmr_array::<u64>("A", |_| 0);
        let b = a.clone();
        let p0 = ProcessId::new(0);
        a.get(p0).write(p0, 9);
        assert_eq!(b.get(p0).read(p0), 9);
    }

    #[test]
    fn mwmr_array_is_position_indexed() {
        let s = MemorySpace::new(2);
        let arr = s.mwmr_array::<u64>("S", 4, |i| i as u64);
        assert_eq!(arr.len(), 4);
        assert_eq!(arr.get(3).peek(), 3);
        arr.get(3).write(ProcessId::new(1), 10);
        assert_eq!(arr.get(3).read(ProcessId::new(0)), 10);
        assert_eq!(arr.iter().count(), 4);
    }

    #[test]
    fn swmr_snapshot_reads_every_slot_attributed() {
        let s = MemorySpace::new(3);
        let arr = s.swmr_array::<u64>("HB", |pid| 10 + pid.index() as u64);
        let mut buf = vec![0; 3];
        arr.snapshot_into(ProcessId::new(1), &mut buf);
        assert_eq!(buf, vec![10, 11, 12]);
        assert_eq!(s.stats().reads_of(ProcessId::new(1)), 3);
    }

    #[test]
    #[should_panic(expected = "every slot")]
    fn swmr_snapshot_rejects_short_buffer() {
        let s = MemorySpace::new(2);
        let arr = s.swmr_array::<u64>("HB", |_| 0);
        arr.snapshot_into(ProcessId::new(0), &mut [0]);
    }

    #[test]
    fn mwmr_snapshot_reads_every_register() {
        let s = MemorySpace::new(2);
        let arr = s.mwmr_array::<u64>("S", 4, |i| i as u64);
        let mut buf = vec![0; 4];
        arr.snapshot_into(ProcessId::new(0), &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(s.stats().reads_of(ProcessId::new(0)), 4);
    }

    #[test]
    fn debug_formats() {
        let s = MemorySpace::new(1);
        let a = s.swmr_array::<bool>("F", |_| true);
        assert!(format!("{a:?}").contains("true"));
        let m = s.mwmr_array::<u64>("M", 1, |_| 2);
        assert!(format!("{m:?}").contains('2'));
    }
}
