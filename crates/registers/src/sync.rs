//! Panic-transparent locks with a `parking_lot`-style API.
//!
//! The register substrate serializes nothing on its hot paths (those are
//! lock-free atomics), but the lock-based cells, the history recorder, and
//! the runtime's node state need plain mutual exclusion. These wrappers
//! expose `lock()`/`read()`/`write()` returning guards directly — no
//! poisoning `Result` to unwrap at every call site. A panic while holding a
//! lock simply releases it for the next holder, which is the right
//! semantics for a crash-stop fault model: a "crashed" thread must not
//! wedge the shared memory for everyone else.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison (a panicking holder
    /// releases the lock rather than wedging it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(0));
        let l = Arc::new(RwLock::new(0));
        {
            let m = Arc::clone(&m);
            let l = Arc::clone(&l);
            let _ = std::thread::spawn(move || {
                let _g1 = m.lock();
                let _g2 = l.write();
                panic!("poison both");
            })
            .join();
        }
        *m.lock() += 1;
        *l.write() += 1;
        assert_eq!(*m.lock(), 1);
        assert_eq!(*l.read(), 1);
    }
}
