//! Process identities and small process sets.

use std::fmt;

/// Identity of a process in a shared-memory system of `n` processes.
///
/// The paper numbers processes `p_1 … p_n`; this crate uses zero-based
/// indices internally and renders them as `p0 … p{n-1}`. Identities are
/// totally ordered, which the election algorithms rely on for the
/// lexicographic `(suspicion count, identity)` tie-break.
///
/// # Examples
///
/// ```
/// use omega_registers::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// assert!(ProcessId::new(1) < ProcessId::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates the identity of the process with zero-based index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        ProcessId(u32::try_from(index).expect("process index exceeds u32"))
    }

    /// Zero-based index of this process, usable for array indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all `n` process identities `p0 … p{n-1}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use omega_registers::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids.len(), 3);
    /// assert_eq!(ids[2].index(), 2);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId::new)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(pid: ProcessId) -> usize {
        pid.index()
    }
}

/// A set of process identities with fixed capacity `n`, backed by a bitset.
///
/// Used for the `candidates_i` sets of the election algorithms and for
/// writer/reader-set queries in the instrumentation. Operations are `O(1)`
/// except iteration and [`len`](ProcessSet::len), which are `O(n/64)`.
///
/// # Examples
///
/// ```
/// use omega_registers::{ProcessId, ProcessSet};
///
/// let mut set = ProcessSet::new(8);
/// set.insert(ProcessId::new(2));
/// set.insert(ProcessId::new(5));
/// assert!(set.contains(ProcessId::new(2)));
/// assert_eq!(set.len(), 2);
/// set.remove(ProcessId::new(2));
/// assert_eq!(set.iter().next(), Some(ProcessId::new(5)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProcessSet {
    bits: Vec<u64>,
    capacity: usize,
}

impl ProcessSet {
    /// Creates an empty set able to hold identities `p0 … p{n-1}`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ProcessSet {
            bits: vec![0; n.div_ceil(64)],
            capacity: n,
        }
    }

    /// Creates the full set `{p0, …, p{n-1}}`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut set = ProcessSet::new(n);
        for pid in ProcessId::all(n) {
            set.insert(pid);
        }
        set
    }

    /// Creates a set containing only `pid`, with capacity `n`.
    ///
    /// # Panics
    ///
    /// Panics if `pid.index() >= n`.
    #[must_use]
    pub fn singleton(n: usize, pid: ProcessId) -> Self {
        let mut set = ProcessSet::new(n);
        set.insert(pid);
        set
    }

    /// Number of identities this set can hold (`n`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `pid`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `pid.index() >= capacity`.
    pub fn insert(&mut self, pid: ProcessId) -> bool {
        let i = pid.index();
        assert!(
            i < self.capacity,
            "{pid} out of range for capacity {}",
            self.capacity
        );
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let was = self.bits[word] & bit != 0;
        self.bits[word] |= bit;
        !was
    }

    /// Removes `pid`; returns `true` if it was present.
    pub fn remove(&mut self, pid: ProcessId) -> bool {
        let i = pid.index();
        if i >= self.capacity {
            return false;
        }
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let was = self.bits[word] & bit != 0;
        self.bits[word] &= !bit;
        was
    }

    /// Whether `pid` is in the set.
    #[must_use]
    pub fn contains(&self, pid: ProcessId) -> bool {
        let i = pid.index();
        i < self.capacity && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of identities in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in increasing identity order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.capacity)
            .filter(|&i| self.bits[i / 64] & (1u64 << (i % 64)) != 0)
            .map(ProcessId::new)
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(&self) -> Option<ProcessId> {
        self.iter().next()
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    /// Collects identities into a set whose capacity is one past the
    /// largest index seen (or zero for an empty iterator).
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let ids: Vec<ProcessId> = iter.into_iter().collect();
        let cap = ids.iter().map(|p| p.index() + 1).max().unwrap_or(0);
        let mut set = ProcessSet::new(cap);
        for pid in ids {
            set.insert(pid);
        }
        set
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for pid in iter {
            self.insert(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_ordering_and_display() {
        let a = ProcessId::new(1);
        let b = ProcessId::new(10);
        assert!(a < b);
        assert_eq!(format!("{a}"), "p1");
        assert_eq!(format!("{b:?}"), "p10");
        assert_eq!(usize::from(b), 10);
    }

    #[test]
    fn pid_all_enumerates() {
        assert_eq!(ProcessId::all(0).count(), 0);
        let v: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            v,
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = ProcessSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(ProcessId::new(0)));
        assert!(s.insert(ProcessId::new(64)));
        assert!(s.insert(ProcessId::new(129)));
        assert!(
            !s.insert(ProcessId::new(129)),
            "double insert reports false"
        );
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcessId::new(64)));
        assert!(!s.contains(ProcessId::new(63)));
        assert!(s.remove(ProcessId::new(64)));
        assert!(!s.remove(ProcessId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_full_and_min() {
        let s = ProcessSet::full(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(ProcessId::new(0)));
        let mut s = s;
        s.remove(ProcessId::new(0));
        s.remove(ProcessId::new(1));
        assert_eq!(s.min(), Some(ProcessId::new(2)));
    }

    #[test]
    fn set_iter_order() {
        let mut s = ProcessSet::new(70);
        s.insert(ProcessId::new(65));
        s.insert(ProcessId::new(2));
        s.insert(ProcessId::new(40));
        let v: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(v, vec![2, 40, 65]);
    }

    #[test]
    fn set_from_iterator_sizes_capacity() {
        let s: ProcessSet = [3usize, 7, 1].into_iter().map(ProcessId::new).collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn singleton_contains_only_member() {
        let s = ProcessSet::singleton(4, ProcessId::new(2));
        assert_eq!(s.len(), 1);
        assert!(s.contains(ProcessId::new(2)));
        assert!(!s.contains(ProcessId::new(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = ProcessSet::new(2);
        s.insert(ProcessId::new(2));
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = ProcessSet::new(2);
        assert!(!s.remove(ProcessId::new(99)));
    }

    #[test]
    fn debug_formats_as_set() {
        let s = ProcessSet::singleton(3, ProcessId::new(1));
        assert_eq!(format!("{s:?}"), "{p1}");
    }
}
