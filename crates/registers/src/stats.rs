//! Access-count snapshots: who read and wrote what.
//!
//! The paper's efficiency results are statements about *who keeps accessing
//! shared memory forever*:
//!
//! * Theorem 3 — with Algorithm 1, after stabilization only the elected
//!   leader writes, and only one register.
//! * Lemma 5 / Lemma 6 — the leader must write forever; everyone else must
//!   read forever.
//! * Theorem 7 — with Algorithm 2, after stabilization the writes are exactly
//!   `PROGRESS[ℓ][·]` (by the leader) and `LAST[ℓ][·]` (by the followers).
//!
//! A [`StatsSnapshot`] captures cumulative counters; subtracting two
//! snapshots ([`StatsSnapshot::delta_since`]) yields the accesses of a
//! window, from which writer/reader sets and per-register activity are
//! derived.
//!
//! # Storage layout
//!
//! A snapshot is two flat `registers × processes` counter arrays plus a
//! shared, immutable description of the register layout (interned names
//! and owners, one [`Arc`] per space, reused by every snapshot). The flat
//! form exists for speed: at n = 256 the Figure-2 layout is ~66 000
//! registers, and the per-row `Vec`s this module used to allocate made one
//! checkpoint cost ~130 000 heap allocations and a name clone each. Now a
//! checkpoint is two slab allocations and an `Arc` bump, and
//! [`MemorySpace::stats_into`](crate::MemorySpace::stats_into) can reuse
//! even those across checkpoints.

use std::fmt;
use std::sync::Arc;

use crate::{ProcessId, ProcessSet, ScanStats};

/// Immutable description of a space's registers at some point in its
/// creation order: interned names and owners, indexed by register id.
///
/// Built once per register-set size by the space and shared by every
/// snapshot taken at that size (append-only: a layout for `k` registers is
/// a prefix of any later layout of the same space).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct SnapshotLayout {
    pub(crate) names: Vec<Arc<str>>,
    pub(crate) owners: Vec<Option<ProcessId>>,
}

/// One register's counters within a snapshot — a borrowed view into the
/// snapshot's flat storage.
#[derive(Debug, Clone, Copy)]
pub struct RegisterRow<'a> {
    /// Register name, e.g. `SUSPICIONS\[2\]\[5\]`.
    pub name: &'a str,
    /// Owner for 1WnR registers, `None` for nWnR registers.
    pub owner: Option<ProcessId>,
    /// Reads performed by each process (indexed by process).
    pub reads: &'a [u64],
    /// Writes performed by each process (indexed by process).
    pub writes: &'a [u64],
}

impl RegisterRow<'_> {
    /// Total reads of this register by all processes.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes to this register by all processes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

/// A snapshot of every register's cumulative access counters.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let arr = space.nat_array("A", |_| 0);
/// let p0 = ProcessId::new(0);
///
/// let before = space.stats();
/// arr.get(p0).write(p0, 1);
/// let delta = space.stats().delta_since(&before);
/// assert_eq!(delta.total_writes(), 1);
/// assert_eq!(delta.writer_set().iter().collect::<Vec<_>>(), vec![p0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    pub(crate) n_processes: usize,
    pub(crate) layout: Arc<SnapshotLayout>,
    /// `reads[reg * n_processes + pid]`, register-major.
    pub(crate) reads: Vec<u64>,
    /// Same shape as `reads`.
    pub(crate) writes: Vec<u64>,
    pub(crate) scan: ScanStats,
}

impl PartialEq for StatsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.n_processes == other.n_processes
            && self.scan == other.scan
            && self.reads == other.reads
            && self.writes == other.writes
            && (Arc::ptr_eq(&self.layout, &other.layout) || self.layout == other.layout)
    }
}

impl Eq for StatsSnapshot {}

impl StatsSnapshot {
    /// Number of processes in the system.
    #[must_use]
    pub fn n_processes(&self) -> usize {
        self.n_processes
    }

    /// Number of registers captured in this snapshot.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.layout.names.len()
    }

    /// Scan-saving counters (reads skipped by epoch-validated caches,
    /// sharded `T3` passes) captured with this snapshot.
    #[must_use]
    pub fn scan(&self) -> ScanStats {
        self.scan
    }

    /// Per-register rows, in register-creation order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = RegisterRow<'_>> + '_ {
        let n = self.n_processes;
        (0..self.register_count()).map(move |r| RegisterRow {
            name: &self.layout.names[r],
            owner: self.layout.owners[r],
            reads: &self.reads[r * n..(r + 1) * n],
            writes: &self.writes[r * n..(r + 1) * n],
        })
    }

    /// Total reads across all registers and processes.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes across all registers and processes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    fn strided_sum(flat: &[u64], n: usize, pid: ProcessId) -> u64 {
        flat.iter().skip(pid.index()).step_by(n.max(1)).sum()
    }

    /// Reads performed by `pid` across all registers.
    #[must_use]
    pub fn reads_of(&self, pid: ProcessId) -> u64 {
        Self::strided_sum(&self.reads, self.n_processes, pid)
    }

    /// Writes performed by `pid` across all registers.
    #[must_use]
    pub fn writes_of(&self, pid: ProcessId) -> u64 {
        Self::strided_sum(&self.writes, self.n_processes, pid)
    }

    fn active_set(&self, flat: &[u64]) -> ProcessSet {
        let mut set = ProcessSet::new(self.n_processes);
        for row in flat.chunks_exact(self.n_processes.max(1)) {
            for (i, &count) in row.iter().enumerate() {
                if count > 0 {
                    set.insert(ProcessId::new(i));
                }
            }
        }
        set
    }

    /// The set of processes that performed at least one write.
    #[must_use]
    pub fn writer_set(&self) -> ProcessSet {
        self.active_set(&self.writes)
    }

    /// The set of processes that performed at least one read.
    #[must_use]
    pub fn reader_set(&self) -> ProcessSet {
        self.active_set(&self.reads)
    }

    /// Names of registers written at least once, in creation order.
    #[must_use]
    pub fn written_registers(&self) -> Vec<&str> {
        self.rows()
            .filter(|r| r.total_writes() > 0)
            .map(|r| r.name)
            .collect()
    }

    /// Counter-wise difference `self − earlier`.
    ///
    /// Both snapshots must come from the same memory space; registers that
    /// were created after `earlier` was taken are kept with their full
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has more registers than `self` or the shared
    /// prefix of registers does not match by name (snapshots from different
    /// spaces).
    #[must_use]
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert!(
            earlier.register_count() <= self.register_count(),
            "earlier snapshot has more registers than later one"
        );
        if !Arc::ptr_eq(&self.layout, &earlier.layout) {
            // Different layout generations: verify the shared name prefix.
            for (a, b) in self.layout.names.iter().zip(&earlier.layout.names) {
                assert!(
                    Arc::ptr_eq(a, b) || a == b,
                    "snapshots from different spaces"
                );
            }
        }
        let mut out = self.clone();
        for (a, b) in out.reads.iter_mut().zip(&earlier.reads) {
            *a -= b;
        }
        for (a, b) in out.writes.iter_mut().zip(&earlier.writes) {
            *a -= b;
        }
        out.scan = self.scan.delta_since(&earlier.scan);
        out
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>10}  writers",
            "register", "reads", "writes"
        )?;
        for row in self.rows() {
            let writers: Vec<String> = ProcessId::all(self.n_processes)
                .filter(|p| row.writes[p.index()] > 0)
                .map(|p| p.to_string())
                .collect();
            writeln!(
                f,
                "{:<24} {:>10} {:>10}  {}",
                row.name,
                row.total_reads(),
                row.total_writes(),
                writers.join(",")
            )?;
        }
        if self.scan != ScanStats::default() {
            writeln!(
                f,
                "scan: {} reads skipped ({} rows), {} snapshots, {} shard passes",
                self.scan.reads_skipped,
                self.scan.rows_skipped,
                self.scan.snapshot_batches,
                self.scan.shard_passes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn totals_and_sets() {
        let s = MemorySpace::new(3);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(0)).write(p(0), 1);
        arr.get(p(0)).write(p(0), 2);
        arr.get(p(1)).write(p(1), 1);
        arr.get(p(2)).read(p(1));
        let snap = s.stats();
        assert_eq!(snap.total_writes(), 3);
        assert_eq!(snap.total_reads(), 1);
        assert_eq!(snap.writes_of(p(0)), 2);
        assert_eq!(snap.reads_of(p(1)), 1);
        let writers: Vec<_> = snap.writer_set().iter().collect();
        assert_eq!(writers, vec![p(0), p(1)]);
        let readers: Vec<_> = snap.reader_set().iter().collect();
        assert_eq!(readers, vec![p(1)]);
        assert_eq!(snap.written_registers(), vec!["A[0]", "A[1]"]);
    }

    #[test]
    fn delta_subtracts_counters() {
        let s = MemorySpace::new(2);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(0)).write(p(0), 1);
        let before = s.stats();
        arr.get(p(0)).write(p(0), 2);
        arr.get(p(1)).write(p(1), 1);
        let delta = s.stats().delta_since(&before);
        assert_eq!(delta.total_writes(), 2);
        assert_eq!(delta.writes_of(p(0)), 1);
        assert_eq!(delta.writes_of(p(1)), 1);
    }

    #[test]
    fn delta_keeps_registers_created_after_baseline() {
        let s = MemorySpace::new(2);
        let a = s.nat_register("A", p(0), 0);
        let before = s.stats();
        let b = s.nat_register("B", p(1), 0);
        a.write(p(0), 1);
        b.write(p(1), 1);
        let delta = s.stats().delta_since(&before);
        assert_eq!(delta.total_writes(), 2);
        assert_eq!(delta.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn delta_rejects_foreign_snapshots() {
        let s1 = MemorySpace::new(1);
        let s2 = MemorySpace::new(1);
        let _ = s1.nat_register("A", p(0), 0);
        let _ = s2.nat_register("B", p(0), 0);
        let _ = s2.stats().delta_since(&s1.stats());
    }

    #[test]
    fn display_renders_table() {
        let s = MemorySpace::new(2);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(1)).write(p(1), 1);
        let out = s.stats().to_string();
        assert!(out.contains("A[1]"));
        assert!(out.contains("p1"));
    }

    #[test]
    fn register_row_totals() {
        let s = MemorySpace::new(2);
        let x = s.nat_register("X", p(0), 0);
        x.write(p(0), 3);
        x.read(p(0));
        x.read(p(1));
        x.read(p(1));
        let snap = s.stats();
        let row = snap.rows().next().unwrap();
        assert_eq!(row.name, "X");
        assert_eq!(row.owner, Some(p(0)));
        assert_eq!(row.total_reads(), 3);
        assert_eq!(row.total_writes(), 1);
    }

    #[test]
    fn snapshots_share_one_layout_allocation() {
        let s = MemorySpace::new(2);
        let _ = s.nat_array("A", |_| 0);
        let a = s.stats();
        let b = s.stats();
        assert!(
            Arc::ptr_eq(&a.layout, &b.layout),
            "same register set, same interned layout"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn equality_is_by_value_across_layout_generations() {
        let s = MemorySpace::new(1);
        let _ = s.nat_register("A", p(0), 0);
        let a = s.stats();
        let b = a.clone();
        assert_eq!(a, b);
    }
}
