//! Access-count snapshots: who read and wrote what.
//!
//! The paper's efficiency results are statements about *who keeps accessing
//! shared memory forever*:
//!
//! * Theorem 3 — with Algorithm 1, after stabilization only the elected
//!   leader writes, and only one register.
//! * Lemma 5 / Lemma 6 — the leader must write forever; everyone else must
//!   read forever.
//! * Theorem 7 — with Algorithm 2, after stabilization the writes are exactly
//!   `PROGRESS[ℓ][·]` (by the leader) and `LAST[ℓ][·]` (by the followers).
//!
//! A [`StatsSnapshot`] captures cumulative counters; subtracting two
//! snapshots ([`StatsSnapshot::delta_since`]) yields the accesses of a
//! window, from which writer/reader sets and per-register activity are
//! derived.

use std::fmt;

use crate::{ProcessId, ProcessSet, ScanStats};

/// Counters of a single register within a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterRow {
    /// Register name, e.g. `SUSPICIONS\[2\]\[5\]`.
    pub name: String,
    /// Owner for 1WnR registers, `None` for nWnR registers.
    pub owner: Option<ProcessId>,
    /// Reads performed by each process (indexed by process).
    pub reads: Vec<u64>,
    /// Writes performed by each process (indexed by process).
    pub writes: Vec<u64>,
}

impl RegisterRow {
    /// Total reads of this register by all processes.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes to this register by all processes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

/// A snapshot of every register's cumulative access counters.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let arr = space.nat_array("A", |_| 0);
/// let p0 = ProcessId::new(0);
///
/// let before = space.stats();
/// arr.get(p0).write(p0, 1);
/// let delta = space.stats().delta_since(&before);
/// assert_eq!(delta.total_writes(), 1);
/// assert_eq!(delta.writer_set().iter().collect::<Vec<_>>(), vec![p0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    n_processes: usize,
    rows: Vec<RegisterRow>,
    scan: ScanStats,
}

impl StatsSnapshot {
    pub(crate) fn new(n_processes: usize, rows: Vec<RegisterRow>) -> Self {
        StatsSnapshot {
            n_processes,
            rows,
            scan: ScanStats::default(),
        }
    }

    pub(crate) fn with_scan(mut self, scan: ScanStats) -> Self {
        self.scan = scan;
        self
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn n_processes(&self) -> usize {
        self.n_processes
    }

    /// Scan-saving counters (reads skipped by epoch-validated caches,
    /// sharded `T3` passes) captured with this snapshot.
    #[must_use]
    pub fn scan(&self) -> ScanStats {
        self.scan
    }

    /// Per-register rows, in register-creation order.
    #[must_use]
    pub fn rows(&self) -> &[RegisterRow] {
        &self.rows
    }

    /// Total reads across all registers and processes.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.rows.iter().map(RegisterRow::total_reads).sum()
    }

    /// Total writes across all registers and processes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.rows.iter().map(RegisterRow::total_writes).sum()
    }

    /// Reads performed by `pid` across all registers.
    #[must_use]
    pub fn reads_of(&self, pid: ProcessId) -> u64 {
        self.rows.iter().map(|r| r.reads[pid.index()]).sum()
    }

    /// Writes performed by `pid` across all registers.
    #[must_use]
    pub fn writes_of(&self, pid: ProcessId) -> u64 {
        self.rows.iter().map(|r| r.writes[pid.index()]).sum()
    }

    /// The set of processes that performed at least one write.
    #[must_use]
    pub fn writer_set(&self) -> ProcessSet {
        let mut set = ProcessSet::new(self.n_processes);
        for pid in ProcessId::all(self.n_processes) {
            if self.writes_of(pid) > 0 {
                set.insert(pid);
            }
        }
        set
    }

    /// The set of processes that performed at least one read.
    #[must_use]
    pub fn reader_set(&self) -> ProcessSet {
        let mut set = ProcessSet::new(self.n_processes);
        for pid in ProcessId::all(self.n_processes) {
            if self.reads_of(pid) > 0 {
                set.insert(pid);
            }
        }
        set
    }

    /// Names of registers written at least once, in creation order.
    #[must_use]
    pub fn written_registers(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.total_writes() > 0)
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Counter-wise difference `self − earlier`.
    ///
    /// Both snapshots must come from the same memory space; registers that
    /// were created after `earlier` was taken are kept with their full
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has more registers than `self` or the shared
    /// prefix of registers does not match by name (snapshots from different
    /// spaces).
    #[must_use]
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert!(
            earlier.rows.len() <= self.rows.len(),
            "earlier snapshot has more registers than later one"
        );
        let rows = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut out = row.clone();
                if let Some(prev) = earlier.rows.get(i) {
                    assert_eq!(prev.name, row.name, "snapshots from different spaces");
                    for (a, b) in out.reads.iter_mut().zip(&prev.reads) {
                        *a -= b;
                    }
                    for (a, b) in out.writes.iter_mut().zip(&prev.writes) {
                        *a -= b;
                    }
                }
                out
            })
            .collect();
        StatsSnapshot::new(self.n_processes, rows).with_scan(self.scan.delta_since(&earlier.scan))
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>10}  writers",
            "register", "reads", "writes"
        )?;
        for row in &self.rows {
            let writers: Vec<String> = ProcessId::all(self.n_processes)
                .filter(|p| row.writes[p.index()] > 0)
                .map(|p| p.to_string())
                .collect();
            writeln!(
                f,
                "{:<24} {:>10} {:>10}  {}",
                row.name,
                row.total_reads(),
                row.total_writes(),
                writers.join(",")
            )?;
        }
        if self.scan != ScanStats::default() {
            writeln!(
                f,
                "scan: {} reads skipped ({} rows), {} snapshots, {} shard passes",
                self.scan.reads_skipped,
                self.scan.rows_skipped,
                self.scan.snapshot_batches,
                self.scan.shard_passes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn totals_and_sets() {
        let s = MemorySpace::new(3);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(0)).write(p(0), 1);
        arr.get(p(0)).write(p(0), 2);
        arr.get(p(1)).write(p(1), 1);
        arr.get(p(2)).read(p(1));
        let snap = s.stats();
        assert_eq!(snap.total_writes(), 3);
        assert_eq!(snap.total_reads(), 1);
        assert_eq!(snap.writes_of(p(0)), 2);
        assert_eq!(snap.reads_of(p(1)), 1);
        let writers: Vec<_> = snap.writer_set().iter().collect();
        assert_eq!(writers, vec![p(0), p(1)]);
        let readers: Vec<_> = snap.reader_set().iter().collect();
        assert_eq!(readers, vec![p(1)]);
        assert_eq!(snap.written_registers(), vec!["A[0]", "A[1]"]);
    }

    #[test]
    fn delta_subtracts_counters() {
        let s = MemorySpace::new(2);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(0)).write(p(0), 1);
        let before = s.stats();
        arr.get(p(0)).write(p(0), 2);
        arr.get(p(1)).write(p(1), 1);
        let delta = s.stats().delta_since(&before);
        assert_eq!(delta.total_writes(), 2);
        assert_eq!(delta.writes_of(p(0)), 1);
        assert_eq!(delta.writes_of(p(1)), 1);
    }

    #[test]
    fn delta_keeps_registers_created_after_baseline() {
        let s = MemorySpace::new(2);
        let a = s.nat_register("A", p(0), 0);
        let before = s.stats();
        let b = s.nat_register("B", p(1), 0);
        a.write(p(0), 1);
        b.write(p(1), 1);
        let delta = s.stats().delta_since(&before);
        assert_eq!(delta.total_writes(), 2);
        assert_eq!(delta.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn delta_rejects_foreign_snapshots() {
        let s1 = MemorySpace::new(1);
        let s2 = MemorySpace::new(1);
        let _ = s1.nat_register("A", p(0), 0);
        let _ = s2.nat_register("B", p(0), 0);
        let _ = s2.stats().delta_since(&s1.stats());
    }

    #[test]
    fn display_renders_table() {
        let s = MemorySpace::new(2);
        let arr = s.nat_array("A", |_| 0);
        arr.get(p(1)).write(p(1), 1);
        let out = s.stats().to_string();
        assert!(out.contains("A[1]"));
        assert!(out.contains("p1"));
    }

    #[test]
    fn register_row_totals() {
        let row = RegisterRow {
            name: "X".into(),
            owner: Some(p(0)),
            reads: vec![1, 2],
            writes: vec![3, 0],
        };
        assert_eq!(row.total_reads(), 3);
        assert_eq!(row.total_writes(), 3);
    }
}
