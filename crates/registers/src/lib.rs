//! Instrumented atomic-register shared memory.
//!
//! This crate is the substrate of the `omega-shm` reproduction of
//! *“Electing an Eventual Leader in an Asynchronous Shared Memory System”*
//! (Fernández, Jiménez & Raynal, DSN 2007): a shared memory built from
//! **one-writer/multi-reader (1WnR)** and **multi-writer (nWnR)** atomic
//! registers, exactly the communication model `AS_n[∅]` of the paper.
//!
//! Three things distinguish it from a plain `Arc<AtomicU64>`:
//!
//! 1. **Ownership enforcement** — a 1WnR register knows its owner and
//!    rejects writes by anyone else, so algorithm bugs that violate the
//!    model fail loudly ([`SwmrRegister`]).
//! 2. **Instrumentation** — every read and write is attributed to a process;
//!    [`MemorySpace::stats`] answers “who wrote what in this window?”, which
//!    is how the paper's write-optimality results (Theorems 3, 4, 7;
//!    Lemmas 5, 6) become measurable, and [`MemorySpace::footprint`] tracks
//!    value domains for the boundedness results (Theorems 2, 6).
//! 3. **Checked atomicity** — [`lincheck`] records concurrent histories and
//!    verifies linearizability, the property the paper assumes of its
//!    registers.
//!
//! # Quick start
//!
//! ```
//! use omega_registers::{MemorySpace, ProcessId};
//!
//! // A 3-process system with the Figure-2 register layout.
//! let space = MemorySpace::new(3);
//! let progress = space.nat_array("PROGRESS", |_| 0);
//! let stop = space.flag_array("STOP", |_| true);
//! let suspicions = space.nat_row_matrix("SUSPICIONS", |_, _| 0);
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! progress.get(p0).write(p0, 1);                 // p0 heartbeats
//! suspicions.get(p1, p0).write(p1, 1);           // p1 suspects p0 once
//! assert_eq!(suspicions.get(p1, p0).read(p0), 1);
//! assert!(stop.get(p1).read(p0));
//!
//! // Instrumentation: exactly p0 and p1 wrote so far.
//! assert_eq!(space.stats().writer_set().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod lincheck;
pub mod sync;

mod array;
mod block;
mod chaos;
mod error;
mod footprint;
mod matrix;
mod meta;
mod pid;
mod shard;
mod space;
mod stats;
mod swmr;
mod value;

pub use array::{MwmrArray, SwmrArray};
pub use block::{BlockBinding, BlockDevice, BlockMap};
pub use error::OwnershipError;
pub use footprint::{FootprintReport, FootprintRow};
pub use matrix::{OwnedMatrix, OwnerAxis};
pub use meta::{Instrumentation, RegisterId};
pub use pid::{ProcessId, ProcessSet};
pub use shard::{EpochedArray, EpochedMatrix, ScanCounters, ScanStats};
pub use space::{
    EpochedMwmrNatArray, EpochedNatMatrix, FlagArray, FlagMatrix, FlagRegister, MemorySpace,
    MwmrNatArray, NatArray, NatMatrix, NatRegister,
};
pub use stats::{RegisterRow, StatsSnapshot};
pub use swmr::{MwmrRegister, SwmrRegister};
pub use value::RegisterValue;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        FlagArray, FlagMatrix, FlagRegister, MemorySpace, MwmrNatArray, NatArray, NatMatrix,
        NatRegister, ProcessId, ProcessSet,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::MemorySpace>();
        assert_send_sync::<crate::NatRegister>();
        assert_send_sync::<crate::FlagRegister>();
        assert_send_sync::<crate::NatArray>();
        assert_send_sync::<crate::NatMatrix>();
        assert_send_sync::<crate::StatsSnapshot>();
    }
}
