//! Per-register metadata and access counters (internal).
//!
//! Every register created through a [`MemorySpace`](crate::MemorySpace)
//! carries a [`Counters`] block recording, per process, how many reads and
//! writes it has performed, plus the high-water mark of the register's bit
//! footprint. The election algorithms never see these counters; the
//! experiment harness reads them to verify the paper's optimality claims
//! (Theorems 3, 4, 7 and Lemmas 5, 6).
//!
//! # Instrumentation modes
//!
//! Counting has a cost, and it is paid on *every* shared access — at
//! n = 256 a single simulated run performs close to a billion attributed
//! reads. Two modes trade synchronization for speed:
//!
//! * [`Instrumentation::Eager`] (default) — every access does an atomic
//!   read-modify-write on the shared counters. Safe under arbitrary
//!   concurrency; this is what the thread runtime uses.
//! * [`Instrumentation::Deferred`] — accesses accumulate in per-process
//!   *scratch blocks* using unsynchronized (plain load/store, no lock
//!   prefix, no fences) updates, and are folded into the shared atomics
//!   only at snapshot boundaries ([`MemorySpace::stats`](crate::MemorySpace::stats)
//!   / [`MemorySpace::footprint`](crate::MemorySpace::footprint) flush
//!   first). Built for the single-threaded simulation driver, where the
//!   relaxed read-add-write sequence is exact. If deferred registers are
//!   (mis)used from several threads concurrently, increments may be lost —
//!   counters under-report — but there is no undefined behavior and no
//!   torn value: every cell is still an `AtomicU64`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ProcessId;

/// Stable identity of a register within its memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub(crate) usize);

impl RegisterId {
    /// Index of this register in its space's creation order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// How a [`MemorySpace`](crate::MemorySpace) counts register accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Instrumentation {
    /// Atomic read-modify-write per access: correct under any concurrency
    /// (the thread-runtime mode).
    #[default]
    Eager,
    /// Unsynchronized scratch accumulation, flushed to the shared counters
    /// at snapshot boundaries: exact for single-threaded drivers (the
    /// simulator), lossy-but-sound if misused concurrently.
    Deferred,
}

/// Unsynchronized per-process scratch for one register's counters.
///
/// Updated with `load(Relaxed)` / `store(Relaxed)` pairs — plain machine
/// loads and stores, no RMW — which is what makes the deferred mode cheap.
#[derive(Debug)]
struct Scratch {
    reads: Box<[AtomicU64]>,
    writes: Box<[AtomicU64]>,
    hwm_bits: AtomicU64,
}

#[inline]
fn bump(cell: &AtomicU64, delta: u64) {
    // Single-threaded read-add-write; deliberately NOT fetch_add.
    cell.store(cell.load(Ordering::Relaxed) + delta, Ordering::Relaxed);
}

/// Drains `from` into `into` (attributed counters) with one RMW per
/// non-zero cell.
fn drain(from: &[AtomicU64], into: &[AtomicU64]) {
    for (scratch, shared) in from.iter().zip(into) {
        let pending = scratch.load(Ordering::Relaxed);
        if pending != 0 {
            scratch.store(0, Ordering::Relaxed);
            shared.fetch_add(pending, Ordering::Relaxed);
        }
    }
}

/// Cumulative access counters for one register.
#[derive(Debug)]
pub(crate) struct Counters {
    reads: Box<[AtomicU64]>,
    writes: Box<[AtomicU64]>,
    hwm_bits: AtomicU64,
    /// Deferred-mode scratch; `None` in eager mode.
    scratch: Option<Scratch>,
}

impl Counters {
    pub(crate) fn new(n_processes: usize, mode: Instrumentation) -> Self {
        let zeroed = |len: usize| (0..len).map(|_| AtomicU64::new(0)).collect();
        Counters {
            reads: zeroed(n_processes),
            writes: zeroed(n_processes),
            hwm_bits: AtomicU64::new(0),
            scratch: match mode {
                Instrumentation::Eager => None,
                Instrumentation::Deferred => Some(Scratch {
                    reads: zeroed(n_processes),
                    writes: zeroed(n_processes),
                    hwm_bits: AtomicU64::new(0),
                }),
            },
        }
    }

    pub(crate) fn note_read(&self, reader: ProcessId) {
        match &self.scratch {
            Some(s) => bump(&s.reads[reader.index()], 1),
            None => {
                self.reads[reader.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn note_write(&self, writer: ProcessId, bits: u64) {
        match &self.scratch {
            Some(s) => {
                bump(&s.writes[writer.index()], 1);
                if bits > s.hwm_bits.load(Ordering::Relaxed) {
                    s.hwm_bits.store(bits, Ordering::Relaxed);
                }
            }
            None => {
                self.writes[writer.index()].fetch_add(1, Ordering::Relaxed);
                self.hwm_bits.fetch_max(bits, Ordering::Relaxed);
            }
        }
    }

    /// Records the footprint of the initial value without counting a write.
    pub(crate) fn note_initial(&self, bits: u64) {
        self.hwm_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Folds any deferred scratch into the shared counters (no-op in eager
    /// mode). Must run before the counters are read for a snapshot.
    pub(crate) fn flush(&self) {
        let Some(s) = &self.scratch else { return };
        drain(&s.reads, &self.reads);
        drain(&s.writes, &self.writes);
        self.flush_hwm();
    }

    /// Folds only the deferred high-water mark (the footprint fast path —
    /// footprints don't read the per-process counters, so flushing the
    /// whole scratch block there would be wasted work).
    pub(crate) fn flush_hwm(&self) {
        let Some(s) = &self.scratch else { return };
        let hwm = s.hwm_bits.load(Ordering::Relaxed);
        if hwm != 0 {
            s.hwm_bits.store(0, Ordering::Relaxed);
            self.hwm_bits.fetch_max(hwm, Ordering::Relaxed);
        }
    }

    #[cfg(test)]
    pub(crate) fn reads_by(&self, pid: ProcessId) -> u64 {
        self.reads[pid.index()].load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn writes_by(&self, pid: ProcessId) -> u64 {
        self.writes[pid.index()].load(Ordering::Relaxed)
    }

    /// Copies the per-process read/write counters into flat slices (the
    /// snapshot fast path; avoids 2n indexed calls per register).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not exactly `n_processes` long.
    pub(crate) fn copy_into(&self, reads: &mut [u64], writes: &mut [u64]) {
        assert_eq!(reads.len(), self.reads.len());
        assert_eq!(writes.len(), self.writes.len());
        for (out, cell) in reads.iter_mut().zip(self.reads.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        for (out, cell) in writes.iter_mut().zip(self.writes.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
    }

    pub(crate) fn hwm_bits(&self) -> u64 {
        self.hwm_bits.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn n_processes(&self) -> usize {
        self.reads.len()
    }
}

/// Type-erased view of a register used by the registry for reporting.
pub(crate) trait RegisterMeta: Send + Sync {
    fn name(&self) -> &std::sync::Arc<str>;
    fn owner(&self) -> Option<ProcessId>;
    fn counters(&self) -> &Counters;
    /// Footprint of the value currently stored.
    fn current_bits(&self) -> u64;
    /// Snapshots the current value into the register's frozen cell — the
    /// value severed readers observe while a partition is installed.
    fn freeze(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_process() {
        let c = Counters::new(3, Instrumentation::Eager);
        let p0 = ProcessId::new(0);
        let p2 = ProcessId::new(2);
        c.note_read(p0);
        c.note_read(p0);
        c.note_write(p2, 5);
        c.note_write(p2, 3);
        assert_eq!(c.reads_by(p0), 2);
        assert_eq!(c.reads_by(p2), 0);
        assert_eq!(c.writes_by(p2), 2);
        assert_eq!(c.hwm_bits(), 5, "high-water mark keeps the max footprint");
        assert_eq!(c.n_processes(), 3);
    }

    #[test]
    fn initial_footprint_counts_no_write() {
        let c = Counters::new(1, Instrumentation::Eager);
        c.note_initial(17);
        assert_eq!(c.hwm_bits(), 17);
        assert_eq!(c.writes_by(ProcessId::new(0)), 0);
    }

    #[test]
    fn deferred_counters_are_invisible_until_flushed() {
        let c = Counters::new(2, Instrumentation::Deferred);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        c.note_read(p0);
        c.note_read(p0);
        c.note_write(p1, 9);
        assert_eq!(c.reads_by(p0), 0, "scratch not flushed yet");
        assert_eq!(c.writes_by(p1), 0);
        c.flush();
        assert_eq!(c.reads_by(p0), 2);
        assert_eq!(c.writes_by(p1), 1);
        assert_eq!(c.hwm_bits(), 9, "hwm flushed from scratch");
        // Flush drains: a second flush adds nothing.
        c.flush();
        assert_eq!(c.reads_by(p0), 2);
        assert_eq!(c.writes_by(p1), 1);
    }

    #[test]
    fn deferred_accumulates_across_flushes() {
        let c = Counters::new(1, Instrumentation::Deferred);
        let p0 = ProcessId::new(0);
        c.note_write(p0, 1);
        c.flush();
        c.note_write(p0, 21);
        c.flush();
        c.note_write(p0, 3);
        c.flush();
        assert_eq!(c.writes_by(p0), 3);
        assert_eq!(c.hwm_bits(), 21, "hwm keeps the max across flushes");
    }

    #[test]
    fn copy_into_matches_indexed_reads() {
        let c = Counters::new(3, Instrumentation::Eager);
        c.note_read(ProcessId::new(1));
        c.note_write(ProcessId::new(2), 1);
        let mut reads = [0u64; 3];
        let mut writes = [0u64; 3];
        c.copy_into(&mut reads, &mut writes);
        assert_eq!(reads, [0, 1, 0]);
        assert_eq!(writes, [0, 0, 1]);
    }

    #[test]
    fn register_id_index() {
        assert_eq!(RegisterId(4).index(), 4);
    }
}
