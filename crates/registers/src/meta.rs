//! Per-register metadata and access counters (internal).
//!
//! Every register created through a [`MemorySpace`](crate::MemorySpace)
//! carries a [`Counters`] block recording, per process, how many reads and
//! writes it has performed, plus the high-water mark of the register's bit
//! footprint. The election algorithms never see these counters; the
//! experiment harness reads them to verify the paper's optimality claims
//! (Theorems 3, 4, 7 and Lemmas 5, 6).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ProcessId;

/// Stable identity of a register within its memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub(crate) usize);

impl RegisterId {
    /// Index of this register in its space's creation order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Cumulative access counters for one register.
#[derive(Debug)]
pub(crate) struct Counters {
    reads: Box<[AtomicU64]>,
    writes: Box<[AtomicU64]>,
    hwm_bits: AtomicU64,
}

impl Counters {
    pub(crate) fn new(n_processes: usize) -> Self {
        Counters {
            reads: (0..n_processes).map(|_| AtomicU64::new(0)).collect(),
            writes: (0..n_processes).map(|_| AtomicU64::new(0)).collect(),
            hwm_bits: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_read(&self, reader: ProcessId) {
        self.reads[reader.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_write(&self, writer: ProcessId, bits: u64) {
        self.writes[writer.index()].fetch_add(1, Ordering::Relaxed);
        self.hwm_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Records the footprint of the initial value without counting a write.
    pub(crate) fn note_initial(&self, bits: u64) {
        self.hwm_bits.fetch_max(bits, Ordering::Relaxed);
    }

    pub(crate) fn reads_by(&self, pid: ProcessId) -> u64 {
        self.reads[pid.index()].load(Ordering::Relaxed)
    }

    pub(crate) fn writes_by(&self, pid: ProcessId) -> u64 {
        self.writes[pid.index()].load(Ordering::Relaxed)
    }

    pub(crate) fn hwm_bits(&self) -> u64 {
        self.hwm_bits.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn n_processes(&self) -> usize {
        self.reads.len()
    }
}

/// Type-erased view of a register used by the registry for reporting.
pub(crate) trait RegisterMeta: Send + Sync {
    fn name(&self) -> &str;
    fn owner(&self) -> Option<ProcessId>;
    fn counters(&self) -> &Counters;
    /// Footprint of the value currently stored.
    fn current_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_process() {
        let c = Counters::new(3);
        let p0 = ProcessId::new(0);
        let p2 = ProcessId::new(2);
        c.note_read(p0);
        c.note_read(p0);
        c.note_write(p2, 5);
        c.note_write(p2, 3);
        assert_eq!(c.reads_by(p0), 2);
        assert_eq!(c.reads_by(p2), 0);
        assert_eq!(c.writes_by(p2), 2);
        assert_eq!(c.hwm_bits(), 5, "high-water mark keeps the max footprint");
        assert_eq!(c.n_processes(), 3);
    }

    #[test]
    fn initial_footprint_counts_no_write() {
        let c = Counters::new(1);
        c.note_initial(17);
        assert_eq!(c.hwm_bits(), 17);
        assert_eq!(c.writes_by(ProcessId::new(0)), 0);
    }

    #[test]
    fn register_id_index() {
        assert_eq!(RegisterId(4).index(), 4);
    }
}
