//! Registers backed by shared disk blocks.
//!
//! The paper's Section 1 motivates the register model with networks of
//! attached disks (Disk Paxos, Petal, NASD): a disk block written by one
//! machine and read by all *is* a 1WnR atomic register. This module is the
//! substrate half of that story — a [`BlockDevice`] abstraction over any
//! shared block medium, and a [`BlockMap`] that lays registers out on it
//! one block per 1WnR register (the Disk-Paxos layout).
//!
//! A [`MemorySpace`](crate::MemorySpace) created through
//! [`with_block_device`](crate::MemorySpace::with_block_device) routes every
//! attributed register access through the device instead of a local atomic
//! cell, so the *same algorithm code* (and the same instrumentation) runs
//! unchanged over the disk: the device decides latency and serves the
//! authoritative value, the register layer keeps enforcing ownership and
//! counting accesses. The concrete simulated disk lives in
//! `omega_runtime::san`; this crate only sees the trait.

use std::sync::Arc;

use crate::sync::Mutex;
use crate::ProcessId;

/// A shared block device: addressable 8-byte blocks, linearizable per-block
/// reads and writes.
///
/// The two attributed operations ([`read_block`](Self::read_block) /
/// [`write_block`](Self::write_block)) are the medium's real access path —
/// implementations may sleep to model access latency and must count the
/// access in whatever footprint accounting they keep. The unattributed pair
/// ([`peek_block`](Self::peek_block) / [`poke_block`](Self::poke_block))
/// exists for harness-side inspection (footprint reports, `peek`/`poke`)
/// and must be instant and invisible to the accounting, mirroring the
/// register layer's own peek/poke contract.
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// Reads block `addr` (zero if never written), paying the medium's
    /// access cost.
    fn read_block(&self, addr: u64) -> u64;

    /// Writes block `addr`, paying the medium's access cost.
    fn write_block(&self, addr: u64, value: u64);

    /// Reads block `addr` without latency or accounting (harness-side).
    fn peek_block(&self, addr: u64) -> u64;

    /// Writes block `addr` without latency or accounting (harness-side).
    fn poke_block(&self, addr: u64, value: u64);
}

/// One register's place on the device: which block, owned by whom.
#[derive(Debug, Clone)]
pub struct BlockBinding {
    /// Interned register name (e.g. `SUSPICIONS[2][0]`).
    pub name: Arc<str>,
    /// Block address the register occupies.
    pub addr: u64,
    /// Owning machine for 1WnR registers; `None` for nWnR blocks.
    pub owner: Option<ProcessId>,
}

/// The block-layout mapper: assigns each register created in a disk-backed
/// [`MemorySpace`](crate::MemorySpace) its own block, in creation order,
/// and remembers the layout for introspection.
///
/// One block per 1WnR register is exactly the SAN realization the paper
/// cites (one block — or one disk sector per writer — per register); nWnR
/// registers also get a dedicated block (the device serializes writers).
///
/// # Examples
///
/// ```
/// use omega_registers::BlockMap;
/// use omega_registers::ProcessId;
///
/// let map = BlockMap::new();
/// let a = map.bind("PROGRESS[0]", Some(ProcessId::new(0)));
/// let b = map.bind("PROGRESS[1]", Some(ProcessId::new(1)));
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(map.blocks(), 2);
/// assert_eq!(map.addr_of("PROGRESS[1]"), Some(1));
/// ```
#[derive(Debug, Default)]
pub struct BlockMap {
    bindings: Mutex<Vec<BlockBinding>>,
}

impl BlockMap {
    /// An empty layout.
    #[must_use]
    pub fn new() -> Self {
        BlockMap::default()
    }

    /// Assigns the next free block to a register, returning its address.
    pub fn bind(&self, name: &str, owner: Option<ProcessId>) -> u64 {
        let mut bindings = self.bindings.lock();
        let addr = bindings.len() as u64;
        bindings.push(BlockBinding {
            name: name.into(),
            addr,
            owner,
        });
        addr
    }

    /// Number of blocks the layout occupies so far.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.bindings.lock().len()
    }

    /// The block a register was laid out on, if it exists.
    #[must_use]
    pub fn addr_of(&self, name: &str) -> Option<u64> {
        self.bindings
            .lock()
            .iter()
            .find(|b| &*b.name == name)
            .map(|b| b.addr)
    }

    /// A snapshot of every binding, in block order.
    #[must_use]
    pub fn bindings(&self) -> Vec<BlockBinding> {
        self.bindings.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySpace, ProcessId};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An instant in-memory device that counts attributed accesses.
    #[derive(Debug, Default)]
    struct TestDevice {
        blocks: Mutex<HashMap<u64, u64>>,
        accesses: AtomicU64,
    }

    impl BlockDevice for TestDevice {
        fn read_block(&self, addr: u64) -> u64 {
            self.accesses.fetch_add(1, Ordering::Relaxed);
            self.peek_block(addr)
        }

        fn write_block(&self, addr: u64, value: u64) {
            self.accesses.fetch_add(1, Ordering::Relaxed);
            self.poke_block(addr, value);
        }

        fn peek_block(&self, addr: u64) -> u64 {
            *self.blocks.lock().get(&addr).unwrap_or(&0)
        }

        fn poke_block(&self, addr: u64, value: u64) {
            self.blocks.lock().insert(addr, value);
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn block_map_assigns_sequential_addresses() {
        let map = BlockMap::new();
        assert_eq!(map.bind("A", Some(p(0))), 0);
        assert_eq!(map.bind("B", None), 1);
        assert_eq!(map.blocks(), 2);
        assert_eq!(map.addr_of("A"), Some(0));
        assert_eq!(map.addr_of("missing"), None);
        let bindings = map.bindings();
        assert_eq!(bindings[1].owner, None);
        assert_eq!(&*bindings[0].name, "A");
    }

    #[test]
    fn disk_backed_space_routes_values_through_the_device() {
        let device = Arc::new(TestDevice::default());
        let space = MemorySpace::with_block_device(2, Arc::clone(&device) as _);
        let reg = space.nat_register("X", p(0), 0);
        let flag = space.flag_register("F", p(1), false);

        reg.write(p(0), 99);
        flag.write(p(1), true);
        assert_eq!(reg.read(p(1)), 99);
        assert!(flag.read(p(0)));

        // The values really live in the device's blocks.
        let map = space.block_map().expect("disk-backed space has a layout");
        assert_eq!(device.peek_block(map.addr_of("X").unwrap()), 99);
        assert_eq!(device.peek_block(map.addr_of("F").unwrap()), 1);
        // 2 writes + 2 reads were attributed to the device.
        assert_eq!(device.accesses.load(Ordering::Relaxed), 4);
        // ... and to the register instrumentation, identically.
        assert_eq!(space.stats().total_writes(), 2);
        assert_eq!(space.stats().total_reads(), 2);
    }

    #[test]
    fn nonzero_initial_values_are_seeded_without_accounting() {
        let device = Arc::new(TestDevice::default());
        let space = MemorySpace::with_block_device(1, Arc::clone(&device) as _);
        let reg = space.nat_register("INIT", p(0), 7);
        assert_eq!(device.accesses.load(Ordering::Relaxed), 0);
        assert_eq!(reg.read(p(0)), 7);
        assert_eq!(space.stats().total_writes(), 0);
    }

    #[test]
    fn peek_and_poke_bypass_the_access_path() {
        let device = Arc::new(TestDevice::default());
        let space = MemorySpace::with_block_device(1, Arc::clone(&device) as _);
        let reg = space.nat_register("X", p(0), 0);
        reg.poke(5);
        assert_eq!(reg.peek(), 5);
        assert_eq!(device.accesses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn whole_figure2_layout_gets_one_block_per_register() {
        let device = Arc::new(TestDevice::default());
        let space = MemorySpace::with_block_device(3, Arc::clone(&device) as _);
        let _progress = space.nat_array("PROGRESS", |_| 0);
        let _stop = space.flag_array("STOP", |_| false);
        let _suspicions = space.nat_row_matrix("SUSPICIONS", |_, _| 0);
        let map = space.block_map().unwrap();
        assert_eq!(map.blocks(), 3 + 3 + 9);
        assert_eq!(map.blocks(), space.register_count());
        assert_eq!(map.addr_of("SUSPICIONS[2][1]"), Some(3 + 3 + 2 * 3 + 1));
    }

    #[test]
    #[should_panic(expected = "cannot live on a disk block")]
    fn non_encodable_register_types_fail_loudly() {
        let device = Arc::new(TestDevice::default());
        let space = MemorySpace::with_block_device(1, device as _);
        let _ = space.swmr::<String>("S", p(0), String::new());
    }
}
