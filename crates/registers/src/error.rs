//! Errors reported by the register substrate.

use std::error::Error;
use std::fmt;

use crate::ProcessId;

/// A process attempted to write a one-writer register it does not own.
///
/// The paper's model is built from 1WnR (one-writer/multi-reader) atomic
/// registers; ownership violations are programming errors in an algorithm,
/// so [`SwmrRegister::write`](crate::SwmrRegister::write) panics, while
/// [`SwmrRegister::try_write`](crate::SwmrRegister::try_write) surfaces this
/// error for callers that prefer recoverable validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipError {
    register: String,
    owner: ProcessId,
    writer: ProcessId,
}

impl OwnershipError {
    pub(crate) fn new(register: impl Into<String>, owner: ProcessId, writer: ProcessId) -> Self {
        OwnershipError {
            register: register.into(),
            owner,
            writer,
        }
    }

    /// Name of the violated register (e.g. `PROGRESS\[3\]`).
    #[must_use]
    pub fn register(&self) -> &str {
        &self.register
    }

    /// The register's owner — the only process allowed to write it.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The process that attempted the write.
    #[must_use]
    pub fn writer(&self) -> ProcessId {
        self.writer
    }
}

impl fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} attempted to write register {} owned by {}",
            self.writer, self.register, self.owner
        )
    }
}

impl Error for OwnershipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OwnershipError::new("STOP[2]", ProcessId::new(2), ProcessId::new(0));
        let msg = e.to_string();
        assert!(msg.contains("STOP[2]"));
        assert!(msg.contains("p0"));
        assert!(msg.contains("p2"));
    }

    #[test]
    fn accessors() {
        let e = OwnershipError::new("X", ProcessId::new(1), ProcessId::new(3));
        assert_eq!(e.register(), "X");
        assert_eq!(e.owner(), ProcessId::new(1));
        assert_eq!(e.writer(), ProcessId::new(3));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<OwnershipError>();
    }
}
