//! Epoch/dirty-row tracking for scan-heavy register layouts.
//!
//! The Figure-2 `SUSPICIONS` matrix is `n²` registers, and both the `T1`
//! election (`leader()`) and the `T3` scan walk it. At `n = 32` the
//! baseline run already performs ~93 M attributed reads, almost all of
//! them re-reading rows that have not changed since the previous scan —
//! exactly the contention regime the leader-election lower bounds (see
//! PAPERS.md) say dominates at scale.
//!
//! This module adds the tracking layer that lets readers *skip* untouched
//! rows without weakening the register model:
//!
//! * [`EpochedMatrix`] — an [`OwnedMatrix`] whose writes (through the
//!   matrix-level [`write`](EpochedMatrix::write)) bump a per-row epoch.
//!   A reader remembers the epoch it last snapshotted a row at and
//!   re-reads the row only when the epoch moved; each skipped row is a
//!   row's worth of shared reads avoided.
//! * [`EpochedArray`] — the same idea per slot, for the §3.5(a) nWnR
//!   suspicion counters.
//! * [`ScanCounters`] — space-wide accounting of the savings
//!   (reads skipped, rows skipped, snapshot batches, `T3` shard passes),
//!   surfaced through [`StatsSnapshot`](crate::StatsSnapshot) so every
//!   driver can report them in its outcome.
//!
//! The epoch is harness-level metadata, not a shared register: checking it
//! models a modification-detecting read (a dirty bit), which is strictly
//! weaker than reading the register's value. Skipping a clean row can at
//! worst return a value that was current at the previous scan — the same
//! staleness any asynchronous reader already tolerates — and the next
//! epoch check observes the missed write, so the Ω eventual-agreement
//! argument is unaffected.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::array::MwmrArray;
use crate::cell::SharedCell;
use crate::matrix::OwnedMatrix;
use crate::value::RegisterValue;
use crate::ProcessId;

/// Space-wide counters of the shared reads that epoch tracking avoided.
///
/// One instance is shared by every epoched structure of a
/// [`MemorySpace`](crate::MemorySpace); snapshots of it ride along in
/// [`StatsSnapshot`](crate::StatsSnapshot) as [`ScanStats`].
///
/// These are bookkeeping counters on hot scan paths (every `T3` pass and
/// every quiescent `leader()` query posts to them), so a space in deferred
/// instrumentation mode creates them *unsynchronized*: updates are plain
/// load/store pairs rather than atomic read-modify-writes, exact for the
/// single-threaded simulator and lossy-but-sound (never torn, never UB)
/// if misused concurrently.
#[derive(Debug, Default)]
pub struct ScanCounters {
    reads_skipped: AtomicU64,
    rows_skipped: AtomicU64,
    snapshot_batches: AtomicU64,
    shard_passes: AtomicU64,
    /// Use plain load/store instead of `fetch_add` (deferred-mode spaces).
    unsync: bool,
}

impl ScanCounters {
    /// Creates zeroed counters (synchronized updates).
    #[must_use]
    pub fn new() -> Self {
        ScanCounters::default()
    }

    /// Creates zeroed counters with unsynchronized (single-threaded-exact)
    /// updates.
    #[must_use]
    pub fn new_unsync() -> Self {
        ScanCounters {
            unsync: true,
            ..ScanCounters::default()
        }
    }

    #[inline]
    fn add(&self, cell: &AtomicU64, delta: u64) {
        if self.unsync {
            cell.store(cell.load(Ordering::Relaxed) + delta, Ordering::Relaxed);
        } else {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Records that a clean row/slot spared `reads` shared reads.
    pub fn note_skipped(&self, rows: u64, reads: u64) {
        self.add(&self.rows_skipped, rows);
        self.add(&self.reads_skipped, reads);
    }

    /// Records one batched row/array snapshot.
    pub fn note_snapshot(&self) {
        self.add(&self.snapshot_batches, 1);
    }

    /// Records one sharded `T3` scan pass.
    pub fn note_shard_pass(&self) {
        self.add(&self.shard_passes, 1);
    }

    /// Current counter values.
    #[must_use]
    pub fn snapshot(&self) -> ScanStats {
        ScanStats {
            reads_skipped: self.reads_skipped.load(Ordering::Relaxed),
            rows_skipped: self.rows_skipped.load(Ordering::Relaxed),
            snapshot_batches: self.snapshot_batches.load(Ordering::Relaxed),
            shard_passes: self.shard_passes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of [`ScanCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Shared reads avoided by epoch-validated caches.
    pub reads_skipped: u64,
    /// Rows/slots found clean and skipped.
    pub rows_skipped: u64,
    /// Batched snapshot reads performed.
    pub snapshot_batches: u64,
    /// Sharded `T3` scan passes executed.
    pub shard_passes: u64,
}

impl ScanStats {
    /// Field-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &ScanStats) -> ScanStats {
        ScanStats {
            reads_skipped: self.reads_skipped.saturating_sub(earlier.reads_skipped),
            rows_skipped: self.rows_skipped.saturating_sub(earlier.rows_skipped),
            snapshot_batches: self
                .snapshot_batches
                .saturating_sub(earlier.snapshot_batches),
            shard_passes: self.shard_passes.saturating_sub(earlier.shard_passes),
        }
    }
}

/// Per-row (or per-slot) modification epochs, plus a structure-global
/// epoch that moves on *every* write.
///
/// The global epoch lets a reader validate "nothing anywhere changed" with
/// one load instead of `n` — the O(1) fast path of a quiescent scan cache.
/// A reader that observes an unchanged global epoch knows every per-row
/// epoch is unchanged too (the global moves with each of them).
#[derive(Debug)]
pub(crate) struct Epochs {
    versions: Box<[AtomicU64]>,
    global: AtomicU64,
}

impl Epochs {
    fn new(len: usize) -> Self {
        Epochs {
            versions: (0..len).map(|_| AtomicU64::new(0)).collect(),
            global: AtomicU64::new(0),
        }
    }

    fn bump(&self, index: usize) {
        self.versions[index].fetch_add(1, Ordering::Release);
        self.global.fetch_add(1, Ordering::Release);
    }

    /// Moves every per-row epoch (and the global epoch with them): nothing
    /// a reader cached against an older epoch validates afterwards. This
    /// is the partition install/heal hook — a visibility cut is a
    /// modification *of what a read returns* even though no value moved,
    /// so epoch-validated caches must be forced to re-read once per
    /// transition or they would serve frozen snapshots as current forever
    /// (the matrix may go quiescent right after a heal).
    pub(crate) fn bump_all(&self) {
        for version in &self.versions {
            version.fetch_add(1, Ordering::Release);
        }
        self.global
            .fetch_add(self.versions.len() as u64, Ordering::Release);
    }

    fn load(&self, index: usize) -> u64 {
        self.versions[index].load(Ordering::Acquire)
    }

    fn load_global(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }
}

/// An owned register matrix with per-row modification epochs.
///
/// Reads and ownership checks are exactly those of the wrapped
/// [`OwnedMatrix`]; the only new obligation is that writers go through
/// [`write`](EpochedMatrix::write) (or bump explicitly) so the row epoch
/// tracks modifications.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(3);
/// let susp = space.epoched_nat_row_matrix("SUSPICIONS", |_, _| 0);
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
///
/// let before = susp.row_version(p0);
/// susp.write(p0, p1, p0, 7);
/// assert_ne!(susp.row_version(p0), before, "write moved the row epoch");
///
/// let mut row = vec![0; 3];
/// let seen = susp.snapshot_row_into(p0, p1, &mut row);
/// assert_eq!(row, vec![0, 7, 0]);
/// assert_eq!(seen, susp.row_version(p0), "clean row: epoch unchanged");
/// ```
pub struct EpochedMatrix<T: RegisterValue, C: SharedCell<T>> {
    matrix: OwnedMatrix<T, C>,
    epochs: Arc<Epochs>,
    counters: Arc<ScanCounters>,
}

impl<T: RegisterValue, C: SharedCell<T>> EpochedMatrix<T, C> {
    pub(crate) fn new(matrix: OwnedMatrix<T, C>, counters: Arc<ScanCounters>) -> Self {
        let n = matrix.n();
        EpochedMatrix {
            matrix,
            epochs: Arc::new(Epochs::new(n)),
            counters,
        }
    }

    /// The wrapped matrix (plain register access; reads don't need epochs).
    #[must_use]
    pub fn matrix(&self) -> &OwnedMatrix<T, C> {
        &self.matrix
    }

    /// Matrix dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.matrix.n()
    }

    /// The register at `[row][col]` (passthrough).
    #[must_use]
    pub fn get(&self, row: ProcessId, col: ProcessId) -> &crate::SwmrRegister<T, C> {
        self.matrix.get(row, col)
    }

    /// Writes `[row][col]` on behalf of `writer` and bumps the row epoch.
    ///
    /// The epoch moves *after* the value is stored, so a reader that
    /// observes the new epoch is guaranteed to observe the new value on
    /// its re-read.
    ///
    /// # Panics
    ///
    /// Panics if `writer` does not own the register.
    pub fn write(&self, row: ProcessId, col: ProcessId, writer: ProcessId, value: T) {
        self.matrix.get(row, col).write(writer, value);
        self.epochs.bump(row.index());
    }

    /// Current modification epoch of `row`.
    #[must_use]
    pub fn row_version(&self, row: ProcessId) -> u64 {
        self.epochs.load(row.index())
    }

    /// Matrix-global modification epoch: moves on every write (and poke)
    /// to any row. An unchanged value proves every row epoch is unchanged
    /// — the one-load validation behind O(1) quiescent scans.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.epochs.load_global()
    }

    /// Unattributed overwrite of `[row][col]` that still bumps the row
    /// epoch — the harness-side corruption hook. Poking through
    /// [`get`](Self::get) instead would leave caches epoch-clean and
    /// blind to the new value.
    pub fn poke(&self, row: ProcessId, col: ProcessId, value: T) {
        self.matrix.get(row, col).poke(value);
        self.epochs.bump(row.index());
    }

    /// Batch-reads the whole `row` into `out` on behalf of `reader`,
    /// returning the row epoch observed *before* the reads (so a write
    /// racing the snapshot leaves the caller's cached epoch stale and the
    /// next validation re-reads).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n`.
    pub fn snapshot_row_into(&self, row: ProcessId, reader: ProcessId, out: &mut [T]) -> u64 {
        let version = self.row_version(row);
        self.matrix.read_row_into(row, reader, out);
        self.counters.note_snapshot();
        version
    }

    /// Records that a clean row was skipped (crediting one row's worth of
    /// shared reads to the savings counters).
    pub fn note_row_skipped(&self) {
        self.note_rows_skipped(1);
    }

    /// Records `rows` clean rows skipped in one batch — one pair of counter
    /// updates however many rows a scan found clean. Equivalent to calling
    /// [`note_row_skipped`](Self::note_row_skipped) `rows` times.
    pub fn note_rows_skipped(&self, rows: u64) {
        self.counters.note_skipped(rows, rows * self.n() as u64);
    }

    /// The space-wide scan counters this matrix reports into.
    #[must_use]
    pub fn counters(&self) -> &Arc<ScanCounters> {
        &self.counters
    }

    /// The epoch table, for the space's partition hooks (install/heal
    /// invalidate every epoch-validated cache via
    /// [`Epochs::bump_all`]).
    pub(crate) fn epochs(&self) -> &Arc<Epochs> {
        &self.epochs
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for EpochedMatrix<T, C> {
    fn clone(&self) -> Self {
        EpochedMatrix {
            matrix: self.matrix.clone(),
            epochs: Arc::clone(&self.epochs),
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for EpochedMatrix<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Epoched{:?}", self.matrix)
    }
}

/// An nWnR register array with per-slot modification epochs — the
/// [`EpochedMatrix`] treatment for the §3.5(a) collapsed suspicion
/// counters.
pub struct EpochedArray<T: RegisterValue, C: SharedCell<T>> {
    array: MwmrArray<T, C>,
    epochs: Arc<Epochs>,
    counters: Arc<ScanCounters>,
}

impl<T: RegisterValue, C: SharedCell<T>> EpochedArray<T, C> {
    pub(crate) fn new(array: MwmrArray<T, C>, counters: Arc<ScanCounters>) -> Self {
        let len = array.len();
        EpochedArray {
            array,
            epochs: Arc::new(Epochs::new(len)),
            counters,
        }
    }

    /// The wrapped array (plain register access).
    #[must_use]
    pub fn array(&self) -> &MwmrArray<T, C> {
        &self.array
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the array has zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// The register at `index` (passthrough).
    #[must_use]
    pub fn get(&self, index: usize) -> &crate::MwmrRegister<T, C> {
        self.array.get(index)
    }

    /// Writes slot `index` on behalf of `writer` and bumps the slot epoch.
    pub fn write(&self, index: usize, writer: ProcessId, value: T) {
        self.array.get(index).write(writer, value);
        self.epochs.bump(index);
    }

    /// Current modification epoch of slot `index`.
    #[must_use]
    pub fn slot_version(&self, index: usize) -> u64 {
        self.epochs.load(index)
    }

    /// Array-global modification epoch (see [`EpochedMatrix::version`]).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.epochs.load_global()
    }

    /// Unattributed overwrite of slot `index` that still bumps the slot
    /// epoch (see [`EpochedMatrix::poke`]).
    pub fn poke(&self, index: usize, value: T) {
        self.array.get(index).poke(value);
        self.epochs.bump(index);
    }

    /// Reads slot `index` on behalf of `reader`, returning the slot epoch
    /// observed before the read alongside the value.
    pub fn read_versioned(&self, index: usize, reader: ProcessId) -> (u64, T) {
        let version = self.slot_version(index);
        (version, self.array.get(index).read(reader))
    }

    /// Records `slots` clean slots skipped (one shared read avoided each).
    pub fn note_slots_skipped(&self, slots: u64) {
        self.counters.note_skipped(slots, slots);
    }

    /// The space-wide scan counters this array reports into.
    #[must_use]
    pub fn counters(&self) -> &Arc<ScanCounters> {
        &self.counters
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for EpochedArray<T, C> {
    fn clone(&self) -> Self {
        EpochedArray {
            array: self.array.clone(),
            epochs: Arc::clone(&self.epochs),
            counters: Arc::clone(&self.counters),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for EpochedArray<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Epoched{:?}", self.array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn matrix_write_bumps_only_its_row() {
        let s = MemorySpace::new(3);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        assert_eq!(m.row_version(p(0)), 0);
        m.write(p(1), p(2), p(1), 5);
        assert_eq!(m.row_version(p(0)), 0);
        assert_eq!(m.row_version(p(1)), 1);
        assert_eq!(m.get(p(1), p(2)).peek(), 5);
        assert_eq!(m.n(), 3);
    }

    #[test]
    fn snapshot_reads_whole_row_attributed() {
        let s = MemorySpace::new(3);
        let m = s.epoched_nat_row_matrix("S", |r, c| (10 * r + c) as u64);
        let mut buf = vec![0; 3];
        let v = m.snapshot_row_into(p(1), p(2), &mut buf);
        assert_eq!(buf, vec![10, 11, 12]);
        assert_eq!(v, 0);
        let stats = s.stats();
        assert_eq!(stats.reads_of(p(2)), 3, "snapshot reads are attributed");
        assert_eq!(stats.scan().snapshot_batches, 1);
    }

    #[test]
    #[should_panic(expected = "full row")]
    fn snapshot_rejects_short_buffer() {
        let s = MemorySpace::new(3);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        let mut buf = vec![0; 2];
        let _ = m.snapshot_row_into(p(0), p(1), &mut buf);
    }

    #[test]
    #[should_panic(expected = "attempted to write")]
    fn matrix_write_still_enforces_ownership() {
        let s = MemorySpace::new(2);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        m.write(p(0), p(1), p(1), 3);
    }

    #[test]
    fn skip_accounting_reaches_space_stats() {
        let s = MemorySpace::new(4);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        m.note_row_skipped();
        m.note_row_skipped();
        m.counters().note_shard_pass();
        let scan = s.stats().scan();
        assert_eq!(scan.rows_skipped, 2);
        assert_eq!(scan.reads_skipped, 8);
        assert_eq!(scan.shard_passes, 1);
    }

    #[test]
    fn array_slot_versions_and_reads() {
        let s = MemorySpace::new(2);
        let a = s.epoched_nat_mwmr_array("S", 3, |i| i as u64);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let (v, val) = a.read_versioned(2, p(0));
        assert_eq!((v, val), (0, 2));
        a.write(2, p(1), 9);
        assert_eq!(a.slot_version(2), 1);
        assert_eq!(a.slot_version(0), 0);
        let (v, val) = a.read_versioned(2, p(0));
        assert_eq!((v, val), (1, 9));
        a.note_slots_skipped(5);
        assert_eq!(s.stats().scan().reads_skipped, 5);
    }

    #[test]
    fn global_version_moves_with_every_write_and_poke() {
        let s = MemorySpace::new(3);
        let m = s.epoched_nat_row_matrix("S", |_, _| 0);
        let v0 = m.version();
        m.write(p(0), p(1), p(0), 1);
        let v1 = m.version();
        assert_ne!(v0, v1);
        m.poke(p(2), p(0), 9);
        assert_ne!(m.version(), v1);

        let a = s.epoched_nat_mwmr_array("C", 3, |_| 0);
        let v0 = a.version();
        a.write(1, p(0), 5);
        assert_ne!(a.version(), v0);
        let v1 = a.version();
        a.poke(2, 7);
        assert_ne!(a.version(), v1);
    }

    #[test]
    fn clones_share_epochs() {
        let s = MemorySpace::new(2);
        let a = s.epoched_nat_row_matrix("S", |_, _| 0);
        let b = a.clone();
        a.write(p(0), p(1), p(0), 1);
        assert_eq!(b.row_version(p(0)), 1);
        assert!(format!("{b:?}").contains("Epoched"));
    }

    #[test]
    fn scan_stats_delta() {
        let a = ScanStats {
            reads_skipped: 10,
            rows_skipped: 2,
            snapshot_batches: 3,
            shard_passes: 4,
        };
        let b = ScanStats {
            reads_skipped: 4,
            rows_skipped: 1,
            snapshot_batches: 1,
            shard_passes: 1,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.reads_skipped, 6);
        assert_eq!(d.rows_skipped, 1);
        assert_eq!(d.snapshot_batches, 2);
        assert_eq!(d.shard_passes, 3);
    }
}
