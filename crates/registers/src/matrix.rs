//! The `SUSPICIONS`-style register matrix: row `i` owned by process `p_i`.

use std::fmt;

use crate::cell::{LockCell, SharedCell};
use crate::swmr::SwmrRegister;
use crate::value::RegisterValue;
use crate::ProcessId;

/// An `n × n` matrix of 1WnR registers where row `i` is owned by `p_i`.
///
/// This is the layout of the paper's `SUSPICIONS[1..n][1..n]` (Figure 2) and
/// of the boolean handshake matrices `PROGRESS[1..n][1..n]` / `LAST[1..n][1..n]`
/// of Figure 5 — with the twist that in Figure 5 `LAST[k][i]` is owned by the
/// *column* process `p_i`; the owning axis ([`OwnerAxis`]) is selected by the
/// [`MemorySpace`](crate::MemorySpace) constructor used (`row_matrix` vs.
/// `column_matrix`).
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// // SUSPICIONS[i][k]: row-owned — p_i writes SUSPICIONS[i][*].
/// let susp = space.row_matrix::<u64>("SUSPICIONS", |_, _| 0);
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// susp.get(p0, p1).write(p0, 3);
/// assert_eq!(susp.get(p0, p1).read(p1), 3);
/// ```
pub struct OwnedMatrix<T: RegisterValue, C: SharedCell<T> = LockCell<T>> {
    /// `regs[row][col]`.
    regs: Vec<Vec<SwmrRegister<T, C>>>,
}

/// Which index of a matrix entry `M[r][c]` names the owning process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerAxis {
    /// `M[r][c]` is owned by `p_r` — the `SUSPICIONS` layout.
    Row,
    /// `M[r][c]` is owned by `p_c` — the `LAST` handshake layout of Figure 5,
    /// where `LAST[k][i]` is written by the *reader* `p_i`.
    Column,
}

impl<T: RegisterValue, C: SharedCell<T>> OwnedMatrix<T, C> {
    pub(crate) fn from_regs(regs: Vec<Vec<SwmrRegister<T, C>>>) -> Self {
        OwnedMatrix { regs }
    }

    /// The register at `[row][col]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, row: ProcessId, col: ProcessId) -> &SwmrRegister<T, C> {
        &self.regs[row.index()][col.index()]
    }

    /// Matrix dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.regs.len()
    }

    /// Iterates over `(row, col, register)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessId, &SwmrRegister<T, C>)> {
        self.regs.iter().enumerate().flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .map(move |(c, reg)| (ProcessId::new(r), ProcessId::new(c), reg))
        })
    }

    /// Iterates over the registers of one row.
    pub fn row(&self, row: ProcessId) -> impl Iterator<Item = (ProcessId, &SwmrRegister<T, C>)> {
        self.regs[row.index()]
            .iter()
            .enumerate()
            .map(|(c, reg)| (ProcessId::new(c), reg))
    }

    /// Iterates over the registers of one column.
    pub fn column(&self, col: ProcessId) -> impl Iterator<Item = (ProcessId, &SwmrRegister<T, C>)> {
        self.regs
            .iter()
            .enumerate()
            .map(move |(r, row)| (ProcessId::new(r), &row[col.index()]))
    }

    /// Batch-reads the whole `row` into `out` on behalf of `reader` — one
    /// attributed read per column.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n()` or `row` is out of range.
    pub fn read_row_into(&self, row: ProcessId, reader: ProcessId, out: &mut [T]) {
        assert_eq!(out.len(), self.n(), "snapshot buffer must hold a full row");
        for (slot, reg) in out.iter_mut().zip(&self.regs[row.index()]) {
            *slot = reg.read(reader);
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for OwnedMatrix<T, C> {
    fn clone(&self) -> Self {
        OwnedMatrix {
            regs: self.regs.clone(),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for OwnedMatrix<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OwnedMatrix(n={})", self.n())?;
        for (r, row) in self.regs.iter().enumerate() {
            write!(f, "  row {r}: [")?;
            for reg in row {
                write!(f, " {:?}", reg.peek())?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    #[test]
    fn row_matrix_ownership() {
        let s = MemorySpace::new(3);
        let m = s.row_matrix::<u64>("SUSPICIONS", |r, c| (r + c) as u64);
        assert_eq!(m.n(), 3);
        for (r, c, reg) in m.iter() {
            assert_eq!(reg.owner(), r);
            assert_eq!(reg.peek(), (r.index() + c.index()) as u64);
            assert_eq!(
                reg.name(),
                format!("SUSPICIONS[{}][{}]", r.index(), c.index())
            );
        }
    }

    #[test]
    fn column_matrix_ownership() {
        let s = MemorySpace::new(3);
        let m = s.column_matrix::<bool>("LAST", |_, _| false);
        for (r, c, reg) in m.iter() {
            assert_eq!(
                reg.owner(),
                c,
                "LAST[{r}][{c}] must be owned by the column process"
            );
        }
    }

    #[test]
    #[should_panic(expected = "attempted to write")]
    fn row_matrix_rejects_cross_row_write() {
        let s = MemorySpace::new(2);
        let m = s.row_matrix::<u64>("S", |_, _| 0);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        m.get(p1, p0).write(p0, 1);
    }

    #[test]
    fn row_and_column_iterators() {
        let s = MemorySpace::new(3);
        let m = s.row_matrix::<u64>("S", |r, c| (10 * r + c) as u64);
        let p1 = ProcessId::new(1);
        let row: Vec<u64> = m.row(p1).map(|(_, r)| r.peek()).collect();
        assert_eq!(row, vec![10, 11, 12]);
        let col: Vec<u64> = m.column(p1).map(|(_, r)| r.peek()).collect();
        assert_eq!(col, vec![1, 11, 21]);
    }

    #[test]
    fn matrix_clone_shares_cells() {
        let s = MemorySpace::new(2);
        let a = s.row_matrix::<u64>("S", |_, _| 0);
        let b = a.clone();
        let p0 = ProcessId::new(0);
        a.get(p0, ProcessId::new(1)).write(p0, 5);
        assert_eq!(b.get(p0, ProcessId::new(1)).peek(), 5);
    }

    #[test]
    fn debug_renders_rows() {
        let s = MemorySpace::new(2);
        let m = s.row_matrix::<u64>("S", |_, _| 7);
        let out = format!("{m:?}");
        assert!(out.contains("n=2"));
        assert!(out.contains('7'));
    }
}
