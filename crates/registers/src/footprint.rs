//! Bit-footprint reporting: which registers stay bounded.
//!
//! Theorem 2 of the paper states that with Algorithm 1 every shared variable
//! except `PROGRESS[ℓ]` has a bounded domain; Theorem 6 states that with
//! Algorithm 2 *every* shared variable is bounded. A [`FootprintReport`]
//! exposes, for every register, the footprint of its current value and the
//! high-water mark over the whole run, so an experiment can compare reports
//! taken at increasing horizons and check which registers plateau.

use std::fmt;
use std::sync::Arc;

use crate::ProcessId;

/// Footprint of a single register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintRow {
    /// Register name (interned; shared with the register itself), e.g.
    /// `PROGRESS\[3\]`.
    pub name: Arc<str>,
    /// Owner for 1WnR registers, `None` for nWnR registers.
    pub owner: Option<ProcessId>,
    /// Largest footprint (in bits) any stored value has had.
    pub hwm_bits: u64,
    /// Footprint of the value stored right now.
    pub current_bits: u64,
}

/// Snapshot of every register's bit footprint.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(1);
/// let p0 = ProcessId::new(0);
/// let reg = space.nat_register("PROGRESS[0]", p0, 0);
/// reg.write(p0, 1000);
///
/// let report = space.footprint();
/// assert_eq!(report.total_hwm_bits(), 10);
/// assert_eq!(report.max_hwm_bits_where(|name| name.starts_with("PROGRESS")), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintReport {
    rows: Vec<FootprintRow>,
}

impl FootprintReport {
    pub(crate) fn new(rows: Vec<FootprintRow>) -> Self {
        FootprintReport { rows }
    }

    /// Per-register rows in register-creation order.
    #[must_use]
    pub fn rows(&self) -> &[FootprintRow] {
        &self.rows
    }

    /// Sum of all high-water marks: an upper bound on the shared-memory bits
    /// the run has ever needed.
    #[must_use]
    pub fn total_hwm_bits(&self) -> u64 {
        self.rows.iter().map(|r| r.hwm_bits).sum()
    }

    /// Sum of all current footprints.
    #[must_use]
    pub fn total_current_bits(&self) -> u64 {
        self.rows.iter().map(|r| r.current_bits).sum()
    }

    /// Largest high-water mark among registers whose name satisfies `pred`.
    ///
    /// Returns 0 if no register matches.
    #[must_use]
    pub fn max_hwm_bits_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.rows
            .iter()
            .filter(|r| pred(&r.name))
            .map(|r| r.hwm_bits)
            .max()
            .unwrap_or(0)
    }

    /// Sum of high-water marks among registers whose name satisfies `pred`.
    #[must_use]
    pub fn hwm_bits_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.rows
            .iter()
            .filter(|r| pred(&r.name))
            .map(|r| r.hwm_bits)
            .sum()
    }

    /// The row for a register by exact name, if present.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&FootprintRow> {
        self.rows.iter().find(|r| &*r.name == name)
    }

    /// Registers whose high-water mark grew between `earlier` and `self`.
    ///
    /// This is the primitive behind the boundedness experiments: registers
    /// that keep appearing in successive `grown_since` reports as the
    /// horizon doubles are the unbounded ones. With Algorithm 1 exactly
    /// the leader's `PROGRESS` entry should keep growing; with Algorithm 2
    /// the result should eventually be empty.
    #[must_use]
    pub fn grown_since(&self, earlier: &FootprintReport) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|row| {
                earlier
                    .row(&row.name)
                    .is_none_or(|prev| row.hwm_bits > prev.hwm_bits)
            })
            .map(|row| &*row.name)
            .collect()
    }
}

impl fmt::Display for FootprintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>9} {:>12}",
            "register", "hwm bits", "current bits"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<24} {:>9} {:>12}",
                row.name, row.hwm_bits, row.current_bits
            )?;
        }
        writeln!(f, "total hwm: {} bits", self.total_hwm_bits())
    }
}

#[cfg(test)]
mod tests {

    use crate::{MemorySpace, ProcessId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn totals_sum_rows() {
        let s = MemorySpace::new(2);
        let a = s.nat_register("A", p(0), 0);
        let b = s.flag_register("B", p(1), false);
        a.write(p(0), 255);
        b.write(p(1), true);
        let fp = s.footprint();
        assert_eq!(fp.total_hwm_bits(), 8 + 1);
        assert_eq!(fp.total_current_bits(), 8 + 1);
        assert_eq!(fp.rows().len(), 2);
    }

    #[test]
    fn hwm_survives_shrinking_values() {
        let s = MemorySpace::new(1);
        let a = s.nat_register("A", p(0), 0);
        a.write(p(0), u64::MAX);
        a.write(p(0), 1);
        let fp = s.footprint();
        assert_eq!(fp.row("A").unwrap().hwm_bits, 64);
        assert_eq!(fp.row("A").unwrap().current_bits, 1);
    }

    #[test]
    fn predicate_queries() {
        let s = MemorySpace::new(2);
        let progress = s.nat_array("PROGRESS", |_| 0);
        let _susp = s.nat_row_matrix("SUSPICIONS", |_, _| 0);
        progress.get(p(1)).write(p(1), 1 << 30);
        let fp = s.footprint();
        assert_eq!(fp.max_hwm_bits_where(|n| n.starts_with("PROGRESS")), 31);
        assert_eq!(fp.max_hwm_bits_where(|n| n.starts_with("SUSPICIONS")), 1);
        assert_eq!(fp.max_hwm_bits_where(|n| n.starts_with("NOPE")), 0);
        assert!(fp.hwm_bits_where(|n| n.starts_with("PROGRESS")) >= 31);
    }

    #[test]
    fn grown_since_identifies_unbounded_registers() {
        let s = MemorySpace::new(2);
        let progress = s.nat_array("PROGRESS", |_| 0);
        let stop = s.flag_array("STOP", |_| true);
        progress.get(p(0)).write(p(0), 10);
        stop.get(p(0)).write(p(0), false);
        let early = s.footprint();
        // Only PROGRESS[0] keeps growing.
        progress.get(p(0)).write(p(0), 1 << 40);
        stop.get(p(0)).write(p(0), true);
        let late = s.footprint();
        assert_eq!(late.grown_since(&early), vec!["PROGRESS[0]"]);
        assert!(late.grown_since(&late).is_empty());
    }

    #[test]
    fn display_renders_table() {
        let s = MemorySpace::new(1);
        let _ = s.nat_register("A", p(0), 7);
        let out = s.footprint().to_string();
        assert!(out.contains("A"));
        assert!(out.contains("total hwm"));
    }
}
