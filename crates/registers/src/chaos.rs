//! The partition visibility mask behind register-space chaos campaigns.
//!
//! A *partition* severs the read visibility between groups of processes:
//! while it is installed, a read of a register **owned** by a process in a
//! different group returns the value frozen at the cut instead of the live
//! one — exactly what a process on the far side of a split storage fabric
//! would observe. Writes are untouched (an owner always reaches its own
//! row), ownerless nWnR registers are untouched (they model a medium both
//! sides still reach), and the access counters are untouched (a partitioned
//! read is still a read), so non-chaos accounting is byte-identical with
//! and without the mask compiled in the hot path.
//!
//! The mask itself is one relaxed atomic load per read while inactive; the
//! group table is only consulted mid-partition.
//!
//! Beyond symmetric splits, the mask also supports a **directed cut**: a
//! *blinded* side reads the *hidden* side frozen while the hidden side
//! still reads the blinded side live. Directed cuts model asymmetric
//! fabric failures (one switch drops inbound traffic only) and are the
//! substrate for the López–Rajsbaum–Raynal weak-connectivity scenarios:
//! election must survive exactly when a strongly-connected timely core
//! remains visible to everyone.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::sync::RwLock;
use crate::ProcessId;

/// Group index of the blinded side of a directed cut (its reads of the
/// hidden side are severed).
pub(crate) const CUT_BLINDED: i32 = 0;
/// Group index of the hidden side of a directed cut (it reads everyone
/// live, but the blinded side reads it frozen).
pub(crate) const CUT_HIDDEN: i32 = 1;

/// Space-wide partition state shared by every register of a
/// [`MemorySpace`](crate::MemorySpace).
pub(crate) struct PartitionMask {
    active: AtomicBool,
    /// When set, the mask is directed: only reads by group
    /// [`CUT_BLINDED`] of registers owned by group [`CUT_HIDDEN`] are
    /// severed; every other pairing stays live.
    directed: AtomicBool,
    /// Group index per process id; `-1` marks a process outside every
    /// group (it sees, and is seen by, everyone — e.g. a harness-side
    /// actor beyond the election's `n`).
    group_of: RwLock<Vec<i32>>,
}

impl PartitionMask {
    pub(crate) fn new() -> Self {
        PartitionMask {
            active: AtomicBool::new(false),
            directed: AtomicBool::new(false),
            group_of: RwLock::new(Vec::new()),
        }
    }

    /// Whether `reader`'s view of a register owned by `owner` is severed
    /// by the installed partition.
    #[inline]
    pub(crate) fn severed(&self, reader: ProcessId, owner: ProcessId) -> bool {
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        let groups = self.group_of.read();
        let group = |p: ProcessId| groups.get(p.index()).copied().unwrap_or(-1);
        let (gr, gw) = (group(reader), group(owner));
        if self.directed.load(Ordering::Acquire) {
            gr == CUT_BLINDED && gw == CUT_HIDDEN
        } else {
            gr >= 0 && gw >= 0 && gr != gw
        }
    }

    /// Activates the mask with the given per-process group table.
    pub(crate) fn install(&self, group_of: Vec<i32>) {
        self.directed.store(false, Ordering::Release);
        *self.group_of.write() = group_of;
        self.active.store(true, Ordering::Release);
    }

    /// Activates the mask as a directed cut: the table must map the
    /// blinded side to [`CUT_BLINDED`] and the hidden side to
    /// [`CUT_HIDDEN`]; everyone else (`-1`) stays fully connected.
    pub(crate) fn install_directed(&self, group_of: Vec<i32>) {
        self.directed.store(true, Ordering::Release);
        *self.group_of.write() = group_of;
        self.active.store(true, Ordering::Release);
    }

    /// Deactivates the mask: every read sees live values again.
    pub(crate) fn heal(&self) {
        self.active.store(false, Ordering::Release);
        self.directed.store(false, Ordering::Release);
    }

    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn inactive_mask_severs_nothing() {
        let mask = PartitionMask::new();
        assert!(!mask.severed(p(0), p(1)));
        assert!(!mask.is_active());
    }

    #[test]
    fn severs_across_groups_only() {
        let mask = PartitionMask::new();
        mask.install(vec![0, 0, 1, 1, -1]);
        assert!(mask.is_active());
        assert!(mask.severed(p(0), p(2)), "across the cut");
        assert!(mask.severed(p(3), p(1)), "both directions");
        assert!(!mask.severed(p(0), p(1)), "same side");
        assert!(!mask.severed(p(2), p(3)), "same side");
        // Unlisted processes (group -1) see and are seen by everyone.
        assert!(!mask.severed(p(4), p(0)));
        assert!(!mask.severed(p(0), p(4)));
        // Out-of-table processes are unlisted too.
        assert!(!mask.severed(p(9), p(0)));
        mask.heal();
        assert!(!mask.severed(p(0), p(2)), "healed");
    }

    #[test]
    fn directed_cut_severs_one_direction_only() {
        let mask = PartitionMask::new();
        // Blinded {0, 1} read hidden {2, 3} frozen; everyone else live.
        mask.install_directed(vec![CUT_BLINDED, CUT_BLINDED, CUT_HIDDEN, CUT_HIDDEN, -1]);
        assert!(mask.is_active());
        assert!(mask.severed(p(0), p(2)), "blinded reading hidden");
        assert!(mask.severed(p(1), p(3)), "blinded reading hidden");
        assert!(!mask.severed(p(2), p(0)), "hidden reads blinded live");
        assert!(!mask.severed(p(3), p(1)), "hidden reads blinded live");
        assert!(!mask.severed(p(0), p(1)), "within the blinded side");
        assert!(!mask.severed(p(2), p(3)), "within the hidden side");
        assert!(!mask.severed(p(4), p(2)), "ungrouped sees everyone");
        assert!(!mask.severed(p(0), p(4)), "ungrouped is seen by everyone");
        mask.heal();
        assert!(!mask.severed(p(0), p(2)), "healed");
    }

    #[test]
    fn symmetric_install_clears_directedness() {
        let mask = PartitionMask::new();
        mask.install_directed(vec![CUT_BLINDED, CUT_HIDDEN]);
        assert!(mask.severed(p(0), p(1)));
        assert!(!mask.severed(p(1), p(0)));
        // Re-installing symmetrically must drop the directed flag.
        mask.install(vec![0, 1]);
        assert!(mask.severed(p(0), p(1)));
        assert!(mask.severed(p(1), p(0)), "symmetric again");
    }
}
