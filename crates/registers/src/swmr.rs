//! One-writer/multi-reader and multi-writer/multi-reader atomic registers.

use std::fmt;
use std::sync::Arc;

use crate::block::BlockDevice;
use crate::cell::{LockCell, SharedCell};
use crate::chaos::PartitionMask;
use crate::error::OwnershipError;
use crate::meta::{Counters, RegisterId, RegisterMeta};
use crate::value::RegisterValue;
use crate::ProcessId;

/// Where a disk-backed register lives: which device, which block.
pub(crate) struct BlockSlot {
    pub(crate) device: Arc<dyn BlockDevice>,
    pub(crate) addr: u64,
}

/// Shared core of a register handle: cell + metadata + counters.
///
/// The name is interned (`Arc<str>`) so statistics and footprint snapshots
/// share it instead of cloning a `String` per register per checkpoint.
///
/// When `block` is bound (disk-backed spaces) the device serves the
/// authoritative value and the local cell is unused; everything else —
/// ownership, attribution, footprint accounting — is identical, which is
/// what makes SAN outcomes directly comparable to in-memory ones.
pub(crate) struct RegCore<T, C> {
    cell: C,
    block: Option<BlockSlot>,
    /// Snapshot served to severed readers while a partition is installed;
    /// refreshed by [`RegisterMeta::freeze`] at each cut. A second typed
    /// cell (not encoded bits) because not every `T` is block-encodable.
    frozen: C,
    mask: Arc<PartitionMask>,
    name: Arc<str>,
    id: RegisterId,
    owner: Option<ProcessId>,
    counters: Counters,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: RegisterValue, C: SharedCell<T>> RegCore<T, C> {
    // One argument per construction-time fact; only `MemorySpace::build`
    // calls this, so a builder would be ceremony without a second caller.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        id: RegisterId,
        owner: Option<ProcessId>,
        n_processes: usize,
        mode: crate::Instrumentation,
        initial: T,
        block: Option<BlockSlot>,
        mask: Arc<PartitionMask>,
    ) -> Arc<Self> {
        let counters = Counters::new(n_processes, mode);
        counters.note_initial(initial.footprint_bits());
        if let Some(slot) = &block {
            // Fresh blocks read as zero; only a non-zero initial value needs
            // seeding, and seeding is harness-side (no latency, no counts).
            let encoded = initial.to_block();
            if encoded != 0 {
                slot.device.poke_block(slot.addr, encoded);
            }
        }
        Arc::new(RegCore {
            cell: C::with_value(initial.clone()),
            block,
            frozen: C::with_value(initial),
            mask,
            name: name.into(),
            id,
            owner,
            counters,
            _marker: std::marker::PhantomData,
        })
    }

    fn read(&self, reader: ProcessId) -> T {
        self.counters.note_read(reader);
        // A severed read still counts (the process performed it) but sees
        // the owner's row as it was at the cut, not the live value.
        if let Some(owner) = self.owner {
            if owner != reader && self.mask.severed(reader, owner) {
                return self.frozen.load();
            }
        }
        match &self.block {
            Some(slot) => T::from_block(slot.device.read_block(slot.addr)),
            None => self.cell.load(),
        }
    }

    fn write_unchecked(&self, writer: ProcessId, value: T) {
        let bits = value.footprint_bits();
        match &self.block {
            Some(slot) => slot.device.write_block(slot.addr, value.to_block()),
            None => self.cell.store(value),
        }
        self.counters.note_write(writer, bits);
    }

    fn peek(&self) -> T {
        match &self.block {
            Some(slot) => T::from_block(slot.device.peek_block(slot.addr)),
            None => self.cell.load(),
        }
    }

    /// Replaces the stored value without attributing the write to any
    /// process or updating high-water marks. Used by test harnesses to model
    /// arbitrary initial register contents (the paper's footnote 7).
    fn poke(&self, value: T) {
        match &self.block {
            Some(slot) => slot.device.poke_block(slot.addr, value.to_block()),
            None => self.cell.store(value),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> RegisterMeta for RegCore<T, C> {
    fn name(&self) -> &Arc<str> {
        &self.name
    }

    fn owner(&self) -> Option<ProcessId> {
        self.owner
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn current_bits(&self) -> u64 {
        self.peek().footprint_bits()
    }

    fn freeze(&self) {
        self.frozen.store(self.peek());
    }
}

/// A one-writer/multi-reader (1WnR) atomic register.
///
/// This is the communication primitive of the paper's model `AS_n[∅]`: a
/// single *owner* process may write it, every process may read it, and each
/// operation is linearizable. Handles are cheap to clone and share the same
/// underlying cell.
///
/// Reads and writes are *attributed*: callers pass the identity of the
/// acting process, which feeds the instrumentation used to verify the
/// paper's write-optimality and read-necessity results.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(3);
/// let owner = ProcessId::new(1);
/// let reg = space.swmr::<u64>("PROGRESS[1]", owner, 0);
/// reg.write(owner, 42);
/// assert_eq!(reg.read(ProcessId::new(0)), 42);
/// ```
pub struct SwmrRegister<T: RegisterValue, C: SharedCell<T> = LockCell<T>> {
    core: Arc<RegCore<T, C>>,
}

impl<T: RegisterValue, C: SharedCell<T>> SwmrRegister<T, C> {
    pub(crate) fn from_core(core: Arc<RegCore<T, C>>) -> Self {
        debug_assert!(core.owner.is_some(), "SWMR register requires an owner");
        SwmrRegister { core }
    }

    /// The only process allowed to write this register.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.core.owner.expect("SWMR register always has an owner")
    }

    /// Name of the register within its memory space (e.g. `STOP\[2\]`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Identity of the register within its memory space.
    #[must_use]
    pub fn id(&self) -> RegisterId {
        self.core.id
    }

    /// Atomically reads the register on behalf of `reader`.
    pub fn read(&self, reader: ProcessId) -> T {
        self.core.read(reader)
    }

    /// Atomically writes `value` on behalf of `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the owner — writing someone else's 1WnR
    /// register is a model violation and therefore a programming error.
    pub fn write(&self, writer: ProcessId, value: T) {
        if let Err(e) = self.try_write(writer, value) {
            panic!("{e}");
        }
    }

    /// Atomically writes `value` on behalf of `writer`, reporting ownership
    /// violations instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`OwnershipError`] if `writer` does not own the register; the
    /// register is left unchanged.
    pub fn try_write(&self, writer: ProcessId, value: T) -> Result<(), OwnershipError> {
        let owner = self.owner();
        if writer != owner {
            return Err(OwnershipError::new(
                self.core.name.to_string(),
                owner,
                writer,
            ));
        }
        self.core.write_unchecked(writer, value);
        Ok(())
    }

    /// Reads the register without attributing the access to any process.
    ///
    /// Harness- and metrics-side inspection must use `peek` so that it does
    /// not pollute the per-process read counters that experiments E4/E10
    /// rely on.
    #[must_use]
    pub fn peek(&self) -> T {
        self.core.peek()
    }

    /// Overwrites the register without attribution or footprint tracking.
    ///
    /// Models the paper's "initial values can be arbitrary" footnote: test
    /// harnesses use this to corrupt state before a run to exercise
    /// self-stabilization. Not for algorithm use.
    pub fn poke(&self, value: T) {
        self.core.poke(value);
    }

    pub(crate) fn meta(&self) -> Arc<dyn RegisterMeta> {
        Arc::clone(&self.core) as Arc<dyn RegisterMeta>
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for SwmrRegister<T, C> {
    fn clone(&self) -> Self {
        SwmrRegister {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for SwmrRegister<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwmrRegister")
            .field("name", &self.core.name)
            .field("owner", &self.core.owner)
            .field("value", &self.core.peek())
            .finish()
    }
}

/// A multi-writer/multi-reader (nWnR) atomic register.
///
/// Section 3.5 of the paper notes that with nWnR registers each
/// `SUSPICIONS[·][k]` column collapses into a single register. This type
/// supports that variant; writes are attributed but unrestricted.
///
/// # Examples
///
/// ```
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let reg = space.mwmr::<u64>("SUSPICIONS[0]", 0);
/// reg.write(ProcessId::new(0), 1);
/// reg.write(ProcessId::new(1), 2);
/// assert_eq!(reg.read(ProcessId::new(0)), 2);
/// ```
pub struct MwmrRegister<T: RegisterValue, C: SharedCell<T> = LockCell<T>> {
    core: Arc<RegCore<T, C>>,
}

impl<T: RegisterValue, C: SharedCell<T>> MwmrRegister<T, C> {
    pub(crate) fn from_core(core: Arc<RegCore<T, C>>) -> Self {
        MwmrRegister { core }
    }

    /// Name of the register within its memory space.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Identity of the register within its memory space.
    #[must_use]
    pub fn id(&self) -> RegisterId {
        self.core.id
    }

    /// Atomically reads the register on behalf of `reader`.
    pub fn read(&self, reader: ProcessId) -> T {
        self.core.read(reader)
    }

    /// Atomically writes `value` on behalf of `writer`.
    pub fn write(&self, writer: ProcessId, value: T) {
        self.core.write_unchecked(writer, value);
    }

    /// Unattributed read for harness-side inspection.
    #[must_use]
    pub fn peek(&self) -> T {
        self.core.peek()
    }

    /// Unattributed overwrite for state-corruption harnesses.
    pub fn poke(&self, value: T) {
        self.core.poke(value);
    }

    pub(crate) fn meta(&self) -> Arc<dyn RegisterMeta> {
        Arc::clone(&self.core) as Arc<dyn RegisterMeta>
    }
}

impl<T: RegisterValue, C: SharedCell<T>> Clone for MwmrRegister<T, C> {
    fn clone(&self) -> Self {
        MwmrRegister {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: RegisterValue, C: SharedCell<T>> fmt::Debug for MwmrRegister<T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwmrRegister")
            .field("name", &self.core.name)
            .field("value", &self.core.peek())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySpace;

    fn space() -> MemorySpace {
        MemorySpace::new(4)
    }

    #[test]
    fn swmr_read_your_write() {
        let s = space();
        let owner = ProcessId::new(2);
        let r = s.swmr::<u64>("X", owner, 5);
        assert_eq!(r.read(owner), 5);
        r.write(owner, 9);
        assert_eq!(r.read(ProcessId::new(0)), 9);
    }

    #[test]
    #[should_panic(expected = "attempted to write")]
    fn swmr_write_by_non_owner_panics() {
        let s = space();
        let r = s.swmr::<u64>("X", ProcessId::new(1), 0);
        r.write(ProcessId::new(0), 1);
    }

    #[test]
    fn swmr_try_write_reports_violation() {
        let s = space();
        let r = s.swmr::<bool>("STOP[1]", ProcessId::new(1), true);
        let err = r.try_write(ProcessId::new(3), false).unwrap_err();
        assert_eq!(err.owner(), ProcessId::new(1));
        assert_eq!(err.writer(), ProcessId::new(3));
        assert!(
            r.read(ProcessId::new(0)),
            "failed write must not change value"
        );
    }

    #[test]
    fn swmr_clone_shares_state() {
        let s = space();
        let owner = ProcessId::new(0);
        let a = s.swmr::<u64>("X", owner, 0);
        let b = a.clone();
        a.write(owner, 77);
        assert_eq!(b.read(owner), 77);
        assert_eq!(b.name(), "X");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn peek_and_poke_do_not_count() {
        let s = space();
        let owner = ProcessId::new(0);
        let r = s.swmr::<u64>("X", owner, 0);
        r.poke(123);
        assert_eq!(r.peek(), 123);
        let snap = s.stats();
        assert_eq!(snap.total_reads(), 0);
        assert_eq!(snap.total_writes(), 0);
    }

    #[test]
    fn mwmr_any_writer() {
        let s = space();
        let r = s.mwmr::<u64>("M", 0);
        for pid in ProcessId::all(4) {
            r.write(pid, pid.index() as u64);
        }
        assert_eq!(r.read(ProcessId::new(0)), 3);
        assert_eq!(r.name(), "M");
    }

    #[test]
    fn debug_output_shows_value() {
        let s = space();
        let r = s.swmr::<u64>("X", ProcessId::new(0), 3);
        let dbg = format!("{r:?}");
        assert!(dbg.contains("X") && dbg.contains('3'));
        let m = s.mwmr::<u64>("M", 1);
        assert!(format!("{m:?}").contains('1'));
    }

    #[test]
    fn attributed_accesses_show_up_in_stats() {
        let s = space();
        let owner = ProcessId::new(1);
        let r = s.swmr::<u64>("X", owner, 0);
        r.write(owner, 1);
        r.read(ProcessId::new(3));
        r.read(ProcessId::new(3));
        let snap = s.stats();
        assert_eq!(snap.writes_of(owner), 1);
        assert_eq!(snap.reads_of(ProcessId::new(3)), 2);
        assert!(snap.writer_set().contains(owner));
        assert_eq!(snap.writer_set().len(), 1);
    }
}
