//! Property-based safety tests: agreement and validity under arbitrary
//! schedules and arbitrary (even adversarial) Ω outputs.
//!
//! Consensus built on Ω is *indulgent*: the oracle can lie for arbitrarily
//! long — give different processes different leaders, name crashed
//! processes, flip every step — and agreement/validity must still never
//! break. These tests drive the proposer state machines through seeded
//! randomized schedules (64 cases each) where both the interleaving and
//! every process's leader view are adversarial.

use std::sync::Arc;

use omega_consensus::{ConsensusInstance, ConsensusProcess, LogHandle, LogShared, ProposerStatus};
use omega_registers::{MemorySpace, ProcessId};
use omega_sim::rng::SmallRng;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Single-shot consensus: any decided values agree and were proposed,
/// under arbitrary step schedules and leader views.
#[test]
fn agreement_and_validity_under_adversarial_omega() {
    let mut g = SmallRng::seed_from_u64(0xC0_0051);
    for case in 0..64 {
        let n = g.gen_range(2..=4) as usize;
        let schedule: Vec<(usize, usize)> = (0..g.gen_range(0..=599))
            .map(|_| (g.gen_range(0..=4) as usize, g.gen_range(0..=4) as usize))
            .collect();
        let space = MemorySpace::new(n);
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let mut procs: Vec<ConsensusProcess<u64>> = ProcessId::all(n)
            .map(|pid| ConsensusProcess::new(Arc::clone(&inst), pid, 1000 + pid.index() as u64))
            .collect();
        let proposals: Vec<u64> = (0..n).map(|i| 1000 + i as u64).collect();

        let mut decisions: Vec<Option<u64>> = vec![None; n];
        for (who, claimed_leader) in schedule {
            let who = who % n;
            // The adversarial oracle: an arbitrary identity, possibly wrong,
            // possibly different per step.
            let leader = p(claimed_leader % n);
            if let ProposerStatus::Decided(v) = procs[who].step(leader) {
                if let Some(prev) = decisions[who] {
                    assert_eq!(
                        prev, v,
                        "case {case}: a process may never change its decision"
                    );
                }
                decisions[who] = Some(v);
            }
        }

        let decided: Vec<u64> = decisions.iter().copied().flatten().collect();
        // Agreement: all decided values identical.
        assert!(
            decided.windows(2).all(|w| w[0] == w[1]),
            "case {case}: agreement violated: {decided:?}"
        );
        // Validity: the decided value was someone's proposal.
        for v in decided {
            assert!(
                proposals.contains(&v),
                "case {case}: decided unproposed value {v}"
            );
        }
    }
}

/// The replicated log: committed prefixes of any two replicas are
/// consistent (one is a prefix of the other), and every committed command
/// was submitted by someone, exactly once.
#[test]
fn log_prefix_consistency_under_adversarial_omega() {
    let mut g = SmallRng::seed_from_u64(0x10_6F1);
    for case in 0..64 {
        let n = g.gen_range(2..=3) as usize;
        let submissions: Vec<(usize, u64)> = (0..g.gen_range(1..=5))
            .map(|_| (g.gen_range(0..=3) as usize, g.gen_range(1..=999)))
            .collect();
        let schedule: Vec<(usize, usize)> = (0..g.gen_range(0..=799))
            .map(|_| (g.gen_range(0..=3) as usize, g.gen_range(0..=3) as usize))
            .collect();
        let space = MemorySpace::new(n);
        let shared = LogShared::<u64>::new(space);
        let mut handles: Vec<LogHandle<u64>> = ProcessId::all(n)
            .map(|pid| LogHandle::new(Arc::clone(&shared), pid))
            .collect();

        // Make submissions unique so "exactly once" is checkable: encode the
        // submitter in the low bits.
        let mut all_submitted = Vec::new();
        for (i, (who, value)) in submissions.iter().enumerate() {
            let who = who % n;
            let command = value * 100 + (i as u64) * 10 + who as u64;
            handles[who].submit(command);
            all_submitted.push(command);
        }

        for (who, claimed_leader) in schedule {
            let who = who % n;
            let leader = p(claimed_leader % n);
            handles[who].step(leader);
        }

        // Prefix consistency across replicas.
        for a in 0..n {
            for b in (a + 1)..n {
                let (short, long) = if handles[a].committed().len() <= handles[b].committed().len()
                {
                    (handles[a].committed(), handles[b].committed())
                } else {
                    (handles[b].committed(), handles[a].committed())
                };
                assert_eq!(
                    short,
                    &long[..short.len()],
                    "case {case}: replica logs diverged"
                );
            }
        }

        // Every committed command was submitted, and no duplicates.
        let longest = handles
            .iter()
            .max_by_key(|h| h.committed().len())
            .unwrap()
            .committed();
        let mut seen = std::collections::HashSet::new();
        for cmd in longest {
            assert!(
                all_submitted.contains(cmd),
                "case {case}: unsubmitted command committed"
            );
            assert!(
                seen.insert(*cmd),
                "case {case}: command {cmd} committed twice"
            );
        }
    }
}

/// Deterministic end-to-end: consensus over each Ω variant in simulation.
#[test]
fn consensus_decides_over_every_omega_variant() {
    use omega_consensus::ConsensusActor;
    use omega_core::OmegaVariant;
    use omega_sim::prelude::*;
    use omega_sim::Simulation;

    for variant in OmegaVariant::all() {
        let n = 4;
        let (space, omegas) = variant.build_processes(n);
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let actors: Vec<Box<dyn Actor>> = omegas
            .into_iter()
            .map(|omega| {
                let pid = omega.pid();
                let proposer =
                    ConsensusProcess::new(Arc::clone(&inst), pid, 500 + pid.index() as u64);
                Box::new(ConsensusActor::new(omega, proposer)) as Box<dyn Actor>
            })
            .collect();
        let min_delay = match variant {
            OmegaVariant::StepClock => 2,
            _ => 1,
        };
        let _report = Simulation::builder(actors)
            .adversary(AwbEnvelope::new(
                SeededRandom::new(17, min_delay, 6),
                p(0),
                SimTime::from_ticks(500),
                4,
            ))
            .horizon(40_000)
            .run();
        let decision = inst.peek_decision();
        assert!(
            decision.is_some(),
            "{variant}: consensus failed to decide once Ω stabilized"
        );
        let v = decision.unwrap();
        assert!((500..504).contains(&v), "{variant}: decided unproposed {v}");
    }
}

/// True parallelism: contending proposers on real threads, each initially
/// convinced it is the leader. Safety must hold under genuine hardware
/// interleavings; termination arrives once the "oracle" settles on p0.
#[test]
fn threaded_contention_agreement() {
    for round in 0..10u64 {
        let n = 4;
        let space = MemorySpace::new(n);
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let decisions: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let inst = Arc::clone(&inst);
                    s.spawn(move || {
                        let mut proc = ConsensusProcess::new(inst, p(i), round * 100 + i as u64);
                        // Contention phase: everyone thinks it leads.
                        if let Some(v) = proc.step_until_decided(p(i), 200) {
                            return v;
                        }
                        // Ω "stabilizes": p0 leads; all must now terminate.
                        proc.step_until_decided(p(0), 100_000)
                            .expect("decision after stabilization")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "round {round}: threads disagreed: {decisions:?}"
        );
        assert!(
            (round * 100..round * 100 + n as u64).contains(&decisions[0]),
            "round {round}: unproposed value {}",
            decisions[0]
        );
    }
}

/// Crash the first elected leader mid-run: consensus still decides.
#[test]
fn consensus_survives_leader_crash() {
    use omega_consensus::ConsensusActor;
    use omega_core::OmegaVariant;
    use omega_sim::crash::CrashPlan;
    use omega_sim::prelude::*;
    use omega_sim::Simulation;

    let n = 4;
    let (space, omegas) = OmegaVariant::Alg1.build_processes(n);
    let inst = ConsensusInstance::<u64>::new(&space, "C");
    let actors: Vec<Box<dyn Actor>> = omegas
        .into_iter()
        .map(|omega| {
            let pid = omega.pid();
            let proposer = ConsensusProcess::new(Arc::clone(&inst), pid, pid.index() as u64);
            Box::new(ConsensusActor::new(omega, proposer)) as Box<dyn Actor>
        })
        .collect();
    // Crash whoever leads very early — likely before or just as the
    // decision propagates; a quorum-free register consensus must still
    // converge for the survivors.
    let report = Simulation::builder(actors)
        .adversary(AwbEnvelope::new(
            SeededRandom::new(23, 1, 6),
            p(1),
            SimTime::from_ticks(2_000),
            4,
        ))
        .crash_plan(CrashPlan::none().with_leader_crash_at(SimTime::from_ticks(300)))
        .horizon(60_000)
        .sample_every(50)
        .run();
    assert_eq!(report.crashed.len(), 1);
    assert!(
        inst.peek_decision().is_some(),
        "survivors must still decide after the leader crash"
    );
}
