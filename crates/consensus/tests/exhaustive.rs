//! Exhaustive schedule exploration: bounded model checking of consensus
//! safety.
//!
//! [`ConsensusProcess::step`] performs at most one shared-register
//! operation, so a *schedule* — the sequence of which process steps next —
//! fully determines a run. For small systems and bounded depth we can
//! enumerate **every** schedule and check agreement/validity on each, which
//! is far stronger than sampling: if any interleaving of the first `d`
//! operations could violate safety, this finds it.
//!
//! All proposers run with `leader() = self` (maximal contention — the
//! adversarial Ω), then a deterministic tail with a single leader checks
//! that termination remains reachable from every explored prefix.

use std::sync::Arc;

use omega_consensus::{ConsensusInstance, ConsensusProcess, ProposerStatus};
use omega_registers::{MemorySpace, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Replays one schedule from scratch; returns decided values per process.
fn replay(n: usize, schedule: &[usize], settle_steps: usize) -> Vec<Option<u64>> {
    let space = MemorySpace::new(n);
    let inst = ConsensusInstance::<u64>::new(&space, "X");
    let mut procs: Vec<ConsensusProcess<u64>> = ProcessId::all(n)
        .map(|pid| ConsensusProcess::new(Arc::clone(&inst), pid, 10 + pid.index() as u64))
        .collect();
    let mut decided: Vec<Option<u64>> = vec![None; n];

    // The explored prefix: adversarial Ω (everyone is its own leader).
    for &who in schedule {
        if decided[who].is_none() {
            if let ProposerStatus::Decided(v) = procs[who].step(p(who)) {
                decided[who] = Some(v);
            }
        }
    }
    // Deterministic tail: Ω stabilizes on p0; everyone must terminate.
    for _ in 0..settle_steps {
        for (i, proc) in procs.iter_mut().enumerate() {
            if decided[i].is_none() {
                if let ProposerStatus::Decided(v) = proc.step(p(0)) {
                    decided[i] = Some(v);
                }
            }
        }
        if decided.iter().all(Option::is_some) {
            break;
        }
    }
    decided
}

fn check_outcome(n: usize, schedule: &[usize], decided: &[Option<u64>]) {
    let values: Vec<u64> = decided.iter().copied().flatten().collect();
    assert_eq!(
        values.len(),
        n,
        "schedule {schedule:?}: some process never decided"
    );
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "schedule {schedule:?}: AGREEMENT VIOLATED: {values:?}"
    );
    assert!(
        (10..10 + n as u64).contains(&values[0]),
        "schedule {schedule:?}: VALIDITY VIOLATED: {}",
        values[0]
    );
}

/// Enumerates every length-`depth` schedule over `n` processes.
fn exhaust(n: usize, depth: usize, settle_steps: usize) -> u64 {
    let mut schedule = vec![0usize; depth];
    let mut explored = 0u64;
    loop {
        let decided = replay(n, &schedule, settle_steps);
        check_outcome(n, &schedule, &decided);
        explored += 1;
        // Next schedule in base-n counting order.
        let mut i = 0;
        loop {
            if i == depth {
                return explored;
            }
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn two_processes_every_interleaving_to_depth_14() {
    let explored = exhaust(2, 14, 100);
    assert_eq!(explored, 1 << 14, "2^14 schedules explored");
}

#[test]
fn three_processes_every_interleaving_to_depth_9() {
    let explored = exhaust(3, 9, 150);
    assert_eq!(explored, 3u64.pow(9), "3^9 schedules explored");
}

#[test]
fn adversarial_omega_prefix_with_recovered_value() {
    // Exhaustive check of a nastier scenario: a phantom accept (a crashed
    // proposer left `(3, 3, Some(99))` in its register) must be adopted by
    // every schedule — value 99 may have been decided, so nothing else may
    // ever be.
    let n = 2;
    let depth = 12;
    let mut schedule = vec![0usize; depth];
    let mut explored = 0u64;
    loop {
        let space = MemorySpace::new(3);
        let inst = ConsensusInstance::<u64>::new(&space, "X");
        inst.round_reg(p(2)).poke((3, 3, Some(99)));
        let mut procs: Vec<ConsensusProcess<u64>> = (0..n)
            .map(|i| ConsensusProcess::new(Arc::clone(&inst), p(i), 10 + i as u64))
            .collect();
        let mut decided: Vec<Option<u64>> = vec![None; n];
        for &who in &schedule {
            if decided[who].is_none() {
                if let ProposerStatus::Decided(v) = procs[who].step(p(who)) {
                    decided[who] = Some(v);
                }
            }
        }
        for _ in 0..100 {
            for (i, proc) in procs.iter_mut().enumerate() {
                if decided[i].is_none() {
                    if let ProposerStatus::Decided(v) = proc.step(p(0)) {
                        decided[i] = Some(v);
                    }
                }
            }
            if decided.iter().all(Option::is_some) {
                break;
            }
        }
        for (i, d) in decided.iter().enumerate() {
            assert_eq!(
                *d,
                Some(99),
                "schedule {schedule:?}: p{i} decided {d:?}, but 99 may already be decided"
            );
        }
        explored += 1;
        let mut i = 0;
        loop {
            if i == depth {
                assert_eq!(explored, 1 << depth);
                return;
            }
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
            i += 1;
        }
    }
}
