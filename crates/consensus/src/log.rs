//! A replicated log: one consensus instance per slot.
//!
//! The standard way to turn single-shot consensus into a service (state
//! machine replication, as in Paxos \[16\]): slot `k` of the log is decided
//! by consensus instance `k`; every replica applies the decided prefix in
//! order. Ω drives liveness exactly as for single-shot consensus — the
//! stable leader commits its queue of commands slot by slot.

use std::collections::VecDeque;
use std::sync::Arc;

use omega_registers::sync::RwLock;
use omega_registers::{MemorySpace, ProcessId, RegisterValue};

use crate::instance::ConsensusInstance;
use crate::proposer::{ConsensusProcess, ProposerStatus};

/// The shared side of a replicated log: lazily-created consensus instances
/// over one memory space.
#[derive(Debug)]
pub struct LogShared<V: RegisterValue> {
    space: MemorySpace,
    instances: RwLock<Vec<Arc<ConsensusInstance<V>>>>,
}

impl<V: RegisterValue> LogShared<V> {
    /// Creates an empty log over `space`.
    #[must_use]
    pub fn new(space: MemorySpace) -> Arc<Self> {
        Arc::new(LogShared {
            space,
            instances: RwLock::new(Vec::new()),
        })
    }

    /// The consensus instance deciding slot `slot`, creating it (and all
    /// earlier slots) on first use.
    #[must_use]
    pub fn instance(&self, slot: usize) -> Arc<ConsensusInstance<V>> {
        {
            let instances = self.instances.read();
            if let Some(inst) = instances.get(slot) {
                return Arc::clone(inst);
            }
        }
        let mut instances = self.instances.write();
        while instances.len() <= slot {
            let name = format!("LOG[{}]", instances.len());
            instances.push(ConsensusInstance::new(&self.space, &name));
        }
        Arc::clone(&instances[slot])
    }

    /// Number of slots allocated so far.
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.instances.read().len()
    }
}

/// One replication event a client-facing layer can react to — the commit
/// and reject hooks of the log.
///
/// Events are recorded only after [`LogHandle::enable_events`]; a service
/// built on the log drains them with [`LogHandle::take_events`] to
/// acknowledge committed requests (matching the slot's value against its
/// in-flight set) and to count lost proposal rounds as per-request
/// operation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEvent {
    /// Slot `slot` was absorbed into this replica's decided prefix;
    /// `ours` is whether the decided value retired this replica's own
    /// front pending command.
    Committed {
        /// The absorbed slot index.
        slot: usize,
        /// Whether the decided value was this replica's own submission.
        ours: bool,
    },
    /// This replica proposed its front pending command for `slot` but the
    /// slot decided someone else's value; the command stays queued and is
    /// retried at the next free slot.
    Superseded {
        /// The contested slot index.
        slot: usize,
    },
}

/// One replica's handle on the replicated log.
///
/// Drive it with [`step`](LogHandle::step) (passing the replica's current Ω
/// output); queue commands with [`submit`](LogHandle::submit); read the
/// decided prefix with [`committed`](LogHandle::committed).
#[derive(Debug)]
pub struct LogHandle<V: RegisterValue> {
    pid: ProcessId,
    shared: Arc<LogShared<V>>,
    committed: Vec<V>,
    pending: VecDeque<V>,
    /// Proposer for the slot `committed.len()`, if one is running.
    active: Option<ConsensusProcess<V>>,
    /// Commit/reject events since the last drain; only recorded once a
    /// consumer opted in (otherwise absorbing would leak per slot).
    events: Vec<LogEvent>,
    record_events: bool,
}

impl<V: RegisterValue + PartialEq> LogHandle<V> {
    /// Creates replica `pid`'s handle.
    #[must_use]
    pub fn new(shared: Arc<LogShared<V>>, pid: ProcessId) -> Self {
        LogHandle {
            pid,
            shared,
            committed: Vec::new(),
            pending: VecDeque::new(),
            active: None,
            events: Vec::new(),
            record_events: false,
        }
    }

    /// Starts recording [`LogEvent`]s; call [`take_events`](Self::take_events)
    /// regularly afterwards or the buffer grows with the log.
    pub fn enable_events(&mut self) {
        self.record_events = true;
    }

    /// Drains the commit/reject events recorded since the last drain (empty
    /// unless [`enable_events`](Self::enable_events) was called).
    pub fn take_events(&mut self) -> Vec<LogEvent> {
        std::mem::take(&mut self.events)
    }

    /// This replica's identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Queues `command` for replication.
    pub fn submit(&mut self, command: V) {
        self.pending.push_back(command);
    }

    /// Commands queued but not yet known committed.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The decided prefix of the log, in slot order.
    #[must_use]
    pub fn committed(&self) -> &[V] {
        &self.committed
    }

    /// Absorbs a decided slot: appends it and retires the matching pending
    /// command if it was ours.
    fn absorb(&mut self, value: V) {
        let ours = self.pending.front() == Some(&value);
        if ours {
            self.pending.pop_front();
        }
        if self.record_events {
            let slot = self.committed.len();
            if !ours && self.active.is_some() {
                // We were proposing our own front command for this slot but
                // someone else's value won the instance.
                self.events.push(LogEvent::Superseded { slot });
            }
            self.events.push(LogEvent::Committed { slot, ours });
        }
        self.committed.push(value);
        self.active = None;
    }

    /// Performs one chunk of work: learn decided slots, and — while this
    /// replica is the leader — drive a proposer for the next free slot.
    pub fn step(&mut self, leader: ProcessId) {
        // Catch up on slots decided by others (reads, not peeks: learning
        // is part of the protocol).
        loop {
            let slot = self.committed.len();
            if self.active.is_some() {
                break;
            }
            let inst = self.shared.instance(slot);
            let decided =
                ProcessId::all(inst.n()).find_map(|j| inst.decision_reg(j).read(self.pid));
            match decided {
                Some(v) => self.absorb(v),
                None => break,
            }
        }

        // Drive (or start) a proposer for the next slot.
        if let Some(proposer) = &mut self.active {
            if let ProposerStatus::Decided(v) = proposer.step(leader) {
                self.absorb(v);
            }
            return;
        }
        if leader == self.pid {
            if let Some(command) = self.pending.front().cloned() {
                let slot = self.committed.len();
                let inst = self.shared.instance(slot);
                let mut proposer = ConsensusProcess::new(inst, self.pid, command);
                if let ProposerStatus::Decided(v) = proposer.step(leader) {
                    self.absorb(v);
                } else {
                    self.active = Some(proposer);
                }
            }
        }
    }

    /// Steps with a fixed leader until `target` commands are committed or
    /// `max_steps` exhausted; returns whether the target was reached.
    pub fn step_until_committed(
        &mut self,
        leader: ProcessId,
        target: usize,
        max_steps: usize,
    ) -> bool {
        for _ in 0..max_steps {
            if self.committed.len() >= target {
                return true;
            }
            self.step(leader);
        }
        self.committed.len() >= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn setup(n: usize) -> (Arc<LogShared<u64>>, Vec<LogHandle<u64>>) {
        let space = MemorySpace::new(n);
        let shared = LogShared::<u64>::new(space);
        let handles = ProcessId::all(n)
            .map(|pid| LogHandle::new(Arc::clone(&shared), pid))
            .collect();
        (shared, handles)
    }

    #[test]
    fn instances_are_created_once_and_shared() {
        let (shared, _h) = setup(2);
        let a = shared.instance(3);
        let b = shared.instance(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(shared.allocated_slots(), 4, "slots 0..=3 allocated");
    }

    #[test]
    fn sole_leader_commits_in_submission_order() {
        let (_shared, mut handles) = setup(3);
        for v in [10u64, 20, 30] {
            handles[0].submit(v);
        }
        assert!(handles[0].step_until_committed(p(0), 3, 500));
        assert_eq!(handles[0].committed(), &[10, 20, 30]);
        assert_eq!(handles[0].pending_len(), 0);
    }

    #[test]
    fn followers_replicate_the_prefix() {
        let (_shared, mut handles) = setup(2);
        handles[0].submit(7);
        handles[0].submit(8);
        assert!(handles[0].step_until_committed(p(0), 2, 500));
        assert!(handles[1].step_until_committed(p(0), 2, 500));
        assert_eq!(handles[1].committed(), &[7, 8]);
    }

    #[test]
    fn competing_submissions_all_commit_without_duplication() {
        let (_shared, mut handles) = setup(2);
        handles[0].submit(100);
        handles[1].submit(200);
        // Leadership alternates; both commands must eventually commit, in
        // the same order everywhere, each exactly once.
        for round in 0..3_000 {
            let leader = p((round / 10) % 2);
            for h in handles.iter_mut() {
                h.step(leader);
            }
            if handles.iter().all(|h| h.committed().len() >= 2) {
                break;
            }
        }
        assert_eq!(handles[0].committed().len(), 2, "both commands commit");
        assert_eq!(handles[0].committed(), handles[1].committed());
        let mut sorted = handles[0].committed().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![100, 200], "no loss, no duplication");
    }

    #[test]
    fn losing_proposal_is_retried_at_next_slot() {
        let (_shared, mut handles) = setup(2);
        handles[0].submit(1);
        handles[1].submit(2);
        // p1 commits its command at slot 0 first.
        assert!(handles[1].step_until_committed(p(1), 1, 500));
        // p0 then leads: learns slot 0 = 2, retries its own at slot 1.
        assert!(handles[0].step_until_committed(p(0), 2, 500));
        assert_eq!(handles[0].committed(), &[2, 1]);
    }

    #[test]
    fn events_report_commits_and_superseded_proposals() {
        let (_shared, mut handles) = setup(2);
        handles[0].enable_events();
        handles[0].submit(1);
        handles[1].submit(2);
        // p1 decides slot 0 first; p0's proposal for slot 0 is superseded
        // and retried at slot 1.
        assert!(handles[1].step_until_committed(p(1), 1, 500));
        assert!(handles[0].step_until_committed(p(0), 2, 500));
        let events = handles[0].take_events();
        assert!(events.contains(&LogEvent::Committed {
            slot: 0,
            ours: false
        }));
        assert!(events.contains(&LogEvent::Committed {
            slot: 1,
            ours: true
        }));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, LogEvent::Committed { .. }))
                .count(),
            2
        );
        assert!(
            handles[0].take_events().is_empty(),
            "drain empties the buffer"
        );
        // p1 never opted in: no events despite committing.
        assert!(handles[1].take_events().is_empty());
    }

    #[test]
    fn non_leader_makes_no_proposals() {
        let (shared, mut handles) = setup(2);
        handles[1].submit(9);
        for _ in 0..50 {
            handles[1].step(p(0));
        }
        assert_eq!(handles[1].committed().len(), 0);
        assert_eq!(shared.allocated_slots(), 1, "only the catch-up slot exists");
    }
}
