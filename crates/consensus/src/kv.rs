//! A tiny replicated key-value store over the consensus log.
//!
//! The demonstration application: commands are replicated through
//! [`LogHandle`](crate::LogHandle) and applied, in slot order, to a
//! deterministic state machine — every replica that applies the same
//! prefix holds the same map.

use std::collections::BTreeMap;

use omega_registers::RegisterValue;

/// A state-machine command for the KV store.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KvCommand {
    /// Bind `key` to `value`.
    Put(String, u64),
    /// Remove `key`.
    Delete(String),
}

impl RegisterValue for KvCommand {
    fn footprint_bits(&self) -> u64 {
        match self {
            KvCommand::Put(key, value) => 1 + key.footprint_bits() + value.footprint_bits(),
            KvCommand::Delete(key) => 1 + key.footprint_bits(),
        }
    }
}

/// The deterministic state machine replaying committed commands.
///
/// # Examples
///
/// ```
/// use omega_consensus::{KvCommand, KvStore};
///
/// let mut store = KvStore::new();
/// let log = vec![
///     KvCommand::Put("a".into(), 1),
///     KvCommand::Put("b".into(), 2),
///     KvCommand::Delete("a".into()),
/// ];
/// store.apply_committed(&log);
/// assert_eq!(store.get("a"), None);
/// assert_eq!(store.get("b"), Some(2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, u64>,
    applied: usize,
}

impl KvStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Applies any commands in `committed` beyond those already applied.
    /// Safe to call repeatedly with a growing prefix.
    pub fn apply_committed(&mut self, committed: &[KvCommand]) {
        for command in &committed[self.applied.min(committed.len())..] {
            match command {
                KvCommand::Put(key, value) => {
                    self.map.insert(key.clone(), *value);
                }
                KvCommand::Delete(key) => {
                    self.map.remove(key);
                }
            }
        }
        self.applied = self.applied.max(committed.len());
    }

    /// Number of log entries applied so far.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<u64> {
        self.map.get(key).copied()
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(k: &str, v: u64) -> KvCommand {
        KvCommand::Put(k.into(), v)
    }

    #[test]
    fn applies_puts_and_deletes() {
        let mut store = KvStore::new();
        store.apply_committed(&[put("x", 1), put("y", 2), KvCommand::Delete("x".into())]);
        assert_eq!(store.get("x"), None);
        assert_eq!(store.get("y"), Some(2));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.applied(), 3);
    }

    #[test]
    fn incremental_application_is_idempotent() {
        let mut store = KvStore::new();
        let log = vec![put("a", 1), put("a", 2), put("b", 3)];
        store.apply_committed(&log[..1]);
        assert_eq!(store.get("a"), Some(1));
        store.apply_committed(&log);
        store.apply_committed(&log); // replay: no effect
        assert_eq!(store.get("a"), Some(2));
        assert_eq!(store.applied(), 3);
    }

    #[test]
    fn same_prefix_same_state() {
        let log = vec![put("k1", 10), KvCommand::Delete("k1".into()), put("k2", 20)];
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.apply_committed(&log);
        b.apply_committed(&log[..2]);
        b.apply_committed(&log);
        assert_eq!(a, b, "determinism: same prefix, same state");
    }

    #[test]
    fn commands_have_footprints() {
        assert!(put("key", 300).footprint_bits() > 8);
        assert!(KvCommand::Delete("k".into()).footprint_bits() >= 9);
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut store = KvStore::new();
        store.apply_committed(&[put("b", 2), put("a", 1)]);
        let pairs: Vec<(&str, u64)> = store.iter().collect();
        assert_eq!(pairs, vec![("a", 1), ("b", 2)]);
    }
}
