//! Simulator integration: Ω and consensus co-located on one process.
//!
//! A real deployment runs the failure detector and the application on the
//! same machine; these actors do the same inside the simulator. Each
//! simulated step first advances the local Ω task (`T2`) and then hands the
//! fresh leader estimate to the consensus layer — which is exactly the
//! `Ω + alpha` architecture of indulgent consensus protocols.

use omega_core::OmegaProcess;
use omega_registers::{ProcessId, RegisterValue};
use omega_sim::{Actor, StepCtx};

use crate::log::LogHandle;
use crate::proposer::{ConsensusProcess, ProposerStatus};

/// One simulated process running Ω plus a single-shot consensus proposer.
pub struct ConsensusActor<V: RegisterValue> {
    omega: Box<dyn OmegaProcess>,
    proposer: ConsensusProcess<V>,
    /// Virtual step at which this actor's proposal becomes available (lets
    /// experiments model clients arriving at different times).
    decided_at_step: Option<u64>,
    steps: u64,
}

impl<V: RegisterValue + PartialEq> ConsensusActor<V> {
    /// Co-locates `omega` and `proposer` on one process.
    ///
    /// # Panics
    ///
    /// Panics if the two components disagree on the process identity.
    #[must_use]
    pub fn new(omega: Box<dyn OmegaProcess>, proposer: ConsensusProcess<V>) -> Self {
        assert_eq!(
            omega.pid(),
            proposer.pid(),
            "Ω and proposer must be co-located"
        );
        ConsensusActor {
            omega,
            proposer,
            decided_at_step: None,
            steps: 0,
        }
    }

    /// The decided value, if this process has learned it.
    #[must_use]
    pub fn decided(&self) -> Option<&V> {
        self.proposer.decided()
    }

    /// The local step count at which the decision was learned.
    #[must_use]
    pub fn decided_at_step(&self) -> Option<u64> {
        self.decided_at_step
    }
}

impl<V: RegisterValue + PartialEq> Actor for ConsensusActor<V> {
    fn on_step(&mut self, _ctx: StepCtx) {
        self.steps += 1;
        self.omega.t2_step();
        let leader = self
            .omega
            .cached_leader()
            .expect("estimate available after t2_step");
        if self.proposer.decided().is_none() {
            if let ProposerStatus::Decided(_) = self.proposer.step(leader) {
                self.decided_at_step = Some(self.steps);
            }
        }
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        self.omega.on_timer_expire()
    }

    fn initial_timeout(&self) -> u64 {
        self.omega.initial_timeout()
    }

    fn current_leader(&self) -> Option<ProcessId> {
        self.omega.cached_leader()
    }
}

/// One simulated process running Ω plus a replicated-log replica.
pub struct LogActor<V: RegisterValue> {
    omega: Box<dyn OmegaProcess>,
    log: LogHandle<V>,
}

impl<V: RegisterValue + PartialEq> LogActor<V> {
    /// Co-locates `omega` and `log` on one process.
    ///
    /// # Panics
    ///
    /// Panics if the two components disagree on the process identity.
    #[must_use]
    pub fn new(omega: Box<dyn OmegaProcess>, log: LogHandle<V>) -> Self {
        assert_eq!(
            omega.pid(),
            log.pid(),
            "Ω and log replica must be co-located"
        );
        LogActor { omega, log }
    }

    /// Queues a command for replication.
    pub fn submit(&mut self, command: V) {
        self.log.submit(command);
    }

    /// The replica's view of the committed prefix.
    #[must_use]
    pub fn committed(&self) -> &[V] {
        self.log.committed()
    }

    /// The underlying log handle.
    #[must_use]
    pub fn log(&self) -> &LogHandle<V> {
        &self.log
    }
}

impl<V: RegisterValue + PartialEq> Actor for LogActor<V> {
    fn on_step(&mut self, _ctx: StepCtx) {
        self.omega.t2_step();
        let leader = self
            .omega
            .cached_leader()
            .expect("estimate available after t2_step");
        self.log.step(leader);
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        self.omega.on_timer_expire()
    }

    fn initial_timeout(&self) -> u64 {
        self.omega.initial_timeout()
    }

    fn current_leader(&self) -> Option<ProcessId> {
        self.omega.cached_leader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ConsensusInstance;
    use omega_core::{Alg1Memory, Alg1Process};
    use omega_registers::MemorySpace;

    #[test]
    #[should_panic(expected = "co-located")]
    fn mismatched_pids_rejected() {
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        let omega = Box::new(Alg1Process::new(mem, ProcessId::new(0)));
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let proposer = ConsensusProcess::new(inst, ProcessId::new(1), 5);
        let _ = ConsensusActor::new(omega, proposer);
    }

    #[test]
    fn actor_advances_both_layers() {
        let space = MemorySpace::new(1);
        let mem = Alg1Memory::new(&space);
        let omega = Box::new(Alg1Process::new(mem, ProcessId::new(0)));
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let proposer = ConsensusProcess::new(inst, ProcessId::new(0), 42);
        let mut actor = ConsensusActor::new(omega, proposer);
        let ctx = StepCtx {
            pid: ProcessId::new(0),
            now: omega_sim::SimTime::ZERO,
        };
        for _ in 0..20 {
            actor.on_step(ctx);
        }
        assert_eq!(actor.decided(), Some(&42), "single process decides alone");
        assert!(actor.decided_at_step().unwrap() <= 20);
        assert_eq!(actor.current_leader(), Some(ProcessId::new(0)));
    }
}
