//! Ω-driven consensus and state-machine replication over 1WnR registers.
//!
//! The paper's introduction motivates the Ω oracle as *the* weakest failure
//! detector for solving consensus in crash-prone asynchronous shared
//! memory (\[19\]; see also Disk Paxos \[9\] and Paxos \[16\]). This crate closes
//! that loop for the reproduction: it implements
//!
//! * [`ConsensusInstance`] / [`ConsensusProcess`] — single-shot round-based
//!   consensus whose **safety** (agreement, validity) holds under *any*
//!   schedule and any crashes, and whose **liveness** follows once the
//!   co-located Ω stabilizes;
//! * [`LogShared`] / [`LogHandle`] — a replicated log (multi-slot
//!   consensus) with per-replica command queues;
//! * [`KvStore`] — a deterministic state machine replaying the log;
//! * [`ConsensusActor`] / [`LogActor`] — simulator actors co-locating Ω
//!   and the application on one process, as a real node would.
//!
//! # Single-shot consensus in simulation
//!
//! ```
//! use omega_consensus::{ConsensusActor, ConsensusInstance, ConsensusProcess};
//! use omega_core::{Alg1Memory, Alg1Process};
//! use omega_registers::{MemorySpace, ProcessId};
//! use omega_sim::prelude::*;
//! use std::sync::Arc;
//!
//! let n = 3;
//! let space = MemorySpace::new(n);
//! let omega_memory = Alg1Memory::new(&space);
//! let instance = ConsensusInstance::<u64>::new(&space, "C0");
//!
//! let actors: Vec<Box<dyn Actor>> = ProcessId::all(n)
//!     .map(|pid| {
//!         let omega = Box::new(Alg1Process::new(Arc::clone(&omega_memory), pid));
//!         let proposer =
//!             ConsensusProcess::new(Arc::clone(&instance), pid, 100 + pid.index() as u64);
//!         Box::new(ConsensusActor::new(omega, proposer)) as Box<dyn Actor>
//!     })
//!     .collect();
//!
//! let _report = Simulation::builder(actors)
//!     .adversary(SeededRandom::new(9, 1, 6))
//!     .horizon(20_000)
//!     .run();
//! assert!(instance.peek_decision().is_some(), "a value was decided");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod actor;
mod adopt;
mod instance;
mod kv;
mod log;
mod proposer;

pub use actor::{ConsensusActor, LogActor};
pub use adopt::{AdoptCommit, AdoptCommitOutcome};
pub use instance::{ConsensusInstance, RoundEntry};
pub use kv::{KvCommand, KvStore};
pub use log::{LogEvent, LogHandle, LogShared};
pub use proposer::{ConsensusProcess, ProposerStatus};
