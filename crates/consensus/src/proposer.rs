//! The round-based proposer: safety from registers, liveness from Ω.
//!
//! The algorithm is the shared-memory form of round-based ("alpha")
//! consensus: a proposer running round `r` first *promises* `r` in its own
//! round register, then reads everyone; if nobody has promised a higher
//! round it *accepts* the value adopted from the highest earlier accept
//! (or its own proposal), writes it, re-reads everyone, and decides if its
//! round still tops every promise. Rounds owned by distinct processes are
//! disjoint (`r ≡ pid (mod n)`), so every round has a unique owner.
//!
//! **Safety holds unconditionally** — under any interleaving and any number
//! of crashed proposers, at most one value is ever decided (the Disk-Paxos
//! argument with a single reliable memory). **Liveness needs Ω**: a
//! proposer starts attempts only while `leader() = self`, so once Ω
//! stabilizes a single correct proposer runs unopposed, its rounds
//! eventually top every promise, and it decides; everyone else learns the
//! decision through the `DEC` registers.
//!
//! [`ConsensusProcess::step`] performs **at most one shared-register
//! operation per call** (plus the decision scan while idle), so a driver —
//! simulator or thread loop — interleaves proposers at the same granularity
//! the safety proof quantifies over.

use std::sync::Arc;

use omega_registers::{ProcessId, RegisterValue};

use crate::instance::ConsensusInstance;

/// What a call to [`ConsensusProcess::step`] concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposerStatus<V> {
    /// No decision yet; keep stepping.
    Deciding,
    /// The instance decided this value.
    Decided(V),
}

/// Where a proposer is inside its current round attempt.
#[derive(Debug, Clone)]
enum Phase<V> {
    /// Not attempting: scanning for decisions, waiting for leadership.
    Idle,
    /// Promise written; reading round registers one by one.
    Reading {
        r: u64,
        index: usize,
        highest_promise: u64,
        best: (u64, Option<V>),
    },
    /// Accept written; verifying promises one by one.
    Verifying { r: u64, value: V, index: usize },
}

/// A single process's handle on one consensus instance.
///
/// Drive it by calling [`step`](ConsensusProcess::step) with the process's
/// current Ω output.
#[derive(Debug)]
pub struct ConsensusProcess<V: RegisterValue> {
    pid: ProcessId,
    inst: Arc<ConsensusInstance<V>>,
    proposal: V,
    /// Mirror of the owned round register (owner-side copy).
    my_entry: (u64, u64, Option<V>),
    /// Highest round this proposer will not reuse.
    round_floor: u64,
    phase: Phase<V>,
    decided: Option<V>,
    attempts: u64,
}

impl<V: RegisterValue + PartialEq> ConsensusProcess<V> {
    /// Creates a proposer for `pid` proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the instance.
    #[must_use]
    pub fn new(inst: Arc<ConsensusInstance<V>>, pid: ProcessId, proposal: V) -> Self {
        assert!(pid.index() < inst.n(), "{pid} out of range");
        let my_entry = inst.round_reg(pid).peek();
        ConsensusProcess {
            pid,
            proposal,
            my_entry,
            round_floor: 0,
            phase: Phase::Idle,
            decided: None,
            attempts: 0,
            inst,
        }
    }

    /// This proposer's identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The decided value, if this process has learned it.
    #[must_use]
    pub fn decided(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// Number of round attempts started so far.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// The smallest round owned by `pid` strictly greater than `floor`.
    fn next_owned_round(&self, floor: u64) -> u64 {
        let n = self.inst.n() as u64;
        let id = self.pid.index() as u64;
        let mut r = (floor / n) * n + id + 1;
        while r <= floor {
            r += n;
        }
        r
    }

    fn learn(&mut self, value: V) -> ProposerStatus<V> {
        self.inst
            .decision_reg(self.pid)
            .write(self.pid, Some(value.clone()));
        self.decided = Some(value.clone());
        self.phase = Phase::Idle;
        ProposerStatus::Decided(value)
    }

    /// Performs one small chunk of work — at most one round-register
    /// operation, so drivers control the interleaving at the granularity
    /// the safety argument cares about.
    pub fn step(&mut self, leader: ProcessId) -> ProposerStatus<V> {
        if let Some(v) = &self.decided {
            return ProposerStatus::Decided(v.clone());
        }
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {
                // Learn decisions published by others.
                for j in ProcessId::all(self.inst.n()) {
                    if let Some(v) = self.inst.decision_reg(j).read(self.pid) {
                        return self.learn(v);
                    }
                }
                if leader != self.pid {
                    return ProposerStatus::Deciding;
                }
                // Phase 1: promise a fresh owned round.
                self.attempts += 1;
                let r = self.next_owned_round(self.round_floor);
                self.round_floor = r;
                let (_, bal, inp) = self.my_entry.clone();
                self.my_entry = (r, bal, inp.clone());
                self.inst
                    .round_reg(self.pid)
                    .write(self.pid, self.my_entry.clone());
                self.phase = Phase::Reading {
                    r,
                    index: 0,
                    highest_promise: r,
                    best: (bal, inp),
                };
                ProposerStatus::Deciding
            }
            Phase::Reading {
                r,
                index,
                mut highest_promise,
                mut best,
            } => {
                if index < self.inst.n() {
                    let j = ProcessId::new(index);
                    if j != self.pid {
                        let (mbal_j, bal_j, inp_j) = self.inst.round_reg(j).read(self.pid);
                        highest_promise = highest_promise.max(mbal_j);
                        if bal_j > best.0 {
                            best = (bal_j, inp_j);
                        }
                    }
                    self.phase = Phase::Reading {
                        r,
                        index: index + 1,
                        highest_promise,
                        best,
                    };
                    return ProposerStatus::Deciding;
                }
                if highest_promise > r {
                    // A higher round is in flight: abort past it.
                    self.round_floor = highest_promise;
                    self.phase = Phase::Idle;
                    return ProposerStatus::Deciding;
                }
                // Phase 2: accept the constrained value.
                let value = best.1.unwrap_or_else(|| self.proposal.clone());
                self.my_entry = (r, r, Some(value.clone()));
                self.inst
                    .round_reg(self.pid)
                    .write(self.pid, self.my_entry.clone());
                self.phase = Phase::Verifying { r, value, index: 0 };
                ProposerStatus::Deciding
            }
            Phase::Verifying { r, value, index } => {
                if index < self.inst.n() {
                    let j = ProcessId::new(index);
                    if j != self.pid {
                        let (mbal_j, _, _) = self.inst.round_reg(j).read(self.pid);
                        if mbal_j > r {
                            self.round_floor = mbal_j;
                            self.phase = Phase::Idle;
                            return ProposerStatus::Deciding;
                        }
                    }
                    self.phase = Phase::Verifying {
                        r,
                        value,
                        index: index + 1,
                    };
                    return ProposerStatus::Deciding;
                }
                // Round survived: decide and publish.
                self.learn(value)
            }
        }
    }

    /// Convenience driver: steps with a fixed leader until decided or
    /// `max_steps` exhausted.
    pub fn step_until_decided(&mut self, leader: ProcessId, max_steps: usize) -> Option<V> {
        for _ in 0..max_steps {
            if let ProposerStatus::Decided(v) = self.step(leader) {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_registers::MemorySpace;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn setup(
        n: usize,
    ) -> (
        MemorySpace,
        Arc<ConsensusInstance<u64>>,
        Vec<ConsensusProcess<u64>>,
    ) {
        let space = MemorySpace::new(n);
        let inst = ConsensusInstance::new(&space, "C");
        let procs = ProcessId::all(n)
            .map(|pid| ConsensusProcess::new(Arc::clone(&inst), pid, 100 + pid.index() as u64))
            .collect();
        (space, inst, procs)
    }

    #[test]
    fn sole_leader_decides_its_own_proposal() {
        let (_s, inst, mut procs) = setup(3);
        let v = procs[0]
            .step_until_decided(p(0), 50)
            .expect("sole leader decides");
        assert_eq!(v, 100);
        assert_eq!(inst.peek_decision(), Some(100));
        assert_eq!(procs[0].attempts(), 1);
    }

    #[test]
    fn followers_learn_the_decision() {
        let (_s, _inst, mut procs) = setup(3);
        let _ = procs[0].step_until_decided(p(0), 50);
        let v = procs[1]
            .step_until_decided(p(0), 5)
            .expect("follower learns via DEC");
        assert_eq!(v, 100);
        assert_eq!(procs[1].attempts(), 0, "followers never attempt rounds");
    }

    #[test]
    fn non_leader_does_nothing() {
        let (_s, inst, mut procs) = setup(2);
        assert_eq!(procs[1].step_until_decided(p(0), 20), None);
        assert_eq!(inst.peek_decision(), None);
        assert_eq!(procs[1].attempts(), 0);
    }

    #[test]
    fn round_numbering_is_disjoint_per_process() {
        let (_s, _inst, procs) = setup(3);
        assert_eq!(procs[0].next_owned_round(0), 1);
        assert_eq!(procs[1].next_owned_round(0), 2);
        assert_eq!(procs[2].next_owned_round(0), 3);
        assert_eq!(procs[0].next_owned_round(1), 4);
        assert_eq!(procs[0].next_owned_round(5), 7);
        assert_eq!(procs[2].next_owned_round(3), 6);
    }

    #[test]
    fn interleaved_contention_preserves_agreement() {
        // Phase 1: every process believes it is the leader; steps interleave
        // round-robin at single-operation granularity. Symmetric contention
        // may livelock (this is the FLP scenario Ω exists to break), but any
        // decisions that do happen must agree and be valid.
        let (_s, _inst, mut procs) = setup(3);
        let mut decisions: Vec<Option<u64>> = vec![None; 3];
        for _ in 0..500 {
            for (i, proc) in procs.iter_mut().enumerate() {
                if decisions[i].is_none() {
                    if let ProposerStatus::Decided(v) = proc.step(p(i)) {
                        decisions[i] = Some(v);
                    }
                }
            }
        }
        let contenders: Vec<u64> = decisions.iter().copied().flatten().collect();
        assert!(
            contenders.windows(2).all(|w| w[0] == w[1]),
            "agreement under contention: {contenders:?}"
        );

        // Phase 2: Ω "stabilizes" on p0 — now everyone must terminate.
        for _ in 0..500 {
            for (i, proc) in procs.iter_mut().enumerate() {
                if decisions[i].is_none() {
                    if let ProposerStatus::Decided(v) = proc.step(p(0)) {
                        decisions[i] = Some(v);
                    }
                }
            }
            if decisions.iter().all(Option::is_some) {
                break;
            }
        }
        let got: Vec<u64> = decisions
            .iter()
            .map(|d| d.expect("all decide once Ω settles"))
            .collect();
        assert!(got.windows(2).all(|w| w[0] == w[1]), "agreement: {got:?}");
        assert!((100..103).contains(&got[0]), "validity");
    }

    #[test]
    fn adopted_value_survives_leader_change() {
        let (_s, _inst, mut procs) = setup(2);
        let v1 = procs[1].step_until_decided(p(1), 50).unwrap();
        assert_eq!(v1, 101);
        let v0 = procs[0].step_until_decided(p(0), 50).unwrap();
        assert_eq!(v0, 101, "later leader must learn/adopt the decided value");
    }

    #[test]
    fn phase1_abort_jumps_past_contending_round() {
        let (_s, inst, mut procs) = setup(2);
        inst.round_reg(p(1)).poke((41, 0, None));
        let v = procs[0]
            .step_until_decided(p(0), 50)
            .expect("eventually decides");
        assert_eq!(v, 100);
        let (mbal, bal, _) = inst.round_reg(p(0)).peek();
        assert!(mbal > 41, "second attempt jumped past the promise: {mbal}");
        assert_eq!(mbal, bal);
        assert!(procs[0].attempts() >= 2, "first attempt must have aborted");
    }

    #[test]
    fn value_constrained_by_highest_accept() {
        let (_s, inst, mut procs) = setup(3);
        // p2 accepted 777 at round 3 (possibly decided) before crashing.
        inst.round_reg(p(2)).poke((3, 3, Some(777)));
        let v = procs[0].step_until_decided(p(0), 100).unwrap();
        assert_eq!(v, 777, "must adopt the possibly-decided value");
    }

    #[test]
    fn mid_attempt_leadership_loss_is_safe() {
        let (_s, _inst, mut procs) = setup(2);
        // p0 starts an attempt as leader...
        let _ = procs[0].step(p(0)); // promise write
        let _ = procs[0].step(p(0)); // read RR[0]
                                     // ...then leadership flips to p1, which decides.
        let v1 = procs[1].step_until_decided(p(1), 50).unwrap();
        // p0 finishes stepping (no longer leader): must converge to v1.
        let v0 = procs[0].step_until_decided(p(1), 50).unwrap();
        assert_eq!(v0, v1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_rejected() {
        let space = MemorySpace::new(1);
        let inst = ConsensusInstance::<u64>::new(&space, "C");
        let _ = ConsensusProcess::new(inst, p(3), 0);
    }
}
