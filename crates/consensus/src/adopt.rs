//! Adopt-commit: the one-shot agreement safety primitive.
//!
//! An *adopt-commit* object (Gafni 1998; Yang–Anderson) is the classic
//! wait-free building block between registers and consensus: every process
//! proposes once and gets back `Commit(v)` or `Adopt(v)` such that
//!
//! * **Validity** — the returned value was proposed by someone;
//! * **Coherence** — if any process gets `Commit(v)`, every process gets
//!   `Commit(v)` or `Adopt(v)` with that same `v`;
//! * **Convergence** — if every proposal is `v`, everyone gets `Commit(v)`.
//!
//! It is the "safety half" of round-based consensus (what a round of the
//! proposer's phase-1/phase-2 effectively computes), implementable
//! wait-free from 1WnR registers — no Ω needed. Combining one adopt-commit
//! per round with Ω for round leadership is the textbook route to
//! consensus; the crate's [`ConsensusProcess`](crate::ConsensusProcess)
//! fuses the two for efficiency, and this standalone object is provided
//! (and independently tested) as part of the substrate library.

use std::sync::Arc;

use omega_registers::{MemorySpace, ProcessId, RegisterValue, SwmrRegister};

/// The outcome of an adopt-commit proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdoptCommitOutcome<V> {
    /// Everyone is guaranteed to leave with this value: safe to decide.
    Commit(V),
    /// Carry this value into the next round; someone may have committed it.
    Adopt(V),
}

impl<V> AdoptCommitOutcome<V> {
    /// The carried value, regardless of commit status.
    pub fn value(&self) -> &V {
        match self {
            AdoptCommitOutcome::Commit(v) | AdoptCommitOutcome::Adopt(v) => v,
        }
    }

    /// Whether the outcome is a commit.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, AdoptCommitOutcome::Commit(_))
    }
}

/// A single-use adopt-commit object over 1WnR registers.
///
/// Each process calls [`propose`](AdoptCommit::propose) at most once.
///
/// # Examples
///
/// ```
/// use omega_consensus::{AdoptCommit, AdoptCommitOutcome};
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let object = AdoptCommit::<u64>::new(&space, "AC");
/// let p0 = ProcessId::new(0);
/// // A solo proposer always commits its own value.
/// assert_eq!(object.propose(p0, 9), AdoptCommitOutcome::Commit(9));
/// ```
#[derive(Debug)]
pub struct AdoptCommit<V: RegisterValue> {
    n: usize,
    /// Phase-1 proposals: `A[i]`.
    proposals: Vec<SwmrRegister<Option<V>>>,
    /// Phase-2 reports: `B[i] = (value, saw_single)`.
    reports: Vec<SwmrRegister<Option<(V, bool)>>>,
}

impl<V: RegisterValue + PartialEq> AdoptCommit<V> {
    /// Allocates the object's registers in `space` under `name`.
    #[must_use]
    pub fn new(space: &MemorySpace, name: &str) -> Arc<Self> {
        let n = space.n_processes();
        let proposals = ProcessId::all(n)
            .map(|pid| space.swmr::<Option<V>>(&format!("{name}.A[{}]", pid.index()), pid, None))
            .collect();
        let reports = ProcessId::all(n)
            .map(|pid| {
                space.swmr::<Option<(V, bool)>>(&format!("{name}.B[{}]", pid.index()), pid, None)
            })
            .collect();
        Arc::new(AdoptCommit {
            n,
            proposals,
            reports,
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Proposes `value` on behalf of `pid` (call at most once per process).
    pub fn propose(&self, pid: ProcessId, value: V) -> AdoptCommitOutcome<V> {
        // Phase 1: publish, then scan proposals.
        self.proposals[pid.index()].write(pid, Some(value.clone()));
        let mut saw_other = false;
        for j in ProcessId::all(self.n) {
            if let Some(v) = self.proposals[j.index()].read(pid) {
                if v != value {
                    saw_other = true;
                }
            }
        }
        let single = !saw_other;
        self.reports[pid.index()].write(pid, Some((value.clone(), single)));

        // Phase 2: scan reports.
        let mut all_single = true;
        let mut any_single: Option<V> = None;
        let mut saw_any = false;
        for j in ProcessId::all(self.n) {
            if let Some((v, s)) = self.reports[j.index()].read(pid) {
                saw_any = true;
                if s {
                    any_single = Some(v);
                } else {
                    all_single = false;
                }
            }
        }
        debug_assert!(saw_any, "own report always visible");
        match (all_single, any_single) {
            (true, Some(v)) => AdoptCommitOutcome::Commit(v),
            (false, Some(v)) => AdoptCommitOutcome::Adopt(v),
            // No single report seen at all: keep the own value.
            (_, None) => AdoptCommitOutcome::Adopt(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn solo_proposer_commits() {
        let space = MemorySpace::new(3);
        let ac = AdoptCommit::<u64>::new(&space, "AC");
        assert_eq!(ac.propose(p(1), 5), AdoptCommitOutcome::Commit(5));
        assert_eq!(ac.n(), 3);
    }

    #[test]
    fn unanimous_proposals_all_commit() {
        let space = MemorySpace::new(3);
        let ac = AdoptCommit::<u64>::new(&space, "AC");
        for i in 0..3 {
            assert_eq!(
                ac.propose(p(i), 7),
                AdoptCommitOutcome::Commit(7),
                "proposer {i}"
            );
        }
    }

    #[test]
    fn sequential_conflict_preserves_coherence() {
        let space = MemorySpace::new(2);
        let ac = AdoptCommit::<u64>::new(&space, "AC");
        let first = ac.propose(p(0), 1);
        assert!(first.is_commit(), "first, uncontended proposal commits");
        let second = ac.propose(p(1), 2);
        // Coherence: since p0 committed 1, p1 must carry 1.
        assert_eq!(*second.value(), 1);
        assert!(!second.is_commit() || *second.value() == 1);
    }

    #[test]
    fn outcome_accessors() {
        let c: AdoptCommitOutcome<u64> = AdoptCommitOutcome::Commit(3);
        let a: AdoptCommitOutcome<u64> = AdoptCommitOutcome::Adopt(4);
        assert!(c.is_commit());
        assert!(!a.is_commit());
        assert_eq!(*c.value(), 3);
        assert_eq!(*a.value(), 4);
    }

    #[test]
    fn concurrent_threads_preserve_coherence() {
        // True parallelism over the lock-backed registers: whatever the
        // interleaving, commits force everyone onto one value.
        for round in 0..20u64 {
            let space = MemorySpace::new(4);
            let ac = AdoptCommit::<u64>::new(&space, "AC");
            let outcomes: Vec<AdoptCommitOutcome<u64>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        let ac = Arc::clone(&ac);
                        s.spawn(move || ac.propose(p(i), (round % 2) * 10 + i as u64 % 2))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let committed: Vec<&u64> = outcomes
                .iter()
                .filter(|o| o.is_commit())
                .map(AdoptCommitOutcome::value)
                .collect();
            if let Some(&&v) = committed.first() {
                for o in &outcomes {
                    assert_eq!(
                        *o.value(),
                        v,
                        "coherence violated in round {round}: {outcomes:?}"
                    );
                }
            }
        }
    }
}
