//! The shared-register layout of one consensus instance.

use std::sync::Arc;

use omega_registers::{MemorySpace, ProcessId, RegisterValue, SwmrRegister};

/// Contents of a proposer's round register `RR[i]`:
/// `(mbal, bal, inp)` — the highest round promised, the round of the last
/// accepted value, and that value.
pub type RoundEntry<V> = (u64, u64, Option<V>);

/// The 1WnR registers of a single-shot consensus instance.
///
/// Each process owns one *round register* `RR[i]` (its Disk-Paxos-style
/// block) and one *decision register* `DEC[i]`; everyone reads all of them.
/// Consensus over such registers is exactly what the paper motivates Ω
/// with: Ω is the weakest failure detector that makes this terminate
/// (\[19\]; Disk Paxos \[9\]).
#[derive(Debug)]
pub struct ConsensusInstance<V: RegisterValue> {
    n: usize,
    rounds: Vec<SwmrRegister<RoundEntry<V>>>,
    decisions: Vec<SwmrRegister<Option<V>>>,
}

impl<V: RegisterValue> ConsensusInstance<V> {
    /// Allocates the instance's registers in `space`, prefixed with `name`
    /// so multiple instances (log slots) can share one space.
    #[must_use]
    pub fn new(space: &MemorySpace, name: &str) -> Arc<Self> {
        let n = space.n_processes();
        let rounds = ProcessId::all(n)
            .map(|pid| {
                space.swmr::<RoundEntry<V>>(
                    &format!("{name}.RR[{}]", pid.index()),
                    pid,
                    (0, 0, None),
                )
            })
            .collect();
        let decisions = ProcessId::all(n)
            .map(|pid| space.swmr::<Option<V>>(&format!("{name}.DEC[{}]", pid.index()), pid, None))
            .collect();
        Arc::new(ConsensusInstance {
            n,
            rounds,
            decisions,
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The round register owned by `pid`.
    #[must_use]
    pub fn round_reg(&self, pid: ProcessId) -> &SwmrRegister<RoundEntry<V>> {
        &self.rounds[pid.index()]
    }

    /// The decision register owned by `pid`.
    #[must_use]
    pub fn decision_reg(&self, pid: ProcessId) -> &SwmrRegister<Option<V>> {
        &self.decisions[pid.index()]
    }

    /// Unattributed view of any decision present in the instance (harness
    /// use only).
    #[must_use]
    pub fn peek_decision(&self) -> Option<V> {
        self.decisions.iter().find_map(SwmrRegister::peek)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_names_and_owners() {
        let space = MemorySpace::new(3);
        let inst = ConsensusInstance::<u64>::new(&space, "C0");
        assert_eq!(inst.n(), 3);
        for pid in ProcessId::all(3) {
            assert_eq!(inst.round_reg(pid).owner(), pid);
            assert_eq!(inst.decision_reg(pid).owner(), pid);
            assert_eq!(
                inst.round_reg(pid).name(),
                format!("C0.RR[{}]", pid.index())
            );
        }
        assert_eq!(space.register_count(), 6);
    }

    #[test]
    fn peek_decision_scans_all() {
        let space = MemorySpace::new(2);
        let inst = ConsensusInstance::<u64>::new(&space, "C0");
        assert_eq!(inst.peek_decision(), None);
        let p1 = ProcessId::new(1);
        inst.decision_reg(p1).write(p1, Some(9));
        assert_eq!(inst.peek_decision(), Some(9));
    }

    #[test]
    fn initial_round_entries_are_empty() {
        let space = MemorySpace::new(2);
        let inst = ConsensusInstance::<u64>::new(&space, "X");
        let p0 = ProcessId::new(0);
        assert_eq!(inst.round_reg(p0).peek(), (0, 0, None));
    }
}
