//! Simulated-election integration tests for the Ω algorithms.
//!
//! Each test runs one or more full simulations and checks the paper's
//! *properties* — eventual leadership (Theorem 1), boundedness (Theorems 2
//! and 6), and the post-stabilization write pattern (Theorems 3 and 7).

use std::sync::Arc;

use omega_core::{boxed_actors, Alg1Memory, Alg1Process, Alg2Memory, Alg2Process, OmegaVariant};
use omega_registers::{MemorySpace, ProcessId};
use omega_sim::crash::CrashPlan;
use omega_sim::prelude::*;
use omega_sim::Simulation;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// AWB envelope matching the defaults used across these tests.
fn awb<A: Adversary>(inner: A, timely: ProcessId) -> AwbEnvelope<A> {
    AwbEnvelope::new(inner, timely, SimTime::from_ticks(1_000), 4)
}

#[test]
fn every_variant_elects_under_random_awb_schedule() {
    for variant in OmegaVariant::all() {
        for n in [2usize, 3, 5, 8] {
            let sys = variant.build(n);
            // The step-clock variant measures its timeouts in *own steps*
            // (§3.5); when step durations can be as short as one tick, a
            // burst of fast steps shrinks the scan window below the
            // leader's write gap, producing spurious suspicions at
            // rare-event timescales (stabilization still happens, but only
            // after ~1e5+ ticks — see EXPERIMENTS.md E11). Bounding the
            // step-rate variance (min delay 2) restores fast convergence.
            let min_delay = match variant {
                OmegaVariant::StepClock => 2,
                _ => 1,
            };
            let report = Simulation::builder(sys.actors)
                .adversary(awb(SeededRandom::new(11, min_delay, 8), p(0)))
                .horizon(40_000)
                .sample_every(100)
                .run();
            let stab = report
                .stabilization()
                .unwrap_or_else(|| panic!("{variant} with n={n} failed to stabilize"));
            assert!(
                report.correct.contains(stab.leader),
                "{variant} n={n}: elected a crashed process"
            );
            assert!(
                report.stabilized_for(0.25),
                "{variant} n={n}: stabilized too late ({:?})",
                stab
            );
        }
    }
}

#[test]
fn election_survives_chaotic_timers() {
    // AWB₂ only requires asymptotic domination: timers are completely
    // arbitrary for the first quarter of the run.
    let sys = OmegaVariant::Alg1.build(4);
    let report = Simulation::builder(sys.actors)
        .adversary(awb(SeededRandom::new(5, 1, 6), p(2)))
        .timers_from(|pid| {
            Box::new(ChaoticThen::new(
                SimTime::from_ticks(10_000),
                50,
                pid.index() as u64 + 1,
                JitteredTimer::new(pid.index() as u64, 3),
            ))
        })
        .horizon(60_000)
        .sample_every(100)
        .run();
    let stab = report
        .stabilization()
        .expect("chaotic prefix must not prevent election");
    assert!(report.correct.contains(stab.leader));
}

#[test]
fn election_survives_bursty_schedules() {
    let sys = OmegaVariant::Alg1.build(5);
    let report = Simulation::builder(sys.actors)
        .adversary(awb(Bursty::new(5, 9, 2, 300, 10), p(0)))
        .horizon(80_000)
        .sample_every(200)
        .run();
    assert!(
        report.stabilization().is_some(),
        "bursty followers may stall arbitrarily"
    );
}

#[test]
fn leader_crash_triggers_reelection() {
    let sys = OmegaVariant::Alg1.build(4);
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            Synchronous::new(3),
            p(1), // after the crash of p0... timely process must survive; pick p1
            SimTime::from_ticks(0),
            4,
        ))
        .crash_plan(CrashPlan::none().with_crash_at(SimTime::from_ticks(15_000), p(0)))
        .horizon(60_000)
        .sample_every(100)
        .run();
    let stab = report
        .stabilization()
        .expect("re-election after leader crash");
    assert_ne!(stab.leader, p(0), "crashed process cannot stay leader");
    assert!(report.correct.contains(stab.leader));
    assert!(
        stab.stable_from > SimTime::from_ticks(15_000),
        "stabilization must postdate the crash"
    );
}

#[test]
fn cascading_crashes_leave_last_process_leading() {
    // Crash p0, then p1, then p2 — p3 must end up the leader.
    let sys = OmegaVariant::Alg1.build(4);
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            Synchronous::new(3),
            p(3),
            SimTime::ZERO,
            4,
        ))
        .crash_plan(
            CrashPlan::none()
                .with_crash_at(SimTime::from_ticks(10_000), p(0))
                .with_crash_at(SimTime::from_ticks(25_000), p(1))
                .with_crash_at(SimTime::from_ticks(40_000), p(2)),
        )
        .horizon(90_000)
        .sample_every(100)
        .run();
    let stab = report.stabilization().expect("failover chain");
    assert_eq!(stab.leader, p(3));
}

#[test]
fn alg1_self_stabilizes_from_corrupted_registers() {
    let space = MemorySpace::new(4);
    let memory = Alg1Memory::new(&space);
    memory.corrupt(0xdead_beef);
    let processes: Vec<Alg1Process> = ProcessId::all(4)
        .map(|pid| Alg1Process::new(Arc::clone(&memory), pid))
        .collect();
    let report = Simulation::builder(boxed_actors(processes))
        .adversary(awb(SeededRandom::new(3, 1, 6), p(0)))
        .horizon(60_000)
        .sample_every(100)
        .run();
    let stab = report
        .stabilization()
        .expect("footnote 7: arbitrary initial values");
    assert!(report.correct.contains(stab.leader));
}

#[test]
fn alg2_self_stabilizes_from_corrupted_registers() {
    let space = MemorySpace::new(3);
    let memory = Alg2Memory::new(&space);
    memory.corrupt(0xfeed_f00d);
    let processes: Vec<Alg2Process> = ProcessId::all(3)
        .map(|pid| Alg2Process::new(Arc::clone(&memory), pid))
        .collect();
    let report = Simulation::builder(boxed_actors(processes))
        .adversary(awb(SeededRandom::new(4, 1, 6), p(1)))
        .horizon(60_000)
        .sample_every(100)
        .run();
    assert!(report.stabilization().is_some());
}

#[test]
fn alg1_eventually_single_writer_single_register() {
    // Theorem 3: after stabilization, only the leader writes, and it always
    // writes the same register (its PROGRESS entry).
    let sys = OmegaVariant::Alg1.build(5);
    let space = sys.space.clone();
    let report = Simulation::builder(sys.actors)
        .adversary(awb(SeededRandom::new(21, 1, 6), p(0)))
        .memory(space)
        .horizon(60_000)
        .stats_checkpoints(24)
        .sample_every(100)
        .run();
    let leader = report.elected_leader().expect("stabilizes");
    let tail = report.windowed.tail(0.25).expect("stats recorded");
    let writers: Vec<ProcessId> = tail.writer_set().iter().collect();
    assert_eq!(
        writers,
        vec![leader],
        "only the leader writes after stabilization"
    );
    let written = tail.stats.written_registers();
    assert_eq!(
        written,
        vec![format!("PROGRESS[{}]", leader.index())],
        "and only its PROGRESS register"
    );
}

#[test]
fn alg1_everyone_keeps_reading() {
    // Lemma 6: every correct process must read forever — in the final
    // quarter of the run every process still performs reads.
    let sys = OmegaVariant::Alg1.build(4);
    let space = sys.space.clone();
    let report = Simulation::builder(sys.actors)
        .adversary(awb(SeededRandom::new(2, 1, 6), p(0)))
        .memory(space)
        .horizon(40_000)
        .stats_checkpoints(16)
        .sample_every(100)
        .run();
    let tail = report.windowed.tail(0.25).unwrap();
    for pid in ProcessId::all(4) {
        assert!(
            tail.stats.reads_of(pid) > 0,
            "{pid} stopped reading — would violate Lemma 6's necessity"
        );
    }
}

#[test]
fn alg1_bounds_everything_but_leader_progress() {
    // Theorem 2: every register except PROGRESS[leader] stops growing.
    let sys = OmegaVariant::Alg1.build(4);
    let space = sys.space.clone();
    let report = Simulation::builder(sys.actors)
        .adversary(awb(SeededRandom::new(13, 1, 6), p(0)))
        .memory(space)
        .horizon(60_000)
        .stats_checkpoints(12)
        .sample_every(100)
        .run();
    let leader = report.elected_leader().expect("stabilizes");
    // Compare the footprint of the 3/4 point against the end of the run.
    let checkpoints = &report.footprints;
    assert!(checkpoints.len() >= 4);
    let mid = &checkpoints[checkpoints.len() * 3 / 4].1;
    let last = &checkpoints[checkpoints.len() - 1].1;
    let grown = last.grown_since(mid);
    let allowed = format!("PROGRESS[{}]", leader.index());
    for name in grown {
        assert_eq!(name, allowed, "only the leader's PROGRESS entry may grow");
    }
}

#[test]
fn alg2_all_registers_bounded_and_everyone_writes() {
    // Theorems 6 + 7 + Corollary 1.
    let sys = OmegaVariant::Alg2.build(4);
    let space = sys.space.clone();
    let report = Simulation::builder(sys.actors)
        .adversary(awb(SeededRandom::new(31, 1, 6), p(0)))
        .memory(space)
        .horizon(60_000)
        .stats_checkpoints(12)
        .sample_every(100)
        .run();
    let leader = report.elected_leader().expect("stabilizes");

    // Boundedness: nothing grows in the last quarter.
    let checkpoints = &report.footprints;
    let mid = &checkpoints[checkpoints.len() * 3 / 4].1;
    let last = &checkpoints[checkpoints.len() - 1].1;
    assert!(
        last.grown_since(mid).is_empty(),
        "Algorithm 2 must keep every register bounded, grew: {:?}",
        last.grown_since(mid)
    );

    // Everyone writes forever (Corollary 1): every correct process wrote in
    // the final quarter.
    let tail = report.windowed.tail(0.25).unwrap();
    for pid in ProcessId::all(4) {
        assert!(
            tail.stats.writes_of(pid) > 0,
            "{pid} stopped writing — impossible for a bounded-memory Ω"
        );
    }

    // Theorem 7: the written registers are exactly the leader's signal row
    // and its acknowledgement column (plus nothing else).
    for name in tail.stats.written_registers() {
        let signal = name.starts_with(&format!("HPROGRESS[{}][", leader.index()));
        let ack = name.starts_with(&format!("LAST[{}][", leader.index()));
        assert!(
            signal || ack,
            "unexpected post-stabilization write target: {name}"
        );
    }
}

#[test]
fn no_awb_allows_perpetual_instability() {
    // Necessity, experiment E13: with no AWB₁ clamp, a leader-stalling
    // adversary keeps starving whoever gets elected; the run must not reach
    // a stable suffix covering the final third of the horizon.
    let sys = OmegaVariant::Alg1.build(3);
    let report = Simulation::builder(sys.actors)
        .adversary(LeaderStaller::new(2, 4_000))
        .timers_from(|_| Box::new(StuckLowTimer::new(8)))
        .horizon(120_000)
        .sample_every(100)
        .run();
    assert!(
        !report.stabilized_for(0.34),
        "leader-staller without AWB should keep demoting leaders; got {:?}",
        report.stabilization()
    );
}

#[test]
fn deterministic_replay_across_runs() {
    let run = || {
        let sys = OmegaVariant::Alg1.build(4);
        let space = sys.space.clone();
        Simulation::builder(sys.actors)
            .adversary(awb(SeededRandom::new(77, 1, 9), p(0)))
            .memory(space)
            .horizon(20_000)
            .sample_every(100)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.steps_taken, b.steps_taken);
    assert_eq!(a.elected_leader(), b.elected_leader());
    assert_eq!(
        a.windowed.snapshots().last().unwrap().1.total_writes(),
        b.windowed.snapshots().last().unwrap().1.total_writes()
    );
}
