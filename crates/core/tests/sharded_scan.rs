//! The sharded/epoch-cached scan must be invisible to the election.
//!
//! `leader()` now answers from an epoch-validated local cache of the
//! `SUSPICIONS` matrix, and `T3` scans round-robin shards instead of the
//! whole system. Neither layer may change *what is elected*: at every
//! observable point, `leader()` must equal the Figure-2 reference — the
//! least-suspected member of the process's candidate set, computed from a
//! direct (unattributed) read of the whole shared matrix.
//!
//! Seeded-loop property tests (the repo's no-dependency stand-in for
//! proptest): randomized initial matrices, randomized schedules, every
//! seed asserted, failures reproducible from the seed.

use std::sync::Arc;

use omega_core::{
    elect_least_suspected, Alg1Memory, Alg1Process, Alg2Memory, Alg2Process, CandidateInit,
    MwmrMemory, MwmrProcess, OmegaProcess,
};
use omega_registers::{MemorySpace, ProcessId};

/// xorshift64* — deterministic pseudo-randomness from a seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// The Figure-2 reference election for `proc`: least-suspected candidate
/// by *global* suspicion totals, read directly off the shared memory.
fn reference_leader_alg1(mem: &Alg1Memory, proc: &Alg1Process) -> ProcessId {
    elect_least_suspected(proc.candidates(), |k| mem.peek_total_suspicions(k))
        .expect("candidates always contain self")
}

#[test]
fn sharded_leader_matches_full_scan_reference_on_random_matrices() {
    for seed in 0..40 {
        let mut rng = Rng::new(seed);
        let n = 3 + (rng.below(10) as usize); // 3..=12
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        // Arbitrary initial shared state (footnote 7).
        mem.corrupt(rng.next());
        // Processes created after corruption, with narrow shards so that
        // n > shard exercises the round-robin slicing.
        let mut procs: Vec<Alg1Process> = ProcessId::all(n)
            .map(|pid| {
                Alg1Process::new(Arc::clone(&mem), pid).with_scan_shard(1 + (rng.below(4) as usize))
            })
            .collect();
        // Random schedule of T2 steps and T3 passes; after every event the
        // stepped process's election must match the reference.
        for _ in 0..200 {
            let i = rng.below(n as u64) as usize;
            if rng.below(2) == 0 {
                procs[i].t2_step();
            } else {
                let _ = procs[i].on_timer_expire();
            }
            let observed = procs[i].leader();
            let expected = reference_leader_alg1(&mem, &procs[i]);
            assert_eq!(
                observed, expected,
                "seed {seed}: p{i} diverged from the full-scan reference"
            );
        }
        // And every process agrees with its own reference at the end.
        for proc in &procs {
            assert_eq!(proc.leader(), reference_leader_alg1(&mem, proc));
        }
    }
}

#[test]
fn alg2_sharded_leader_matches_reference() {
    for seed in 0..25 {
        let mut rng = Rng::new(0xa162 ^ seed);
        let n = 3 + (rng.below(8) as usize);
        let space = MemorySpace::new(n);
        let mem = Alg2Memory::new(&space);
        mem.corrupt(rng.next());
        let mut procs: Vec<Alg2Process> = ProcessId::all(n)
            .map(|pid| {
                Alg2Process::with_candidates(Arc::clone(&mem), pid, CandidateInit::Full)
                    .with_scan_shard(1 + (rng.below(3) as usize))
            })
            .collect();
        for _ in 0..150 {
            let i = rng.below(n as u64) as usize;
            if rng.below(2) == 0 {
                procs[i].t2_step();
            } else {
                let _ = procs[i].on_timer_expire();
            }
            let proc = &procs[i];
            let expected = elect_least_suspected(proc.candidates(), |k| {
                ProcessId::all(n)
                    .map(|j| mem.peek_suspicions(j, k))
                    .sum::<u64>()
            })
            .unwrap();
            assert_eq!(proc.leader(), expected, "seed {seed}: p{i} diverged");
        }
    }
}

#[test]
fn mwmr_cached_leader_matches_shared_counters() {
    for seed in 0..25 {
        let mut rng = Rng::new(0x3575 ^ seed);
        let n = 3 + (rng.below(8) as usize);
        let space = MemorySpace::new(n);
        let mem = MwmrMemory::new(&space);
        let mut procs: Vec<MwmrProcess> = ProcessId::all(n)
            .map(|pid| MwmrProcess::new(Arc::clone(&mem), pid))
            .collect();
        for _ in 0..150 {
            let i = rng.below(n as u64) as usize;
            if rng.below(2) == 0 {
                procs[i].t2_step();
            } else {
                let _ = procs[i].on_timer_expire();
            }
            let proc = &procs[i];
            let expected =
                elect_least_suspected(proc.candidates(), |k| mem.peek_suspicions(k)).unwrap();
            assert_eq!(proc.leader(), expected, "seed {seed}: p{i} diverged");
        }
    }
}

#[test]
fn quiescent_leader_queries_cost_no_shared_reads() {
    // After a run settles, repeated leader() calls must be read-free: the
    // whole point of the epoch layer.
    let n = 8;
    let space = MemorySpace::new(n);
    let mem = Alg1Memory::new(&space);
    let mut procs: Vec<Alg1Process> = ProcessId::all(n)
        .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
        .collect();
    for _ in 0..30 {
        for proc in procs.iter_mut() {
            proc.t2_step();
            let _ = proc.on_timer_expire();
        }
    }
    let before = space.stats();
    let skipped_before = before.scan().reads_skipped;
    for proc in &procs {
        let _ = proc.leader();
    }
    let after = space.stats();
    assert_eq!(
        after.total_reads(),
        before.total_reads(),
        "quiescent leader() must not touch shared memory"
    );
    assert!(
        after.scan().reads_skipped > skipped_before,
        "the skips must be accounted"
    );
}

#[test]
fn shard_passes_are_counted() {
    let n = 40; // > T3_SHARD_SIZE: multiple passes per full rotation
    assert!(n > omega_core::T3_SHARD_SIZE);
    let space = MemorySpace::new(n);
    let mem = Alg1Memory::new(&space);
    let mut proc = Alg1Process::new(mem, ProcessId::new(0));
    let rotations = n.div_ceil(omega_core::T3_SHARD_SIZE);
    for _ in 0..rotations {
        let _ = proc.on_timer_expire();
    }
    assert_eq!(space.stats().scan().shard_passes, rotations as u64);
}
