//! Section 3.5(b): eliminating local clocks with a counted-step timer.
//!
//! The paper notes that the hardware timers (and the local clocks behind
//! them) can be removed entirely: replace task `T3`'s timer with a local
//! countdown that is decremented once per pass of a loop, under the sole
//! assumption that each decrement takes **at least one time unit**. In the
//! simulator this assumption holds by construction — every scheduled step
//! is at least one tick after the previous one.
//!
//! [`StepClockProcess`] wraps any [`OmegaProcess`] and folds the timer into
//! the main task: each `t2_step` performs one `T2` iteration *and* one
//! countdown decrement, running the wrapped `T3` body when the countdown
//! reaches zero. The real timer is armed once with [`NEVER_TIMEOUT`] and
//! plays no further role.

use omega_registers::ProcessId;

use crate::OmegaProcess;

/// Timeout value used to park the hardware timer of a step-clock process:
/// effectively "never" for any practical horizon.
pub const NEVER_TIMEOUT: u64 = u64::MAX / 4;

/// Clock-free wrapper: drives the inner process's timer task from a step
/// counter instead of a hardware timer.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omega_core::{Alg1Memory, Alg1Process, OmegaProcess, StepClockProcess};
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let memory = Alg1Memory::new(&space);
/// let inner = Alg1Process::new(memory, ProcessId::new(0));
/// let mut proc = StepClockProcess::new(inner);
///
/// proc.t2_step(); // runs T2 and ticks the virtual timer
/// assert_eq!(proc.initial_timeout(), omega_core::NEVER_TIMEOUT);
/// ```
#[derive(Debug)]
pub struct StepClockProcess<P> {
    inner: P,
    /// Steps remaining until the virtual timer "expires".
    countdown: u64,
    /// Timer-task executions performed so far (diagnostics).
    virtual_fires: u64,
}

impl<P: OmegaProcess> StepClockProcess<P> {
    /// Wraps `inner`, arming the virtual timer with its initial timeout.
    #[must_use]
    pub fn new(inner: P) -> Self {
        let countdown = inner.initial_timeout().max(1);
        StepClockProcess {
            inner,
            countdown,
            virtual_fires: 0,
        }
    }

    /// The wrapped process.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Number of virtual timer expirations handled so far.
    #[must_use]
    pub fn virtual_fires(&self) -> u64 {
        self.virtual_fires
    }
}

impl<P: OmegaProcess> OmegaProcess for StepClockProcess<P> {
    fn pid(&self) -> ProcessId {
        self.inner.pid()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn leader(&self) -> ProcessId {
        self.inner.leader()
    }

    fn t2_step(&mut self) {
        self.inner.t2_step();
        self.countdown = self.countdown.saturating_sub(1);
        if self.countdown == 0 {
            self.countdown = self.inner.on_timer_expire().max(1);
            self.virtual_fires += 1;
        }
    }

    /// The hardware timer never drives this process; if it does fire, the
    /// expiration is absorbed and the timer re-parked.
    fn on_timer_expire(&mut self) -> u64 {
        NEVER_TIMEOUT
    }

    fn initial_timeout(&self) -> u64 {
        NEVER_TIMEOUT
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.inner.cached_leader()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::{Alg1Memory, Alg1Process};
    use omega_registers::MemorySpace;
    use std::sync::Arc;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn wrapped_system(n: usize) -> Vec<StepClockProcess<Alg1Process>> {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        ProcessId::all(n)
            .map(|pid| StepClockProcess::new(Alg1Process::new(Arc::clone(&mem), pid)))
            .collect()
    }

    #[test]
    fn virtual_timer_fires_on_schedule() {
        let mut procs = wrapped_system(2);
        // Initial timeout of Alg1 with clean state is 1: first step fires.
        procs[1].t2_step();
        assert_eq!(procs[1].virtual_fires(), 1);
        // Next timeout is still small; several steps keep firing.
        for _ in 0..5 {
            procs[1].t2_step();
        }
        assert!(procs[1].virtual_fires() >= 2);
    }

    #[test]
    fn hardware_timer_is_parked() {
        let mut procs = wrapped_system(2);
        assert_eq!(procs[0].initial_timeout(), NEVER_TIMEOUT);
        assert_eq!(procs[0].on_timer_expire(), NEVER_TIMEOUT);
        assert_eq!(
            procs[0].virtual_fires(),
            0,
            "hardware expiry does not run T3"
        );
    }

    #[test]
    fn delegates_identity_and_election() {
        let mut procs = wrapped_system(3);
        assert_eq!(procs[2].pid(), p(2));
        assert_eq!(procs[2].n(), 3);
        assert_eq!(procs[2].leader(), p(0));
        procs[2].t2_step();
        assert_eq!(procs[2].cached_leader(), Some(p(0)));
        assert_eq!(procs[2].inner().pid(), p(2));
    }

    #[test]
    fn converges_without_any_timer() {
        let mut procs = wrapped_system(3);
        for _ in 0..60 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
        }
        let leaders: Vec<ProcessId> = procs.iter().map(|q| q.leader()).collect();
        assert!(
            leaders.windows(2).all(|w| w[0] == w[1]),
            "step-clock processes agree: {leaders:?}"
        );
    }
}
