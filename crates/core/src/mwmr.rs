//! Section 3.5(a): Algorithm 1 over nWnR registers.
//!
//! With multi-writer/multi-reader atomic registers, each column
//! `SUSPICIONS[·][k]` of the Figure-2 matrix collapses into a single shared
//! counter `SUSPICIONS[k]`: `n` registers instead of `n²`. A suspicion is
//! then a read-increment-write on the shared counter; concurrent increments
//! may overlap (an increment can be lost), which is harmless for the
//! algorithm's properties — the counter still only grows when some process
//! suspects `k`, and it stops growing exactly when suspicions stop.

use std::cell::RefCell;
use std::sync::Arc;

use omega_registers::{
    EpochedMwmrNatArray, FlagArray, MemorySpace, NatArray, ProcessId, ProcessSet,
};

use crate::alg1::{ShardCursor, T3_SHARD_SIZE};
use crate::candidates::{elect_least_suspected, CandidateInit};
use crate::OmegaProcess;

/// Epoch-validated local view of the shared suspicion counters: slot `k`
/// is re-read only when its modification epoch moved.
#[derive(Debug)]
struct CounterCache {
    seen: Vec<u64>,
    /// Array-global epoch of the last validation pass; `u64::MAX` = none
    /// yet. While it matches, `refresh` is O(1) (see
    /// [`SuspicionCache`](crate::alg1)).
    seen_global: u64,
    values: Vec<u64>,
    /// `max(values)`, recomputed only when a refresh re-reads something —
    /// the timeout formula's O(1) fast path.
    values_max: u64,
}

impl CounterCache {
    fn new(n: usize) -> Self {
        CounterCache {
            seen: vec![u64::MAX; n],
            seen_global: u64::MAX,
            values: vec![0; n],
            values_max: 0,
        }
    }

    /// Returns whether any slot was re-read (election-cache invalidation).
    fn refresh(&mut self, counters: &EpochedMwmrNatArray, reader: ProcessId) -> bool {
        // Global epoch first (read before any slot work, so a racing write
        // forces the next refresh down the slow path): unchanged means
        // every slot epoch is unchanged — skip the walk, credit the batch.
        let global = counters.version();
        if self.seen_global == global {
            counters.note_slots_skipped(counters.len() as u64);
            return false;
        }
        // Cold cache (every slot stale — the sentinel state of a fresh
        // process): take one batched array snapshot instead of n
        // version-checked single reads.
        if self.seen.iter().all(|&v| v == u64::MAX) {
            for (k, seen) in self.seen.iter_mut().enumerate() {
                *seen = counters.slot_version(k);
            }
            counters.array().snapshot_into(reader, &mut self.values);
            counters.counters().note_snapshot();
            self.values_max = self.values.iter().copied().max().unwrap_or(0);
            self.seen_global = global;
            return true;
        }
        let mut skipped = 0;
        let mut changed = false;
        for k in 0..counters.len() {
            if self.seen[k] == counters.slot_version(k) {
                skipped += 1;
                continue;
            }
            let (version, value) = counters.read_versioned(k, reader);
            self.values[k] = value;
            self.seen[k] = version;
            changed = true;
        }
        if skipped > 0 {
            counters.note_slots_skipped(skipped);
        }
        if changed {
            self.values_max = self.values.iter().copied().max().unwrap_or(0);
        }
        self.seen_global = global;
        changed
    }
}

/// Shared register layout of the nWnR variant: `PROGRESS`/`STOP` as in
/// Figure 2, plus a single multi-writer suspicion counter per process.
#[derive(Debug)]
pub struct MwmrMemory {
    n: usize,
    progress: NatArray,
    stop: FlagArray,
    suspicions: EpochedMwmrNatArray,
}

impl MwmrMemory {
    /// Allocates the variant's registers in `space`.
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(MwmrMemory {
            n,
            progress: space.nat_array("PROGRESS", |_| 0),
            stop: space.flag_array("STOP", |_| true),
            suspicions: space.epoched_nat_mwmr_array("SUSPICIONS", n, |_| 0),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of the shared suspicion counter of `k`.
    #[must_use]
    pub fn peek_suspicions(&self, k: ProcessId) -> u64 {
        self.suspicions.get(k.index()).peek()
    }

    /// Unattributed view of `PROGRESS[k]`.
    #[must_use]
    pub fn peek_progress(&self, k: ProcessId) -> u64 {
        self.progress.get(k).peek()
    }
}

/// One process of the nWnR variant.
#[derive(Debug)]
pub struct MwmrProcess {
    pid: ProcessId,
    mem: Arc<MwmrMemory>,
    candidates: ProcessSet,
    last: Vec<u64>,
    last_valid: Vec<bool>,
    my_progress: u64,
    my_stop: bool,
    cached: Option<ProcessId>,
    /// Epoch-validated view of the shared suspicion counters.
    scan: RefCell<CounterCache>,
    /// Memoized `T1` winner (see [`Alg1Process`](crate::Alg1Process));
    /// `None` = stale.
    election: std::cell::Cell<Option<ProcessId>>,
    /// Round-robin cursor of the sharded `T3` scan.
    t3_cursor: ShardCursor,
}

impl MwmrProcess {
    /// Creates process `pid` over `mem`, initially trusting everyone.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the memory's system size.
    #[must_use]
    pub fn new(mem: Arc<MwmrMemory>, pid: ProcessId) -> Self {
        let n = mem.n();
        assert!(pid.index() < n, "{pid} out of range for n={n}");
        let my_progress = mem.progress.get(pid).peek();
        let my_stop = mem.stop.get(pid).peek();
        MwmrProcess {
            pid,
            candidates: CandidateInit::Full.materialize(n, pid),
            last: vec![0; n],
            last_valid: vec![false; n],
            my_progress,
            my_stop,
            cached: None,
            scan: RefCell::new(CounterCache::new(n)),
            election: std::cell::Cell::new(None),
            t3_cursor: ShardCursor::new(n, T3_SHARD_SIZE),
            mem,
        }
    }

    /// The shared memory this process runs over.
    #[must_use]
    pub fn memory(&self) -> &Arc<MwmrMemory> {
        &self.mem
    }

    /// Current candidate set (test/diagnostic view).
    #[must_use]
    pub fn candidates(&self) -> &ProcessSet {
        &self.candidates
    }
}

impl OmegaProcess for MwmrProcess {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    fn leader(&self) -> ProcessId {
        let mut scan = self.scan.borrow_mut();
        let changed = scan.refresh(&self.mem.suspicions, self.pid);
        if changed {
            self.election.set(None);
        } else if let Some(winner) = self.election.get() {
            return winner;
        }
        let winner = elect_least_suspected(&self.candidates, |k| scan.values[k.index()])
            .expect("candidates always contain self");
        self.election.set(Some(winner));
        winner
    }

    fn t2_step(&mut self) {
        let leader = self.leader();
        self.cached = Some(leader);
        if leader == self.pid {
            self.my_progress = self.my_progress.wrapping_add(1);
            self.mem
                .progress
                .get(self.pid)
                .write(self.pid, self.my_progress);
            if self.my_stop {
                self.my_stop = false;
                self.mem.stop.get(self.pid).write(self.pid, false);
            }
        } else if !self.my_stop {
            self.my_stop = true;
            self.mem.stop.get(self.pid).write(self.pid, true);
        }
    }

    fn on_timer_expire(&mut self) -> u64 {
        // The scan below may change `candidates` and the shared counters —
        // election inputs.
        self.election.set(None);
        for idx in self.t3_cursor.advance() {
            let k = ProcessId::new(idx);
            if k == self.pid {
                continue;
            }
            let stop_k = self.mem.stop.get(k).read(self.pid);
            let progress_k = self.mem.progress.get(k).read(self.pid);
            let fresh = !self.last_valid[k.index()] || progress_k != self.last[k.index()];
            if fresh {
                self.candidates.insert(k);
                self.last[k.index()] = progress_k;
                self.last_valid[k.index()] = true;
            } else if stop_k {
                self.candidates.remove(k);
            } else if self.candidates.contains(k) {
                // Read-increment-write on the shared counter; increments may
                // race and be lost, which the variant tolerates.
                let bumped = self.mem.suspicions.get(k.index()).read(self.pid) + 1;
                self.mem.suspicions.write(k.index(), self.pid, bumped);
                self.candidates.remove(k);
            }
        }
        self.mem.suspicions.counters().note_shard_pass();
        // Line 27 analogue: the timeout tracks the largest suspicion count
        // this process can observe — from the epoch-validated cache, so
        // clean counters cost no shared reads (and no O(n) rescan).
        let mut scan = self.scan.borrow_mut();
        scan.refresh(&self.mem.suspicions, self.pid);
        scan.values_max + 1
    }

    fn initial_timeout(&self) -> u64 {
        1
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> (MemorySpace, Arc<MwmrMemory>, Vec<MwmrProcess>) {
        let space = MemorySpace::new(n);
        let mem = MwmrMemory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| MwmrProcess::new(Arc::clone(&mem), pid))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn register_count_is_linear_not_quadratic() {
        let space = MemorySpace::new(8);
        let _mem = MwmrMemory::new(&space);
        // PROGRESS(8) + STOP(8) + SUSPICIONS(8) = 24, vs 8+8+64 for Figure 2.
        assert_eq!(space.register_count(), 24);
    }

    #[test]
    fn any_process_can_bump_any_counter() {
        let (_s, mem, mut procs) = system(3);
        // p0 claims candidacy but stays silent.
        mem.stop.get(p(0)).poke(false);
        let _ = procs[1].on_timer_expire(); // fresh
        let _ = procs[2].on_timer_expire(); // fresh
        let _ = procs[1].on_timer_expire(); // p1 suspects p0
        let _ = procs[2].on_timer_expire(); // p2 suspects p0 (same counter)
        assert_eq!(mem.peek_suspicions(p(0)), 2);
    }

    #[test]
    fn election_follows_shared_counters() {
        let (_s, mem, procs) = system(3);
        mem.suspicions.poke(0, 5);
        mem.suspicions.poke(2, 1);
        for proc in &procs {
            assert_eq!(proc.leader(), p(1));
        }
    }

    #[test]
    fn timeout_tracks_global_max() {
        let (_s, mem, mut procs) = system(2);
        mem.suspicions.poke(0, 9);
        let t = procs[1].on_timer_expire();
        assert_eq!(t, 10);
    }

    #[test]
    fn poke_after_queries_is_observed() {
        // Epoch-bumping poke: a counter corrupted *after* a process has
        // populated its cache must still reach the next election.
        let (_s, mem, procs) = system(3);
        assert_eq!(procs[2].leader(), p(0));
        mem.suspicions.poke(0, 50);
        mem.suspicions.poke(1, 10);
        assert_eq!(procs[2].leader(), p(2), "cache must see the poked counters");
    }

    #[test]
    fn round_robin_converges() {
        let (_s, _m, mut procs) = system(3);
        for _ in 0..30 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
            for proc in procs.iter_mut() {
                let _ = proc.on_timer_expire();
            }
        }
        let leaders: Vec<ProcessId> = procs.iter().map(|q| q.leader()).collect();
        assert!(
            leaders.windows(2).all(|w| w[0] == w[1]),
            "agree: {leaders:?}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_rejected() {
        let space = MemorySpace::new(1);
        let mem = MwmrMemory::new(&space);
        let _ = MwmrProcess::new(mem, p(9));
    }
}
