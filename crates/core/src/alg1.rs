//! Algorithm 1 (Figure 2): the write-efficient Ω for `AS_n[AWB]`.
//!
//! Shared variables (all 1WnR):
//!
//! * `PROGRESS[0..n]` — naturals; `p_i` increments its own entry while it
//!   believes it is the leader (the heartbeat).
//! * `STOP[0..n]` — booleans; `p_i` raises its entry when it stops
//!   competing for leadership.
//! * `SUSPICIONS[0..n][0..n]` — naturals; `SUSPICIONS[i][k]` counts how many
//!   times `p_i` has suspected `p_k`. Row `i` is owned by `p_i`.
//!
//! Per Theorems 1–4, in every AWB run: a single correct leader is
//! eventually elected; all shared variables except the leader's `PROGRESS`
//! entry stay bounded; and after stabilization only the leader writes the
//! shared memory (one register) — which is write-optimal.
//!
//! The paper observes (Section 3.2) that a process may keep local copies of
//! the registers it owns and read those instead of the shared memory; this
//! implementation does so for `PROGRESS[i]`, `STOP[i]` and the
//! `SUSPICIONS[i][·]` row, so the remaining shared *reads* are exactly the
//! ones the model requires.
//!
//! # Scaling past n ≈ 32
//!
//! Two further read-avoidance layers keep `leader()` and `T3` cheap when
//! `n` reaches the hundreds, without changing what is elected:
//!
//! * **Epoch-validated suspicion cache** — the `SUSPICIONS` matrix is an
//!   [`EpochedNatMatrix`]: every suspicion write bumps its row's epoch, and
//!   `leader()` keeps a local copy of each foreign row plus an incremental
//!   per-column aggregate, re-reading a row (via one batched snapshot) only
//!   when its epoch moved. In a quiescent (stabilized) run every row is
//!   clean and `leader()` performs *zero* shared reads.
//! * **Sharded `T3` scan** — each timer expiry scans one round-robin slice
//!   of [`T3_SHARD_SIZE`] processes instead of all `n`. A slice pass is the
//!   paper's lines 13–26 verbatim for the slice members; each process is
//!   still checked on every full rotation, so suspicion accrual merely
//!   slows by the (constant) shard count — the eventual-leadership argument
//!   is unaffected. Systems with `n ≤ ` [`T3_SHARD_SIZE`] scan exactly as
//!   in Figure 2.

use std::cell::RefCell;
use std::sync::Arc;

use omega_registers::{EpochedNatMatrix, FlagArray, MemorySpace, NatArray, ProcessId, ProcessSet};

use crate::candidates::{elect_least_suspected, CandidateInit};
use crate::OmegaProcess;

/// Number of processes examined per sharded `T3` pass (and the threshold
/// below which the scan is unsharded, i.e. exactly the paper's Figure 2).
pub const T3_SHARD_SIZE: usize = 16;

/// Epoch-validated local view of the foreign rows of a `SUSPICIONS`
/// matrix, with an incrementally maintained per-column aggregate.
///
/// Shared by [`Alg1Process`] and [`Alg2Process`](crate::Alg2Process) (the
/// matrix layout is identical in Figures 2 and 5).
#[derive(Debug)]
pub(crate) struct SuspicionCache {
    /// Identity of the owning process (its row is mirrored elsewhere).
    pid: ProcessId,
    /// `rows[j]` — last snapshot of `SUSPICIONS[j][·]` (row `pid` unused).
    rows: Vec<Vec<u64>>,
    /// Row epoch each snapshot was taken at; `u64::MAX` = never read.
    seen: Vec<u64>,
    /// Matrix-global epoch the last full validation pass ran at;
    /// `u64::MAX` = no pass yet. When it still matches, `refresh` is O(1).
    seen_global: u64,
    /// `totals[k] = Σ_{j≠pid} rows[j][k]`.
    totals: Vec<u64>,
    /// Scratch buffer for row snapshots.
    buf: Vec<u64>,
}

impl SuspicionCache {
    pub(crate) fn new(n: usize, pid: ProcessId) -> Self {
        SuspicionCache {
            pid,
            rows: vec![vec![0; n]; n],
            seen: vec![u64::MAX; n],
            seen_global: u64::MAX,
            totals: vec![0; n],
            buf: vec![0; n],
        }
    }

    /// Brings every stale foreign row up to date (one batched snapshot per
    /// dirty row; clean rows cost no shared reads and are credited to the
    /// space's [`ScanCounters`](omega_registers::ScanCounters)). Returns
    /// whether any row was re-read (callers use this to invalidate
    /// election caches).
    ///
    /// Two cost tiers, neither performing a shared read-modify-write on
    /// its hot path:
    ///
    /// * **Quiescent, O(1)** — the matrix-global epoch is unchanged since
    ///   the last pass, which proves every per-row epoch is unchanged; the
    ///   whole loop is skipped and all `n − 1` foreign rows are credited
    ///   as skipped in one batch (exactly what the per-row walk would
    ///   have credited).
    /// * **Dirty, O(n) validation** — walk the row epochs, re-snapshot the
    ///   moved ones, batch-credit the clean ones.
    pub(crate) fn refresh(&mut self, suspicions: &EpochedNatMatrix) -> bool {
        let n = suspicions.n();
        // Read the global epoch *before* the row walk: a write racing the
        // walk leaves `seen_global` behind the bump it missed, so the next
        // refresh takes the slow path and observes it.
        let global = suspicions.version();
        if self.seen_global == global {
            if n > 1 {
                suspicions.note_rows_skipped(n as u64 - 1);
            }
            return false;
        }
        let mut rows_skipped = 0u64;
        let mut changed = false;
        for j in ProcessId::all(n) {
            if j == self.pid {
                continue;
            }
            let version = suspicions.row_version(j);
            if self.seen[j.index()] == version {
                rows_skipped += 1;
                continue;
            }
            let seen = suspicions.snapshot_row_into(j, self.pid, &mut self.buf);
            let old = &mut self.rows[j.index()];
            for ((total, old), new) in self.totals.iter_mut().zip(old.iter_mut()).zip(&self.buf) {
                // total ≥ old by construction: old is one of its summands.
                *total = *total - *old + *new;
                *old = *new;
            }
            self.seen[j.index()] = seen;
            changed = true;
        }
        if rows_skipped > 0 {
            suspicions.note_rows_skipped(rows_skipped);
        }
        self.seen_global = global;
        changed
    }

    /// Cached `Σ_{j≠pid} SUSPICIONS[j][k]`.
    pub(crate) fn foreign_total(&self, k: ProcessId) -> u64 {
        self.totals[k.index()]
    }
}

/// Round-robin cursor over `[0, n)` in slices of at most
/// [`T3_SHARD_SIZE`], for sharded `T3` scans.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardCursor {
    n: usize,
    shard: usize,
    next: usize,
}

impl ShardCursor {
    pub(crate) fn new(n: usize, shard: usize) -> Self {
        ShardCursor {
            n,
            shard: shard.max(1),
            next: 0,
        }
    }

    /// The slice the next pass must scan; advances the cursor.
    pub(crate) fn advance(&mut self) -> std::ops::Range<usize> {
        let start = self.next;
        let end = (start + self.shard).min(self.n);
        self.next = if end >= self.n { 0 } else { end };
        start..end
    }
}

/// The Figure-2 shared register layout.
///
/// One instance is shared (via [`Arc`]) by all `n` [`Alg1Process`]es of a
/// system.
#[derive(Debug)]
pub struct Alg1Memory {
    n: usize,
    progress: NatArray,
    stop: FlagArray,
    suspicions: EpochedNatMatrix,
}

impl Alg1Memory {
    /// Allocates the `PROGRESS`/`STOP`/`SUSPICIONS` registers in `space`
    /// with the paper's initial values (naturals 0, booleans `true`).
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(Alg1Memory {
            n,
            progress: space.nat_array("PROGRESS", |_| 0),
            stop: space.flag_array("STOP", |_| true),
            suspicions: space.epoched_nat_row_matrix("SUSPICIONS", |_, _| 0),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of `PROGRESS[k]`, for harnesses and experiments.
    #[must_use]
    pub fn peek_progress(&self, k: ProcessId) -> u64 {
        self.progress.get(k).peek()
    }

    /// Unattributed view of `STOP[k]`.
    #[must_use]
    pub fn peek_stop(&self, k: ProcessId) -> bool {
        self.stop.get(k).peek()
    }

    /// Unattributed view of `SUSPICIONS[j][k]`.
    #[must_use]
    pub fn peek_suspicions(&self, j: ProcessId, k: ProcessId) -> u64 {
        self.suspicions.get(j, k).peek()
    }

    /// Unattributed total suspicion count of `k`: `Σ_j SUSPICIONS[j][k]`.
    #[must_use]
    pub fn peek_total_suspicions(&self, k: ProcessId) -> u64 {
        ProcessId::all(self.n)
            .map(|j| self.suspicions.get(j, k).peek())
            .sum()
    }

    /// Overwrites every register with arbitrary values derived from `seed`
    /// — the paper's footnote 7 allows arbitrary initial shared state; the
    /// self-stabilization experiments start from here.
    pub fn corrupt(&self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for pid in ProcessId::all(self.n) {
            self.progress.get(pid).poke(next() % 1_000);
            self.stop.get(pid).poke(next() % 2 == 0);
        }
        for j in ProcessId::all(self.n) {
            for k in ProcessId::all(self.n) {
                // Epoch-bumping poke: live processes with a populated scan
                // cache must observe the corruption on their next query.
                self.suspicions.poke(j, k, next() % 100);
            }
        }
    }
}

/// One process of Algorithm 1.
///
/// # Examples
///
/// Driving two processes by hand (outside any scheduler):
///
/// ```
/// use std::sync::Arc;
/// use omega_core::{Alg1Memory, Alg1Process, OmegaProcess};
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let memory = Alg1Memory::new(&space);
/// let mut p0 = Alg1Process::new(Arc::clone(&memory), ProcessId::new(0));
/// let mut p1 = Alg1Process::new(memory, ProcessId::new(1));
///
/// // Both initially trust everyone; identities break the tie: p0 leads.
/// assert_eq!(p0.leader(), ProcessId::new(0));
/// assert_eq!(p1.leader(), ProcessId::new(0));
/// p0.t2_step(); // p0 heartbeats
/// p1.t2_step(); // p1 demotes itself (sets STOP)
/// ```
#[derive(Debug)]
pub struct Alg1Process {
    pid: ProcessId,
    mem: Arc<Alg1Memory>,
    /// `candidates_i` — invariant: always contains `pid`.
    candidates: ProcessSet,
    /// `last_i[k]` — greatest `PROGRESS[k]` value seen (line 19).
    last: Vec<u64>,
    /// Whether `last[k]` holds a real observation yet; arbitrary initial
    /// register values make `0` an unsafe sentinel.
    last_valid: Vec<bool>,
    /// Local mirror of `PROGRESS[pid]` (owner-side copy).
    my_progress: u64,
    /// Local mirror of `STOP[pid]`.
    my_stop: bool,
    /// Local mirror of the owned `SUSPICIONS[pid][·]` row.
    my_suspicions: Vec<u64>,
    /// Running `max_k my_suspicions[k]` — exact, because entries only ever
    /// increment — so the line-27 timeout is O(1) per timer fire instead
    /// of an O(n) rescan.
    my_suspicions_max: u64,
    /// Additive slack of the line-27 timeout (the paper uses 1).
    timeout_slack: u64,
    /// Leader estimate cached from the latest `T2` evaluation.
    cached: Option<ProcessId>,
    /// Epoch-validated view of the foreign `SUSPICIONS` rows (interior
    /// mutability: `leader()` is a `&self` query but refreshes the cache).
    scan: RefCell<SuspicionCache>,
    /// Memoized `T1` election result, valid while its inputs — the scan
    /// cache totals, `candidates`, and the mirrored own suspicion row —
    /// are unchanged. `None` = stale, recompute.
    election: std::cell::Cell<Option<ProcessId>>,
    /// Round-robin cursor of the sharded `T3` scan.
    t3_cursor: ShardCursor,
}

impl Alg1Process {
    /// Creates process `pid` over `mem`, initially trusting everyone.
    #[must_use]
    pub fn new(mem: Arc<Alg1Memory>, pid: ProcessId) -> Self {
        Alg1Process::with_candidates(mem, pid, CandidateInit::Full)
    }

    /// Creates process `pid` with an explicit initial candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the memory's system size.
    #[must_use]
    pub fn with_candidates(mem: Arc<Alg1Memory>, pid: ProcessId, init: CandidateInit) -> Self {
        let n = mem.n();
        assert!(pid.index() < n, "{pid} out of range for n={n}");
        // Owner-side mirrors start from the *actual* register contents so
        // that a corrupted initial state is handled like the paper requires
        // (the algorithm is self-stabilizing w.r.t. shared variables).
        let my_progress = mem.progress.get(pid).peek();
        let my_stop = mem.stop.get(pid).peek();
        let my_suspicions: Vec<u64> = ProcessId::all(n)
            .map(|k| mem.suspicions.get(pid, k).peek())
            .collect();
        let my_suspicions_max = my_suspicions.iter().copied().max().unwrap_or(0);
        Alg1Process {
            pid,
            candidates: init.materialize(n, pid),
            last: vec![0; n],
            last_valid: vec![false; n],
            my_progress,
            my_stop,
            my_suspicions,
            my_suspicions_max,
            timeout_slack: 1,
            cached: None,
            scan: RefCell::new(SuspicionCache::new(n, pid)),
            election: std::cell::Cell::new(None),
            t3_cursor: ShardCursor::new(n, T3_SHARD_SIZE),
            mem,
        }
    }

    /// Overrides the width of the sharded `T3` scan (default
    /// [`T3_SHARD_SIZE`]); `shard ≥ n` restores the paper's full scan.
    /// Provided for the shard-size experiments and the parity tests.
    ///
    /// # Panics
    ///
    /// Panics if `shard == 0`.
    #[must_use]
    pub fn with_scan_shard(mut self, shard: usize) -> Self {
        assert!(shard >= 1, "a T3 pass must scan at least one process");
        self.t3_cursor = ShardCursor::new(self.mem.n(), shard);
        self
    }

    /// Sets the additive slack of the timer formula (Figure 2, line 27
    /// uses `max_k SUSPICIONS[i][k] + 1`, i.e. slack 1). Larger slack makes
    /// followers more patient: fewer spurious suspicions during chaotic
    /// periods, slower reaction to a genuinely crashed leader. Provided for
    /// the ablation experiments; correctness holds for any slack ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics if `slack == 0` (the timeout must exceed the suspicion max
    /// for Lemma 2's argument to apply).
    #[must_use]
    pub fn with_timeout_slack(mut self, slack: u64) -> Self {
        assert!(slack >= 1, "timeout slack must be at least 1");
        self.timeout_slack = slack;
        self
    }

    /// The shared memory this process runs over.
    #[must_use]
    pub fn memory(&self) -> &Arc<Alg1Memory> {
        &self.mem
    }

    /// Current candidate set (test/diagnostic view).
    #[must_use]
    pub fn candidates(&self) -> &ProcessSet {
        &self.candidates
    }

    /// Total suspicions of candidate `k` as seen by this process —
    /// `Σ_j SUSPICIONS[j][k]` (line 3) — from the refreshed cache plus the
    /// locally mirrored own row. Callers must `refresh` the cache first.
    fn total_suspicions(&self, scan: &SuspicionCache, k: ProcessId) -> u64 {
        scan.foreign_total(k) + self.my_suspicions[k.index()]
    }
}

impl OmegaProcess for Alg1Process {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    /// Task `T1` (lines 1–5): elect the least-suspected candidate.
    ///
    /// Reads only the `SUSPICIONS` rows whose epoch moved since the last
    /// query; in a stabilized run this performs no shared reads at all,
    /// and — because the election's inputs are then provably unchanged —
    /// serves the memoized winner without rescanning the candidate set.
    fn leader(&self) -> ProcessId {
        let mut scan = self.scan.borrow_mut();
        let changed = scan.refresh(&self.mem.suspicions);
        if changed {
            self.election.set(None);
        } else if let Some(winner) = self.election.get() {
            return winner;
        }
        let winner = elect_least_suspected(&self.candidates, |k| self.total_suspicions(&scan, k))
            .expect("candidates always contain self");
        self.election.set(Some(winner));
        winner
    }

    /// One iteration of task `T2` (lines 6–12).
    fn t2_step(&mut self) {
        let leader = self.leader();
        self.cached = Some(leader);
        if leader == self.pid {
            // Line 8: heartbeat.
            self.my_progress = self.my_progress.wrapping_add(1);
            self.mem
                .progress
                .get(self.pid)
                .write(self.pid, self.my_progress);
            // Line 9: announce candidacy.
            if self.my_stop {
                self.my_stop = false;
                self.mem.stop.get(self.pid).write(self.pid, false);
            }
        } else {
            // Line 11: withdraw.
            if !self.my_stop {
                self.my_stop = true;
                self.mem.stop.get(self.pid).write(self.pid, true);
            }
        }
    }

    /// Task `T3` body (lines 13–27) over one round-robin shard of at most
    /// [`T3_SHARD_SIZE`] processes (the whole system when `n` fits in one
    /// shard). Returns the next timeout value `max_k SUSPICIONS[i][k] + 1`.
    fn on_timer_expire(&mut self) -> u64 {
        // The scan below may change `candidates` and the own suspicion row
        // — both election inputs.
        self.election.set(None);
        for idx in self.t3_cursor.advance() {
            let k = ProcessId::new(idx);
            if k == self.pid {
                continue;
            }
            // Lines 15–16.
            let stop_k = self.mem.stop.get(k).read(self.pid);
            let progress_k = self.mem.progress.get(k).read(self.pid);
            let fresh = !self.last_valid[k.index()] || progress_k != self.last[k.index()];
            if fresh {
                // Lines 17–19: k made progress — it is a live candidate.
                self.candidates.insert(k);
                self.last[k.index()] = progress_k;
                self.last_valid[k.index()] = true;
            } else if stop_k {
                // Lines 20–21: k resigned voluntarily.
                self.candidates.remove(k);
            } else if self.candidates.contains(k) {
                // Lines 22–24: suspect k.
                let bumped = self.my_suspicions[k.index()] + 1;
                self.my_suspicions[k.index()] = bumped;
                self.my_suspicions_max = self.my_suspicions_max.max(bumped);
                self.mem.suspicions.write(self.pid, k, self.pid, bumped);
                self.candidates.remove(k);
            }
        }
        self.mem.suspicions.counters().note_shard_pass();
        // Line 27 — computed entirely from owned (mirrored) registers.
        self.my_suspicions_max + self.timeout_slack
    }

    fn initial_timeout(&self) -> u64 {
        self.my_suspicions_max + self.timeout_slack
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> (MemorySpace, Arc<Alg1Memory>, Vec<Alg1Process>) {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn initial_leader_is_smallest_id() {
        let (_s, _m, procs) = system(4);
        for proc in &procs {
            assert_eq!(proc.leader(), p(0));
        }
    }

    #[test]
    fn t2_heartbeats_only_for_leader() {
        let (_s, mem, mut procs) = system(3);
        procs[0].t2_step();
        procs[1].t2_step();
        procs[2].t2_step();
        assert_eq!(mem.peek_progress(p(0)), 1);
        assert_eq!(mem.peek_progress(p(1)), 0);
        assert!(!mem.peek_stop(p(0)), "leader lowers its STOP flag");
        assert!(mem.peek_stop(p(1)), "followers raise STOP");
        assert_eq!(procs[1].cached_leader(), Some(p(0)));
    }

    #[test]
    fn t3_detects_progress_and_suspects_silent_candidates() {
        let (_s, mem, mut procs) = system(2);
        // p0 heartbeats once; p1's first scan observes fresh progress.
        procs[0].t2_step();
        let timeout = procs[1].on_timer_expire();
        assert!(procs[1].candidates().contains(p(0)));
        assert_eq!(timeout, 1, "no suspicions yet: timeout = 0 + 1");
        // p0 stays silent with STOP low: second scan suspects it.
        let _ = procs[1].on_timer_expire();
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 1);
        assert!(!procs[1].candidates().contains(p(0)));
        // Timeout grew with the suspicion row.
        assert_eq!(procs[1].initial_timeout(), 2);
    }

    #[test]
    fn t3_respects_voluntary_stop() {
        let (_s, mem, mut procs) = system(2);
        // p1 resigns: STOP[1] stays true (initial) and no progress is made.
        // First scan by p0: PROGRESS[1] == 0 == last sentinel, but the
        // sentinel is invalid so the first scan treats it as fresh.
        let _ = procs[0].on_timer_expire();
        assert!(procs[0].candidates().contains(p(1)));
        // Second scan: no progress, STOP set → removed without suspicion.
        let _ = procs[0].on_timer_expire();
        assert!(!procs[0].candidates().contains(p(1)));
        assert_eq!(
            mem.peek_suspicions(p(0), p(1)),
            0,
            "no suspicion on voluntary stop"
        );
    }

    #[test]
    fn election_uses_global_suspicion_totals() {
        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        // Totals: p0 → 2+1 = 3, p1 → 2, p2 → 4. Poke before spawning so the
        // owner-side mirrors pick the values up.
        mem.suspicions.get(p(1), p(0)).poke(2);
        mem.suspicions.get(p(2), p(0)).poke(1);
        mem.suspicions.get(p(0), p(1)).poke(2);
        mem.suspicions.get(p(0), p(2)).poke(4);
        let procs: Vec<Alg1Process> = ProcessId::all(3)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        for proc in &procs {
            assert_eq!(
                proc.leader(),
                p(1),
                "{} must elect the least suspected",
                proc.pid()
            );
        }
    }

    #[test]
    fn silent_self_proclaimed_candidate_gets_suspected_and_demoted() {
        let (_s, mem, mut procs) = system(2);
        // p0 claims candidacy (STOP low) but never heartbeats.
        mem.stop.get(p(0)).poke(false);
        let _ = procs[1].on_timer_expire(); // first scan: fresh (sentinel)
        let _ = procs[1].on_timer_expire(); // silent + STOP low → suspected
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 1);
        assert_eq!(procs[1].leader(), p(1), "suspect removed from candidates");
    }

    #[test]
    fn own_candidacy_never_dropped() {
        let (_s, _m, mut procs) = system(3);
        for _ in 0..5 {
            for proc in procs.iter_mut() {
                proc.t2_step();
                let _ = proc.on_timer_expire();
            }
        }
        for proc in &procs {
            assert!(proc.candidates().contains(proc.pid()));
        }
    }

    #[test]
    fn wrapping_progress_still_registers_as_fresh() {
        let (_s, mem, mut procs) = system(2);
        mem.progress.get(p(0)).poke(u64::MAX);
        let mut proc0 = Alg1Process::new(Arc::clone(&mem), p(0));
        // Scan once so p1's `last` records MAX.
        let _ = procs[1].on_timer_expire();
        // Owner mirrors picked up the corrupted value and wrap on heartbeat.
        proc0.t2_step();
        assert_eq!(mem.peek_progress(p(0)), 0, "wrapped");
        let _ = procs[1].on_timer_expire();
        assert!(
            procs[1].candidates().contains(p(0)),
            "wrap is still progress"
        );
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 0);
    }

    #[test]
    fn foreign_row_pokes_reach_a_populated_cache() {
        // Harness-side pokes go through the epoch-bumping path, so a
        // process whose scan cache is already warm must observe them on
        // its very next query (the own row stays mirrored, per §3.2 —
        // only foreign rows are at stake).
        let (_s, mem, procs) = system(3);
        assert_eq!(procs[0].leader(), p(0), "warm the cache");
        mem.suspicions.poke(p(1), p(0), 40);
        mem.suspicions.poke(p(2), p(0), 2);
        mem.suspicions.poke(p(1), p(2), 1);
        // New totals as p0 sees them: p0 → 42, p1 → 0, p2 → 1.
        assert_eq!(
            procs[0].leader(),
            p(1),
            "a populated cache must not serve pre-poke totals"
        );
    }

    #[test]
    fn corrupt_produces_arbitrary_but_deterministic_state() {
        let (_s, mem, _) = system(3);
        mem.corrupt(42);
        let a: Vec<u64> = ProcessId::all(3).map(|k| mem.peek_progress(k)).collect();
        let (_s2, mem2, _) = {
            let space = MemorySpace::new(3);
            let m = Alg1Memory::new(&space);
            (space, m, ())
        };
        mem2.corrupt(42);
        let b: Vec<u64> = ProcessId::all(3).map(|k| mem2.peek_progress(k)).collect();
        assert_eq!(a, b, "same seed, same corruption");
        assert_eq!(mem.n(), 3);
    }

    #[test]
    fn mirrors_initialized_from_corrupted_registers() {
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        mem.suspicions.get(p(0), p(1)).poke(41);
        let mut proc = Alg1Process::new(Arc::clone(&mem), p(0));
        // Timeout derives from the mirrored corrupted row (41 + 1).
        assert_eq!(proc.initial_timeout(), 42);
        // First scan observes p1 as fresh (sentinel invalid); second scan
        // sees STOP[1] = true (initial), so p1 resigns without a suspicion.
        let _ = proc.on_timer_expire();
        let _ = proc.on_timer_expire();
        assert_eq!(
            mem.peek_suspicions(p(0), p(1)),
            41,
            "voluntary stop: count unchanged"
        );
        // Once p1 claims candidacy without progressing, the suspicion
        // continues from the corrupted count — but only after p1 re-enters
        // the candidate set via fresh progress.
        mem.stop.get(p(1)).poke(false);
        mem.progress.get(p(1)).poke(7);
        let _ = proc.on_timer_expire(); // fresh → candidate again
        let _ = proc.on_timer_expire(); // silent + STOP low → suspicion 42
        assert_eq!(mem.peek_suspicions(p(0), p(1)), 42);
        assert_eq!(proc.initial_timeout(), 43);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn process_pid_out_of_range_rejected() {
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        let _ = Alg1Process::new(mem, p(2));
    }

    #[test]
    fn two_process_mutual_election_converges_round_robin() {
        let (_s, _m, mut procs) = system(2);
        // Interleave T2 and T3 round-robin; p0 should end up sole leader.
        for _ in 0..20 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
            for proc in procs.iter_mut() {
                let _ = proc.on_timer_expire();
            }
        }
        assert_eq!(procs[0].leader(), p(0));
        assert_eq!(procs[1].leader(), p(0));
        assert_eq!(procs[0].cached_leader(), Some(p(0)));
    }
}
