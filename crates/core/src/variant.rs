//! Uniform factory over all Ω implementations, for comparison experiments.

use std::sync::Arc;

use omega_registers::{Instrumentation, MemorySpace, ProcessId};
use omega_sim::Actor;

use crate::alg1::{Alg1Memory, Alg1Process};
use crate::alg2::{Alg2Memory, Alg2Process};
use crate::boxed_actors;
use crate::mwmr::{MwmrMemory, MwmrProcess};
use crate::stepclock::StepClockProcess;

/// The Ω implementations this crate provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmegaVariant {
    /// Figure 2 — write-efficient, one unbounded register.
    Alg1,
    /// Figure 5 — bounded memory, everyone writes forever.
    Alg2,
    /// Section 3.5(a) — Figure 2 over nWnR suspicion counters.
    Mwmr,
    /// Section 3.5(b) — Figure 2 with the timer replaced by a step counter.
    StepClock,
}

impl OmegaVariant {
    /// All variants, in presentation order.
    #[must_use]
    pub fn all() -> [OmegaVariant; 4] {
        [
            OmegaVariant::Alg1,
            OmegaVariant::Alg2,
            OmegaVariant::Mwmr,
            OmegaVariant::StepClock,
        ]
    }

    /// Short human-readable name used in experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OmegaVariant::Alg1 => "alg1-fig2",
            OmegaVariant::Alg2 => "alg2-fig5-bounded",
            OmegaVariant::Mwmr => "alg1-mwmr",
            OmegaVariant::StepClock => "alg1-stepclock",
        }
    }

    /// Name prefix of the registers this variant is *allowed* to grow
    /// without bound (`None` when every register must stay bounded).
    #[must_use]
    pub fn unbounded_prefix(&self) -> Option<&'static str> {
        match self {
            OmegaVariant::Alg1 | OmegaVariant::Mwmr | OmegaVariant::StepClock => Some("PROGRESS["),
            OmegaVariant::Alg2 => None,
        }
    }

    /// Builds an `n`-process system of this variant as boxed
    /// [`OmegaProcess`](crate::OmegaProcess) objects (for the thread
    /// runtime or custom drivers), along with the backing memory space.
    ///
    /// The space uses eager (always-atomic) instrumentation — the safe
    /// choice for the thread runtime, where every node counts concurrently.
    #[must_use]
    pub fn build_processes(&self, n: usize) -> (MemorySpace, Vec<Box<dyn crate::OmegaProcess>>) {
        let space = MemorySpace::new(n);
        let procs = self.build_processes_in(&space);
        (space, procs)
    }

    /// Builds this variant's processes over an existing `space` (whose
    /// instrumentation mode the caller has already chosen); the system
    /// size is the space's process count.
    #[must_use]
    pub fn build_processes_in(&self, space: &MemorySpace) -> Vec<Box<dyn crate::OmegaProcess>> {
        let n = space.n_processes();
        match self {
            OmegaVariant::Alg1 => {
                let mem = Alg1Memory::new(space);
                ProcessId::all(n)
                    .map(|pid| {
                        Box::new(Alg1Process::new(Arc::clone(&mem), pid))
                            as Box<dyn crate::OmegaProcess>
                    })
                    .collect()
            }
            OmegaVariant::Alg2 => {
                let mem = Alg2Memory::new(space);
                ProcessId::all(n)
                    .map(|pid| {
                        Box::new(Alg2Process::new(Arc::clone(&mem), pid))
                            as Box<dyn crate::OmegaProcess>
                    })
                    .collect()
            }
            OmegaVariant::Mwmr => {
                let mem = MwmrMemory::new(space);
                ProcessId::all(n)
                    .map(|pid| {
                        Box::new(MwmrProcess::new(Arc::clone(&mem), pid))
                            as Box<dyn crate::OmegaProcess>
                    })
                    .collect()
            }
            OmegaVariant::StepClock => {
                let mem = Alg1Memory::new(space);
                ProcessId::all(n)
                    .map(|pid| {
                        Box::new(StepClockProcess::new(Alg1Process::new(
                            Arc::clone(&mem),
                            pid,
                        ))) as Box<dyn crate::OmegaProcess>
                    })
                    .collect()
            }
        }
    }

    /// Builds an `n`-process system of this variant: a fresh memory space
    /// and one boxed simulator actor per process.
    ///
    /// Because simulator actors run on one thread, the space uses
    /// [`Instrumentation::Deferred`] — access counters accumulate in
    /// unsynchronized scratch and flush at every `stats()`/`footprint()`
    /// call, so snapshots are exact and the per-access cost is a plain
    /// load/store instead of an atomic read-modify-write. Use
    /// [`build_with`](Self::build_with) to override.
    #[must_use]
    pub fn build(&self, n: usize) -> BuiltSystem {
        self.build_with(n, Instrumentation::Deferred)
    }

    /// [`build`](Self::build) with an explicit instrumentation mode — for
    /// drivers that move simulator-style actors across threads, and for
    /// the eager-vs-deferred parity tests.
    #[must_use]
    pub fn build_with(&self, n: usize, mode: Instrumentation) -> BuiltSystem {
        let space = MemorySpace::with_instrumentation(n, mode);
        let procs = self.build_processes_in(&space);
        BuiltSystem {
            variant: *self,
            space,
            actors: boxed_actors(procs),
        }
    }
}

impl std::fmt::Display for OmegaVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ready-to-simulate system of one Ω variant.
pub struct BuiltSystem {
    /// Which variant was built.
    pub variant: OmegaVariant,
    /// The memory space holding all shared registers (attach it to the
    /// simulation for statistics and footprint checkpoints).
    pub space: MemorySpace,
    /// One actor per process, in identity order.
    pub actors: Vec<Box<dyn Actor>>,
}

impl std::fmt::Debug for BuiltSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltSystem")
            .field("variant", &self.variant)
            .field("n", &self.actors.len())
            .field("registers", &self.space.register_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_build() {
        for variant in OmegaVariant::all() {
            let sys = variant.build(4);
            assert_eq!(sys.actors.len(), 4);
            assert!(sys.space.register_count() > 0);
            assert!(!variant.name().is_empty());
            let dbg = format!("{sys:?}");
            assert!(dbg.contains(&format!("{variant:?}")));
        }
    }

    #[test]
    fn register_counts_match_layouts() {
        // Figure 2: n PROGRESS + n STOP + n² SUSPICIONS.
        assert_eq!(
            OmegaVariant::Alg1.build(5).space.register_count(),
            5 + 5 + 25
        );
        // Figure 5: n² HPROGRESS + n² LAST + n STOP + n² SUSPICIONS.
        assert_eq!(
            OmegaVariant::Alg2.build(5).space.register_count(),
            25 + 25 + 5 + 25
        );
        // nWnR: n PROGRESS + n STOP + n SUSPICIONS.
        assert_eq!(OmegaVariant::Mwmr.build(5).space.register_count(), 15);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(OmegaVariant::Alg2.to_string(), "alg2-fig5-bounded");
    }

    #[test]
    fn unbounded_prefixes() {
        assert_eq!(OmegaVariant::Alg1.unbounded_prefix(), Some("PROGRESS["));
        assert_eq!(OmegaVariant::Alg2.unbounded_prefix(), None);
    }
}
