//! Candidate bookkeeping and the least-suspected election rule.
//!
//! Task `T1` of both algorithms elects, among the processes a process
//! currently considers candidates, the one with the *lexicographically
//! smallest* `(suspicion count, identity)` pair (Figure 2, lines 2–5):
//! ties in the global suspicion count break towards the smaller identity.

use omega_registers::{ProcessId, ProcessSet};

/// Elects the candidate with the lexicographically smallest
/// `(suspicions, identity)` pair.
///
/// Returns `None` only for an empty candidate set — which the algorithms
/// never produce, since a process always keeps itself as a candidate.
///
/// # Examples
///
/// ```
/// use omega_core::elect_least_suspected;
/// use omega_registers::{ProcessId, ProcessSet};
///
/// let candidates = ProcessSet::full(3);
/// let counts = [5u64, 2, 2];
/// let leader = elect_least_suspected(&candidates, |p| counts[p.index()]);
/// // p1 and p2 tie on 2 suspicions; the smaller identity wins.
/// assert_eq!(leader, Some(ProcessId::new(1)));
/// ```
#[must_use]
pub fn elect_least_suspected(
    candidates: &ProcessSet,
    mut suspicions_of: impl FnMut(ProcessId) -> u64,
) -> Option<ProcessId> {
    candidates
        .iter()
        .map(|p| (suspicions_of(p), p))
        .min_by(|a, b| a.cmp(b))
        .map(|(_, p)| p)
}

/// Initial contents of a process's candidate set.
///
/// The paper only requires the initial `candidates_i` to contain `i`
/// (Section 3.2); the choice affects convergence speed, not correctness,
/// and the self-stabilization tests exercise all of them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CandidateInit {
    /// Start from `{p_0, …, p_{n−1}}` — every process initially trusted.
    #[default]
    Full,
    /// Start from `{i}` — nobody else trusted until observed alive.
    SelfOnly,
    /// Start from an explicit set (the process's own identity is added if
    /// missing, preserving the paper's invariant `i ∈ candidates_i`).
    Custom(ProcessSet),
}

impl CandidateInit {
    /// Materializes the initial candidate set for process `pid` in a system
    /// of `n` processes.
    #[must_use]
    pub fn materialize(&self, n: usize, pid: ProcessId) -> ProcessSet {
        let mut set = match self {
            CandidateInit::Full => ProcessSet::full(n),
            CandidateInit::SelfOnly => ProcessSet::new(n),
            CandidateInit::Custom(set) => {
                let mut out = ProcessSet::new(n);
                for p in set.iter().filter(|p| p.index() < n) {
                    out.insert(p);
                }
                out
            }
        };
        set.insert(pid);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_candidates_elect_nobody() {
        assert_eq!(elect_least_suspected(&ProcessSet::new(3), |_| 0), None);
    }

    #[test]
    fn least_suspected_wins() {
        let counts = [9u64, 1, 4];
        let leader = elect_least_suspected(&ProcessSet::full(3), |p| counts[p.index()]);
        assert_eq!(leader, Some(p(1)));
    }

    #[test]
    fn ties_break_to_smaller_identity() {
        let leader = elect_least_suspected(&ProcessSet::full(4), |_| 7);
        assert_eq!(leader, Some(p(0)));
    }

    #[test]
    fn election_restricted_to_candidates() {
        let mut cands = ProcessSet::new(4);
        cands.insert(p(2));
        cands.insert(p(3));
        // p0 has the fewest suspicions but is not a candidate.
        let counts = [0u64, 0, 5, 3];
        let leader = elect_least_suspected(&cands, |q| counts[q.index()]);
        assert_eq!(leader, Some(p(3)));
    }

    #[test]
    fn init_full_contains_all() {
        let set = CandidateInit::Full.materialize(3, p(1));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn init_self_only_contains_self() {
        let set = CandidateInit::SelfOnly.materialize(5, p(4));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![p(4)]);
    }

    #[test]
    fn init_custom_always_adds_self() {
        let mut base = ProcessSet::new(4);
        base.insert(p(0));
        let set = CandidateInit::Custom(base).materialize(4, p(2));
        assert!(set.contains(p(0)));
        assert!(set.contains(p(2)), "invariant i ∈ candidates_i enforced");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn init_custom_clips_out_of_range_members() {
        let mut base = ProcessSet::new(8);
        base.insert(p(7));
        let set = CandidateInit::Custom(base).materialize(4, p(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(CandidateInit::default(), CandidateInit::Full);
    }
}
