//! Algorithm 2 (Figure 5): Ω with **bounded** shared memory.
//!
//! Algorithm 1 needs one unbounded register (the leader's `PROGRESS` entry).
//! Algorithm 2 removes it with a two-flag handshake per ordered process
//! pair: the unbounded `PROGRESS[0..n]` array and the local `last_i[·]`
//! arrays are replaced by boolean matrices
//!
//! * `PROGRESS[i][k]` — owned by `p_i` (the signaller): while `p_i`
//!   believes it is the leader it re-arms the flag with
//!   `PROGRESS[i][k] ← ¬LAST[i][k]` (line 8.R2), making the pair *unequal*;
//! * `LAST[i][k]` — owned by `p_k` (the observer): on seeing
//!   `PROGRESS[i][k] ≠ LAST[i][k]` the observer treats `p_i` as alive and
//!   *cancels* the signal with `LAST[i][k] ← PROGRESS[i][k]` (line 19.R1),
//!   making the pair equal again.
//!
//! "Pair unequal" therefore means "an alive signal is pending", which is the
//! Figure-5 replacement for "`PROGRESS[k]` grew since my last scan". The
//! `STOP` and `SUSPICIONS` registers are exactly as in Algorithm 1, and
//! `SUSPICIONS` stays bounded by Theorem 2's argument, so *every* shared
//! variable is bounded (Theorem 6). The price — mandated by the Theorem 5
//! lower bound — is that every correct process keeps writing its `LAST`
//! acknowledgement flags forever (Theorem 7), which is optimal for bounded
//! memory (Theorem 8).

use std::cell::RefCell;
use std::sync::Arc;

use omega_registers::{
    EpochedNatMatrix, FlagArray, FlagMatrix, MemorySpace, ProcessId, ProcessSet,
};

use crate::alg1::{ShardCursor, SuspicionCache, T3_SHARD_SIZE};
use crate::candidates::{elect_least_suspected, CandidateInit};
use crate::OmegaProcess;

/// The Figure-5 shared register layout.
#[derive(Debug)]
pub struct Alg2Memory {
    n: usize,
    /// `PROGRESS[i][k]`, row-owned: `p_i` signals `p_k`.
    progress: FlagMatrix,
    /// `LAST[i][k]`, column-owned: `p_k` acknowledges `p_i`'s signal.
    last: FlagMatrix,
    stop: FlagArray,
    suspicions: EpochedNatMatrix,
}

impl Alg2Memory {
    /// Allocates the handshake registers in `space` (booleans `false`/`true`
    /// per the paper's initialization convention, suspicion counts 0).
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(Alg2Memory {
            n,
            progress: space.flag_row_matrix("HPROGRESS", |_, _| false),
            last: space.flag_column_matrix("LAST", |_, _| false),
            stop: space.flag_array("STOP", |_| true),
            suspicions: space.epoched_nat_row_matrix("SUSPICIONS", |_, _| 0),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of the signal flag `PROGRESS[i][k]`.
    #[must_use]
    pub fn peek_progress(&self, i: ProcessId, k: ProcessId) -> bool {
        self.progress.get(i, k).peek()
    }

    /// Unattributed view of the acknowledgement flag `LAST[i][k]`.
    #[must_use]
    pub fn peek_last(&self, i: ProcessId, k: ProcessId) -> bool {
        self.last.get(i, k).peek()
    }

    /// Unattributed view of `STOP[k]`.
    #[must_use]
    pub fn peek_stop(&self, k: ProcessId) -> bool {
        self.stop.get(k).peek()
    }

    /// Unattributed view of `SUSPICIONS[j][k]`.
    #[must_use]
    pub fn peek_suspicions(&self, j: ProcessId, k: ProcessId) -> u64 {
        self.suspicions.get(j, k).peek()
    }

    /// Whether `p_i` currently has an uncancelled alive-signal pending for
    /// `p_k` (`PROGRESS[i][k] ≠ LAST[i][k]`).
    #[must_use]
    pub fn signal_pending(&self, i: ProcessId, k: ProcessId) -> bool {
        self.peek_progress(i, k) != self.peek_last(i, k)
    }

    /// Overwrites every register with arbitrary values derived from `seed`
    /// (footnote 7: initial shared state can be arbitrary).
    pub fn corrupt(&self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for j in ProcessId::all(self.n) {
            self.stop.get(j).poke(next() % 2 == 0);
            for k in ProcessId::all(self.n) {
                self.progress.get(j, k).poke(next() % 2 == 0);
                self.last.get(j, k).poke(next() % 2 == 0);
                // Epoch-bumping poke: see Alg1Memory::corrupt.
                self.suspicions.poke(j, k, next() % 100);
            }
        }
    }
}

/// One process of Algorithm 2.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use omega_core::{Alg2Memory, Alg2Process, OmegaProcess};
/// use omega_registers::{MemorySpace, ProcessId};
///
/// let space = MemorySpace::new(2);
/// let memory = Alg2Memory::new(&space);
/// let mut p0 = Alg2Process::new(Arc::clone(&memory), ProcessId::new(0));
///
/// p0.t2_step(); // p0 believes it leads: raises alive-signals for peers
/// assert!(memory.signal_pending(ProcessId::new(0), ProcessId::new(1)));
/// ```
#[derive(Debug)]
pub struct Alg2Process {
    pid: ProcessId,
    mem: Arc<Alg2Memory>,
    candidates: ProcessSet,
    /// Local mirror of the owned `LAST[k][pid]` column (owner-side copy).
    my_last: Vec<bool>,
    /// Local mirror of `STOP[pid]`.
    my_stop: bool,
    /// Local mirror of the owned `SUSPICIONS[pid][·]` row.
    my_suspicions: Vec<u64>,
    /// Running `max_k my_suspicions[k]` — exact (entries only increment);
    /// keeps the timeout O(1) per timer fire.
    my_suspicions_max: u64,
    cached: Option<ProcessId>,
    /// Epoch-validated view of the foreign `SUSPICIONS` rows (see
    /// [`Alg1Process`](crate::Alg1Process) — the layout is identical).
    scan: RefCell<SuspicionCache>,
    /// Memoized `T1` winner (see [`Alg1Process`]); `None` = stale.
    election: std::cell::Cell<Option<ProcessId>>,
    /// Round-robin cursor of the sharded `T3` scan.
    t3_cursor: ShardCursor,
}

impl Alg2Process {
    /// Creates process `pid` over `mem`, initially trusting everyone.
    #[must_use]
    pub fn new(mem: Arc<Alg2Memory>, pid: ProcessId) -> Self {
        Alg2Process::with_candidates(mem, pid, CandidateInit::Full)
    }

    /// Creates process `pid` with an explicit initial candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the memory's system size.
    #[must_use]
    pub fn with_candidates(mem: Arc<Alg2Memory>, pid: ProcessId, init: CandidateInit) -> Self {
        let n = mem.n();
        assert!(pid.index() < n, "{pid} out of range for n={n}");
        let my_last = ProcessId::all(n)
            .map(|k| mem.last.get(k, pid).peek())
            .collect();
        let my_stop = mem.stop.get(pid).peek();
        let my_suspicions: Vec<u64> = ProcessId::all(n)
            .map(|k| mem.suspicions.get(pid, k).peek())
            .collect();
        let my_suspicions_max = my_suspicions.iter().copied().max().unwrap_or(0);
        Alg2Process {
            pid,
            candidates: init.materialize(n, pid),
            my_last,
            my_stop,
            my_suspicions,
            my_suspicions_max,
            cached: None,
            scan: RefCell::new(SuspicionCache::new(n, pid)),
            election: std::cell::Cell::new(None),
            t3_cursor: ShardCursor::new(n, T3_SHARD_SIZE),
            mem,
        }
    }

    /// Overrides the width of the sharded `T3` scan (default
    /// [`T3_SHARD_SIZE`]); `shard ≥ n` restores the paper's full scan.
    ///
    /// # Panics
    ///
    /// Panics if `shard == 0`.
    #[must_use]
    pub fn with_scan_shard(mut self, shard: usize) -> Self {
        assert!(shard >= 1, "a T3 pass must scan at least one process");
        self.t3_cursor = ShardCursor::new(self.mem.n(), shard);
        self
    }

    /// The shared memory this process runs over.
    #[must_use]
    pub fn memory(&self) -> &Arc<Alg2Memory> {
        &self.mem
    }

    /// Current candidate set (test/diagnostic view).
    #[must_use]
    pub fn candidates(&self) -> &ProcessSet {
        &self.candidates
    }

    fn total_suspicions(&self, scan: &SuspicionCache, k: ProcessId) -> u64 {
        scan.foreign_total(k) + self.my_suspicions[k.index()]
    }
}

impl OmegaProcess for Alg2Process {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    /// Task `T1` — unchanged from Algorithm 1 (including the epoch-gated
    /// suspicion cache: stale rows are re-read, clean rows cost nothing,
    /// and a quiescent query serves the memoized winner).
    fn leader(&self) -> ProcessId {
        let mut scan = self.scan.borrow_mut();
        let changed = scan.refresh(&self.mem.suspicions);
        if changed {
            self.election.set(None);
        } else if let Some(winner) = self.election.get() {
            return winner;
        }
        let winner = elect_least_suspected(&self.candidates, |k| self.total_suspicions(&scan, k))
            .expect("candidates always contain self");
        self.election.set(Some(winner));
        winner
    }

    /// One iteration of task `T2` (lines 6–12 with 8.R1–8.R3).
    fn t2_step(&mut self) {
        let leader = self.leader();
        self.cached = Some(leader);
        if leader == self.pid {
            // Lines 8.R1–8.R3: raise an alive-signal towards every peer by
            // making PROGRESS[i][k] ≠ LAST[i][k].
            for k in ProcessId::all(self.mem.n()) {
                if k == self.pid {
                    continue;
                }
                let last = self.mem.last.get(self.pid, k).read(self.pid);
                self.mem.progress.get(self.pid, k).write(self.pid, !last);
            }
            // Line 9.
            if self.my_stop {
                self.my_stop = false;
                self.mem.stop.get(self.pid).write(self.pid, false);
            }
        } else {
            // Line 11.
            if !self.my_stop {
                self.my_stop = true;
                self.mem.stop.get(self.pid).write(self.pid, true);
            }
        }
    }

    /// Task `T3` body (lines 13–27 with 16.R1–19.R1) over one round-robin
    /// shard, as in [`Alg1Process`](crate::Alg1Process).
    fn on_timer_expire(&mut self) -> u64 {
        // The scan below may change `candidates` and the own suspicion row
        // — both election inputs.
        self.election.set(None);
        for idx in self.t3_cursor.advance() {
            let k = ProcessId::new(idx);
            if k == self.pid {
                continue;
            }
            let stop_k = self.mem.stop.get(k).read(self.pid);
            // Line 16.R1.
            let progress_k = self.mem.progress.get(k, self.pid).read(self.pid);
            // Line 17.R1: signal pending ⇔ flags unequal.
            if progress_k != self.my_last[k.index()] {
                // Line 18 + 19.R1: alive; cancel the signal.
                self.candidates.insert(k);
                self.my_last[k.index()] = progress_k;
                self.mem.last.get(k, self.pid).write(self.pid, progress_k);
            } else if stop_k {
                self.candidates.remove(k);
            } else if self.candidates.contains(k) {
                let bumped = self.my_suspicions[k.index()] + 1;
                self.my_suspicions[k.index()] = bumped;
                self.my_suspicions_max = self.my_suspicions_max.max(bumped);
                self.mem.suspicions.write(self.pid, k, self.pid, bumped);
                self.candidates.remove(k);
            }
        }
        self.mem.suspicions.counters().note_shard_pass();
        self.my_suspicions_max + 1
    }

    fn initial_timeout(&self) -> u64 {
        self.my_suspicions_max + 1
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> (MemorySpace, Arc<Alg2Memory>, Vec<Alg2Process>) {
        let space = MemorySpace::new(n);
        let mem = Alg2Memory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| Alg2Process::new(Arc::clone(&mem), pid))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn leader_raises_signals_for_all_peers() {
        let (_s, mem, mut procs) = system(3);
        procs[0].t2_step();
        assert!(mem.signal_pending(p(0), p(1)));
        assert!(mem.signal_pending(p(0), p(2)));
        assert!(!mem.signal_pending(p(1), p(0)), "only the leader signals");
        assert!(!mem.peek_stop(p(0)));
    }

    #[test]
    fn observer_cancels_signal_and_keeps_candidate() {
        let (_s, mem, mut procs) = system(2);
        procs[0].t2_step();
        assert!(mem.signal_pending(p(0), p(1)));
        let _ = procs[1].on_timer_expire();
        assert!(!mem.signal_pending(p(0), p(1)), "ack equalizes the flags");
        assert!(procs[1].candidates().contains(p(0)));
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 0);
    }

    #[test]
    fn handshake_rearms_after_ack() {
        let (_s, mem, mut procs) = system(2);
        procs[0].t2_step();
        let _ = procs[1].on_timer_expire(); // ack
        procs[0].t2_step(); // re-arm: flags unequal again
        assert!(mem.signal_pending(p(0), p(1)));
        let _ = procs[1].on_timer_expire();
        assert!(!mem.signal_pending(p(0), p(1)));
        assert!(procs[1].candidates().contains(p(0)));
    }

    #[test]
    fn silent_candidate_is_suspected() {
        let (_s, mem, mut procs) = system(2);
        procs[0].t2_step(); // signal
        let _ = procs[1].on_timer_expire(); // ack, candidate
                                            // p0 now goes silent but keeps STOP low.
        let _ = procs[1].on_timer_expire(); // no signal → suspect
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 1);
        assert!(!procs[1].candidates().contains(p(0)));
        assert_eq!(procs[1].leader(), p(1));
    }

    #[test]
    fn voluntary_stop_is_not_suspected() {
        let (_s, mem, mut procs) = system(2);
        // STOP[0] initial true, no signal pending: first scan is a fresh...
        // no — with equal flags and STOP set, p0 is removed voluntarily.
        let _ = procs[1].on_timer_expire();
        assert!(!procs[1].candidates().contains(p(0)));
        assert_eq!(mem.peek_suspicions(p(1), p(0)), 0);
    }

    #[test]
    fn timeout_grows_with_suspicions() {
        let (_s, _m, mut procs) = system(2);
        let t0 = procs[1].initial_timeout();
        procs[0].t2_step();
        let _ = procs[1].on_timer_expire();
        let t1 = procs[1].on_timer_expire(); // suspicion
        assert_eq!(t0, 1);
        assert_eq!(t1, 2);
    }

    #[test]
    fn corrupted_state_converges_pairwise() {
        let (_s, mem, _) = system(2);
        mem.corrupt(7);
        // Recreate processes after corruption so mirrors match registers.
        let mut p0 = Alg2Process::new(Arc::clone(&mem), p(0));
        let mut p1 = Alg2Process::new(Arc::clone(&mem), p(1));
        for _ in 0..30 {
            p0.t2_step();
            p1.t2_step();
            let _ = p0.on_timer_expire();
            let _ = p1.on_timer_expire();
        }
        assert_eq!(
            p0.leader(),
            p1.leader(),
            "handshake recovers from corruption"
        );
    }

    #[test]
    fn two_process_round_robin_converges() {
        let (_s, _m, mut procs) = system(2);
        for _ in 0..20 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
            for proc in procs.iter_mut() {
                let _ = proc.on_timer_expire();
            }
        }
        assert_eq!(procs[0].leader(), procs[1].leader());
        let leader = procs[0].leader();
        assert!(leader == p(0) || leader == p(1));
        // And the elected leader keeps signalling while followers keep
        // acking — the Theorem 7 write pattern.
        let l = leader.index();
        let f = 1 - l;
        procs[l].t2_step();
        let pending = procs[f].memory().signal_pending(leader, p(f));
        assert!(pending);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_rejected() {
        let space = MemorySpace::new(2);
        let mem = Alg2Memory::new(&space);
        let _ = Alg2Process::new(mem, p(5));
    }

    #[test]
    fn own_candidacy_never_dropped() {
        let (_s, _m, mut procs) = system(3);
        for _ in 0..10 {
            for proc in procs.iter_mut() {
                proc.t2_step();
                let _ = proc.on_timer_expire();
            }
        }
        for proc in &procs {
            assert!(proc.candidates().contains(proc.pid()));
        }
    }
}
