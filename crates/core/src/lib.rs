//! Eventual leader oracles (Ω) for asynchronous shared memory.
//!
//! This crate implements the algorithms of *“Electing an Eventual Leader in
//! an Asynchronous Shared Memory System”* (Fernández, Jiménez & Raynal,
//! DSN 2007):
//!
//! * [`Alg1Process`] — Figure 2: the write-efficient Ω. After
//!   stabilization only the elected leader writes shared memory (a single
//!   register), and every shared variable except the leader's `PROGRESS`
//!   entry is bounded.
//! * [`Alg2Process`] — Figure 5: Ω with *fully bounded* shared memory via a
//!   two-flag handshake per process pair; in exchange, every correct
//!   process writes forever (provably unavoidable, Theorem 5).
//! * [`MwmrProcess`] — Section 3.5(a): Figure 2 with each suspicion column
//!   collapsed into one nWnR register.
//! * [`StepClockProcess`] — Section 3.5(b): timers replaced by counted
//!   steps.
//!
//! All variants provide the Ω interface through [`OmegaProcess`]:
//! `leader()` (task `T1`), one `T2` heartbeat-loop iteration at a time, and
//! the `T3` timer-expiry body. [`OmegaActor`] adapts any of them to the
//! [`omega_sim`] scheduler; the `omega-runtime` crate runs the same
//! processes on real threads.
//!
//! # The Ω contract
//!
//! In every run where the AWB assumption holds (one eventually-timely
//! writer + asymptotically well-behaved timers elsewhere):
//!
//! * **Validity** — `leader()` returns a process identity.
//! * **Eventual Leadership** — there is a finite time after which every
//!   invocation at every correct process returns the same correct identity.
//! * **Termination** — `leader()` always returns.
//!
//! # Electing a leader in simulation
//!
//! ```
//! use omega_core::{boxed_actors, Alg1Memory, Alg1Process};
//! use omega_registers::{MemorySpace, ProcessId};
//! use omega_sim::prelude::*;
//! use std::sync::Arc;
//!
//! let space = MemorySpace::new(3);
//! let memory = Alg1Memory::new(&space);
//! let processes: Vec<Alg1Process> = ProcessId::all(3)
//!     .map(|pid| Alg1Process::new(Arc::clone(&memory), pid))
//!     .collect();
//!
//! let report = Simulation::builder(boxed_actors(processes))
//!     .adversary(AwbEnvelope::new(
//!         SeededRandom::new(7, 1, 8),
//!         ProcessId::new(0),         // the AWB₁ timely process
//!         SimTime::from_ticks(500),  // τ₁
//!         4,                         // σ
//!     ))
//!     .memory(space)
//!     .horizon(20_000)
//!     .run();
//!
//! let elected = report.elected_leader().expect("an AWB run stabilizes");
//! assert!(report.correct.contains(elected));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alg1;
mod alg2;
mod baseline;
mod candidates;
mod mwmr;
mod stepclock;
mod variant;

pub use alg1::{Alg1Memory, Alg1Process, T3_SHARD_SIZE};
pub use alg2::{Alg2Memory, Alg2Process};
pub use baseline::{EsMemory, EsOmega};
pub use candidates::{elect_least_suspected, CandidateInit};
pub use mwmr::{MwmrMemory, MwmrProcess};
pub use stepclock::{StepClockProcess, NEVER_TIMEOUT};
pub use variant::{BuiltSystem, OmegaVariant};

use omega_registers::ProcessId;
use omega_sim::{Actor, StepCtx};

/// A process of an eventual-leader algorithm, exposed task by task.
///
/// The paper structures every algorithm as three tasks; this trait mirrors
/// that decomposition so drivers (simulator, thread runtime) own all
/// scheduling:
///
/// * [`leader`](OmegaProcess::leader) — task `T1`, the Ω query. Reads shared
///   memory; may be invoked at any time, by any driver.
/// * [`t2_step`](OmegaProcess::t2_step) — one iteration of the `T2`
///   heartbeat loop.
/// * [`on_timer_expire`](OmegaProcess::on_timer_expire) — the `T3` body;
///   returns the next timeout value (Figure 2, line 27).
pub trait OmegaProcess: Send {
    /// This process's identity.
    fn pid(&self) -> ProcessId;

    /// Number of processes in the system.
    fn n(&self) -> usize;

    /// Task `T1`: the Ω `leader()` primitive (reads shared memory).
    fn leader(&self) -> ProcessId;

    /// One iteration of the task `T2` loop.
    fn t2_step(&mut self);

    /// The task `T3` body; returns the next timeout value to arm the local
    /// timer with.
    fn on_timer_expire(&mut self) -> u64;

    /// Timeout value for the first arming of the timer.
    fn initial_timeout(&self) -> u64;

    /// Leader estimate cached by the most recent `t2_step` (pure accessor;
    /// `None` before the first step).
    fn cached_leader(&self) -> Option<ProcessId>;
}

/// Adapts an [`OmegaProcess`] to the simulator's [`Actor`] interface.
#[derive(Debug)]
pub struct OmegaActor<P>(P);

impl<P: OmegaProcess> OmegaActor<P> {
    /// Wraps `process` for simulation.
    #[must_use]
    pub fn new(process: P) -> Self {
        OmegaActor(process)
    }

    /// Shared view of the wrapped process.
    #[must_use]
    pub fn process(&self) -> &P {
        &self.0
    }

    /// Unwraps the process.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.0
    }
}

impl<P: OmegaProcess> Actor for OmegaActor<P> {
    fn on_step(&mut self, _ctx: StepCtx) {
        self.0.t2_step();
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        self.0.on_timer_expire()
    }

    fn initial_timeout(&self) -> u64 {
        self.0.initial_timeout()
    }

    fn current_leader(&self) -> Option<ProcessId> {
        self.0.cached_leader()
    }
}

impl OmegaProcess for Box<dyn OmegaProcess> {
    fn pid(&self) -> ProcessId {
        (**self).pid()
    }

    fn n(&self) -> usize {
        (**self).n()
    }

    fn leader(&self) -> ProcessId {
        (**self).leader()
    }

    fn t2_step(&mut self) {
        (**self).t2_step();
    }

    fn on_timer_expire(&mut self) -> u64 {
        (**self).on_timer_expire()
    }

    fn initial_timeout(&self) -> u64 {
        (**self).initial_timeout()
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        (**self).cached_leader()
    }
}

/// Boxes a vector of Ω processes into simulator actors, preserving order.
#[must_use]
pub fn boxed_actors<P: OmegaProcess + 'static>(processes: Vec<P>) -> Vec<Box<dyn Actor>> {
    processes
        .into_iter()
        .map(|p| Box::new(OmegaActor::new(p)) as Box<dyn Actor>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn omega_actor_delegates() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        let mut actor = OmegaActor::new(Alg1Process::new(Arc::clone(&mem), ProcessId::new(0)));
        let ctx = StepCtx {
            pid: ProcessId::new(0),
            now: omega_sim::SimTime::ZERO,
        };
        assert_eq!(actor.current_leader(), None);
        actor.on_step(ctx);
        assert_eq!(actor.current_leader(), Some(ProcessId::new(0)));
        assert_eq!(actor.initial_timeout(), 1);
        let timeout = actor.on_timer(ctx);
        assert!(timeout >= 1);
        assert_eq!(actor.process().pid(), ProcessId::new(0));
        let proc = actor.into_inner();
        assert_eq!(proc.n(), 2);
    }

    #[test]
    fn boxed_actors_preserve_order() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        let procs: Vec<Alg1Process> = ProcessId::all(3)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let actors = boxed_actors(procs);
        assert_eq!(actors.len(), 3);
    }
}
