//! The related-work baseline: Ω for *eventually synchronous* shared memory.
//!
//! The paper's only shared-memory predecessor (\[13\]: Guerraoui & Raynal,
//! SEUS'06) assumes an **eventually synchronous** system — after some
//! unknown time there are lower *and upper* bounds on every process's step
//! time. That is strictly stronger than AWB, which bounds only *one*
//! process's write cadence and asks everyone else merely for
//! asymptotically well-behaved timers.
//!
//! [`EsOmega`] is a faithful representative of that model's standard
//! recipe (the SEUS'06 text fixes details differently, but the assumption
//! it needs is the same):
//!
//! * every process heartbeats its own counter on every step (so, unlike
//!   Figure 2, *all* processes write forever);
//! * a follower suspects `p_k` after `threshold_k` consecutive scans
//!   without progress, and doubles `threshold_k` whenever a suspicion
//!   proves false — the classic adaptive-timeout trick, which converges
//!   exactly when step delays are eventually bounded;
//! * `leader()` returns the smallest currently-unsuspected identity.
//!
//! Under eventual synchrony this elects and stabilizes. Under the paper's
//! weaker AWB assumption it can fail: a correct process whose stall
//! lengths grow without bound (allowed by AWB!) beats every doubled
//! threshold, is falsely suspected infinitely often, and — having the
//! smallest identity — yo-yos the election forever. Experiment E14
//! (`table_baseline`) shows exactly this separation; it is the executable
//! version of the paper's claim that AWB is "weaker than the assumption
//! used in \[13\]".

use std::sync::Arc;

use omega_registers::{MemorySpace, NatArray, ProcessId};

use crate::OmegaProcess;

/// Shared layout of the baseline: one heartbeat counter per process.
#[derive(Debug)]
pub struct EsMemory {
    n: usize,
    heartbeat: NatArray,
}

impl EsMemory {
    /// Allocates the heartbeat registers in `space`.
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(EsMemory {
            n,
            heartbeat: space.nat_array("ESHB", |_| 0),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of `ESHB[k]`.
    #[must_use]
    pub fn peek_heartbeat(&self, k: ProcessId) -> u64 {
        self.heartbeat.get(k).peek()
    }
}

/// One process of the eventually-synchronous baseline algorithm.
#[derive(Debug)]
pub struct EsOmega {
    pid: ProcessId,
    mem: Arc<EsMemory>,
    my_heartbeat: u64,
    last_seen: Vec<u64>,
    seen_valid: Vec<bool>,
    misses: Vec<u64>,
    /// Adaptive per-target miss thresholds; doubled on false suspicion.
    thresholds: Vec<u64>,
    suspected: Vec<bool>,
    /// Fixed scan period (the model's timers are trustworthy).
    scan_period: u64,
    /// False suspicions observed so far (diagnostics).
    false_suspicions: u64,
    cached: Option<ProcessId>,
    /// Scratch buffer for the batched heartbeat snapshot.
    hb_buf: Vec<u64>,
}

impl EsOmega {
    /// Creates process `pid` with the given initial miss threshold and
    /// scan period.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or any parameter is zero.
    #[must_use]
    pub fn new(
        mem: Arc<EsMemory>,
        pid: ProcessId,
        initial_threshold: u64,
        scan_period: u64,
    ) -> Self {
        let n = mem.n();
        assert!(pid.index() < n, "{pid} out of range");
        assert!(initial_threshold > 0 && scan_period > 0);
        EsOmega {
            pid,
            my_heartbeat: 0,
            last_seen: vec![0; n],
            seen_valid: vec![false; n],
            misses: vec![0; n],
            thresholds: vec![initial_threshold; n],
            suspected: vec![false; n],
            scan_period,
            false_suspicions: 0,
            cached: None,
            hb_buf: vec![0; n],
            mem,
        }
    }

    /// False suspicions this process has retracted so far.
    #[must_use]
    pub fn false_suspicions(&self) -> u64 {
        self.false_suspicions
    }

    /// Current miss threshold for target `k` (diagnostics).
    #[must_use]
    pub fn threshold_of(&self, k: ProcessId) -> u64 {
        self.thresholds[k.index()]
    }
}

impl OmegaProcess for EsOmega {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    /// The baseline election rule: smallest unsuspected identity.
    fn leader(&self) -> ProcessId {
        ProcessId::all(self.mem.n())
            .find(|k| !self.suspected[k.index()])
            .unwrap_or(self.pid)
    }

    fn t2_step(&mut self) {
        // Everyone heartbeats, always — the baseline is not write-optimal.
        self.my_heartbeat = self.my_heartbeat.wrapping_add(1);
        self.mem
            .heartbeat
            .get(self.pid)
            .write(self.pid, self.my_heartbeat);
        self.cached = Some(self.leader());
    }

    fn on_timer_expire(&mut self) -> u64 {
        // One batched snapshot of the whole heartbeat array per scan.
        self.mem.heartbeat.snapshot_into(self.pid, &mut self.hb_buf);
        for k in ProcessId::all(self.mem.n()) {
            if k == self.pid {
                continue;
            }
            let idx = k.index();
            let hb = self.hb_buf[idx];
            let progressed = !self.seen_valid[idx] || hb != self.last_seen[idx];
            self.seen_valid[idx] = true;
            self.last_seen[idx] = hb;
            if progressed {
                self.misses[idx] = 0;
                if self.suspected[idx] {
                    // False suspicion: retract and become more patient.
                    self.suspected[idx] = false;
                    self.false_suspicions += 1;
                    self.thresholds[idx] = self.thresholds[idx].saturating_mul(2);
                }
            } else {
                self.misses[idx] += 1;
                if self.misses[idx] >= self.thresholds[idx] {
                    self.suspected[idx] = true;
                }
            }
        }
        self.cached = Some(self.leader());
        self.scan_period
    }

    fn initial_timeout(&self) -> u64 {
        self.scan_period
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> (MemorySpace, Arc<EsMemory>, Vec<EsOmega>) {
        let space = MemorySpace::new(n);
        let mem = EsMemory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| EsOmega::new(Arc::clone(&mem), pid, 2, 4))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn everyone_heartbeats() {
        let (space, mem, mut procs) = system(3);
        for _ in 0..5 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
        }
        for k in ProcessId::all(3) {
            assert_eq!(mem.peek_heartbeat(k), 5);
        }
        assert_eq!(
            space.stats().writer_set().len(),
            3,
            "not write-optimal by design"
        );
    }

    #[test]
    fn live_min_id_wins_under_lockstep() {
        let (_s, _m, mut procs) = system(3);
        for _ in 0..10 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
            for proc in procs.iter_mut() {
                let _ = proc.on_timer_expire();
            }
        }
        for proc in &procs {
            assert_eq!(proc.leader(), p(0));
        }
    }

    #[test]
    fn silent_process_gets_suspected_after_threshold() {
        let (_s, _m, mut procs) = system(2);
        // p0 never steps. p1 scans: first scan latches, then misses 1, 2 →
        // threshold 2 reached → suspected.
        let _ = procs[1].on_timer_expire();
        let _ = procs[1].on_timer_expire();
        let _ = procs[1].on_timer_expire();
        assert_eq!(procs[1].leader(), p(1));
    }

    #[test]
    fn false_suspicion_doubles_threshold() {
        let (_s, _m, mut procs) = system(2);
        assert_eq!(procs[1].threshold_of(p(0)), 2);
        // Suspect p0…
        for _ in 0..3 {
            let _ = procs[1].on_timer_expire();
        }
        assert_eq!(procs[1].leader(), p(1));
        // …then p0 revives: retraction doubles patience.
        procs[0].t2_step();
        let _ = procs[1].on_timer_expire();
        assert_eq!(procs[1].leader(), p(0));
        assert_eq!(procs[1].false_suspicions(), 1);
        assert_eq!(procs[1].threshold_of(p(0)), 4);
    }

    #[test]
    fn scan_period_is_constant() {
        let (_s, _m, mut procs) = system(2);
        assert_eq!(procs[0].initial_timeout(), 4);
        assert_eq!(procs[0].on_timer_expire(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_out_of_range_rejected() {
        let space = MemorySpace::new(1);
        let mem = EsMemory::new(&space);
        let _ = EsOmega::new(mem, p(4), 1, 1);
    }
}
