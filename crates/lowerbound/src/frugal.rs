//! `FrugalOmega`: the Theorem-5 counterexample algorithm.
//!
//! Theorem 5 / Corollary 1 state that any Ω algorithm using **bounded**
//! shared memory has runs in which at least `t + 1` (here: all) processes
//! write forever. `FrugalOmega` tries to beat the bound with an appealing
//! design: every shared variable is a single *bit* (bounded!), only the
//! leader writes (write-optimal!), and liveness is signalled by toggling —
//! a follower treats the leader as alive iff the bit changed since its
//! last scan, with a constant timeout (a growing timeout would need an
//! unbounded register).
//!
//! The flaw is exactly the one the theorem's proof exploits: with finitely
//! many memory states, some state recurs forever, and an adversary can
//! align the followers' reads with that recurring state so that they
//! cannot distinguish a live, toggling leader from a dead one. Concretely,
//! if the leader toggles with period `2s` and a follower's scans land
//! every `k·2s` ticks, every scan sees the same bit value — "no change" —
//! and the live leader is demoted, forever. [`crate::theorem5_evidence`]
//! builds that aliased run; Algorithm 2, whose handshake makes followers
//! *write back* acknowledgements, survives the same schedule (its signal
//! is "flags unequal", which only the follower itself resets).

use std::sync::Arc;

use omega_core::OmegaProcess;
use omega_registers::{FlagArray, MemorySpace, ProcessId, ProcessSet};

/// Shared layout of `FrugalOmega`: one toggle bit per process. Fully
/// bounded — `n` bits of shared memory in total.
#[derive(Debug)]
pub struct FrugalMemory {
    n: usize,
    bit: FlagArray,
}

impl FrugalMemory {
    /// Allocates the toggle bits in `space`.
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(FrugalMemory {
            n,
            bit: space.flag_array("BIT", |_| false),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of `BIT[k]`.
    #[must_use]
    pub fn peek_bit(&self, k: ProcessId) -> bool {
        self.bit.get(k).peek()
    }
}

/// One process of the frugal (broken) algorithm.
#[derive(Debug)]
pub struct FrugalOmega {
    pid: ProcessId,
    mem: Arc<FrugalMemory>,
    candidates: ProcessSet,
    last_seen: Vec<bool>,
    seen_valid: Vec<bool>,
    my_bit: bool,
    /// Constant timeout — bounded memory leaves no room for growing ones.
    timeout: u64,
    cached: Option<ProcessId>,
}

impl FrugalOmega {
    /// Creates process `pid` with the given constant timeout.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or `timeout == 0`.
    #[must_use]
    pub fn new(mem: Arc<FrugalMemory>, pid: ProcessId, timeout: u64) -> Self {
        let n = mem.n();
        assert!(pid.index() < n, "{pid} out of range");
        assert!(timeout > 0);
        FrugalOmega {
            pid,
            candidates: ProcessSet::full(n),
            last_seen: vec![false; n],
            seen_valid: vec![false; n],
            my_bit: false,
            timeout,
            cached: None,
            mem,
        }
    }

    /// Current candidate set (diagnostics).
    #[must_use]
    pub fn candidates(&self) -> &ProcessSet {
        &self.candidates
    }
}

impl OmegaProcess for FrugalOmega {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    /// No suspicion counts to compare (they would be unbounded): elect the
    /// smallest live candidate.
    fn leader(&self) -> ProcessId {
        self.candidates.min().unwrap_or(self.pid)
    }

    fn t2_step(&mut self) {
        let leader = self.leader();
        self.cached = Some(leader);
        if leader == self.pid {
            self.my_bit = !self.my_bit;
            self.mem.bit.get(self.pid).write(self.pid, self.my_bit);
        }
    }

    fn on_timer_expire(&mut self) -> u64 {
        for k in ProcessId::all(self.mem.n()) {
            if k == self.pid {
                continue;
            }
            let bit = self.mem.bit.get(k).read(self.pid);
            let idx = k.index();
            if !self.seen_valid[idx] {
                self.seen_valid[idx] = true;
                self.last_seen[idx] = bit;
                self.candidates.insert(k);
            } else if bit != self.last_seen[idx] {
                self.last_seen[idx] = bit;
                self.candidates.insert(k);
            } else {
                self.candidates.remove(k);
            }
        }
        self.timeout
    }

    fn initial_timeout(&self) -> u64 {
        self.timeout
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize) -> (MemorySpace, Arc<FrugalMemory>, Vec<FrugalOmega>) {
        let space = MemorySpace::new(n);
        let mem = FrugalMemory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| FrugalOmega::new(Arc::clone(&mem), pid, 8))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn memory_is_fully_bounded() {
        let (space, _mem, mut procs) = system(3);
        for _ in 0..100 {
            for proc in procs.iter_mut() {
                proc.t2_step();
                let _ = proc.on_timer_expire();
            }
        }
        let fp = space.footprint();
        assert_eq!(
            fp.total_hwm_bits(),
            3,
            "n single-bit registers, nothing more"
        );
    }

    #[test]
    fn only_the_leader_writes() {
        let (space, _mem, mut procs) = system(3);
        for _ in 0..20 {
            for proc in procs.iter_mut() {
                proc.t2_step();
                let _ = proc.on_timer_expire();
            }
        }
        let writers: Vec<ProcessId> = space.stats().writer_set().iter().collect();
        assert_eq!(
            writers,
            vec![p(0)],
            "write-optimal — which is exactly its sin"
        );
    }

    #[test]
    fn toggling_leader_is_seen_alive_without_aliasing() {
        let (_s, _m, mut procs) = system(2);
        // Interleave one toggle between consecutive scans: no aliasing.
        for _ in 0..10 {
            procs[0].t2_step(); // toggle
            let _ = procs[1].on_timer_expire(); // scan sees the change
        }
        assert!(procs[1].candidates().contains(p(0)));
        assert_eq!(procs[1].leader(), p(0));
    }

    #[test]
    fn aliased_scans_demote_a_live_leader() {
        let (_s, _m, mut procs) = system(2);
        // First scan latches the initial bit value.
        let _ = procs[1].on_timer_expire();
        // Two toggles between scans: the bit returns to its latched value.
        for _ in 0..5 {
            procs[0].t2_step();
            procs[0].t2_step();
            let _ = procs[1].on_timer_expire();
        }
        assert!(
            !procs[1].candidates().contains(p(0)),
            "perfect aliasing: the live leader looks dead"
        );
        assert_eq!(
            procs[1].leader(),
            p(1),
            "follower elects itself — split brain"
        );
    }

    #[test]
    fn constant_timeout_never_grows() {
        let (_s, _m, mut procs) = system(2);
        for _ in 0..50 {
            assert_eq!(procs[1].on_timer_expire(), 8);
        }
    }
}
