//! `NaiveOmega`: the Lemma-5 counterexample algorithm.
//!
//! Lemma 5 states that in **any** Ω algorithm the eventually elected leader
//! must keep writing shared memory forever. `NaiveOmega` is the tempting
//! design that ignores this: a process campaigns by bumping its heartbeat
//! register a fixed number of times ("I'm here, elect me") and then — once
//! elected — goes silent to save shared-memory bandwidth; followers stay
//! loyal to the smallest identity they have ever heard from.
//!
//! In a crash-free run this *works*: a unique correct leader emerges and
//! never changes. The twin-run construction from the lemma's proof breaks
//! it: crash the leader right after its last write, and the followers'
//! shared-memory observations are byte-for-byte identical to the crash-free
//! run — so they keep electing a dead process forever. See
//! [`crate::lemma5_evidence`].

use std::sync::Arc;

use omega_core::OmegaProcess;
use omega_registers::{MemorySpace, NatArray, ProcessId};

/// Shared layout of `NaiveOmega`: one heartbeat counter per process.
#[derive(Debug)]
pub struct NaiveMemory {
    n: usize,
    heartbeat: NatArray,
}

impl NaiveMemory {
    /// Allocates the heartbeat registers in `space`.
    #[must_use]
    pub fn new(space: &MemorySpace) -> Arc<Self> {
        let n = space.n_processes();
        Arc::new(NaiveMemory {
            n,
            heartbeat: space.nat_array("HB", |_| 0),
        })
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Unattributed view of `HB[k]`.
    #[must_use]
    pub fn peek_heartbeat(&self, k: ProcessId) -> u64 {
        self.heartbeat.get(k).peek()
    }
}

/// One process of the naive (broken) algorithm.
#[derive(Debug)]
pub struct NaiveOmega {
    pid: ProcessId,
    mem: Arc<NaiveMemory>,
    /// Writes the leader still intends to perform before going silent.
    write_budget: u64,
    my_heartbeat: u64,
    cached: Option<ProcessId>,
}

impl NaiveOmega {
    /// Creates process `pid`; once elected it will write at most
    /// `write_budget` heartbeats before falling silent.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or `write_budget == 0`.
    #[must_use]
    pub fn new(mem: Arc<NaiveMemory>, pid: ProcessId, write_budget: u64) -> Self {
        assert!(pid.index() < mem.n(), "{pid} out of range");
        assert!(write_budget > 0, "a campaign needs at least one write");
        NaiveOmega {
            pid,
            mem,
            write_budget,
            my_heartbeat: 0,
            cached: None,
        }
    }
}

impl OmegaProcess for NaiveOmega {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn n(&self) -> usize {
        self.mem.n()
    }

    /// The loyal-follower rule: the smallest identity ever heard from
    /// (falling back to self before anyone has campaigned).
    fn leader(&self) -> ProcessId {
        ProcessId::all(self.mem.n())
            .find(|&k| {
                if k == self.pid {
                    self.my_heartbeat > 0
                } else {
                    self.mem.heartbeat.get(k).read(self.pid) > 0
                }
            })
            .unwrap_or(self.pid)
    }

    fn t2_step(&mut self) {
        let leader = self.leader();
        self.cached = Some(leader);
        if leader == self.pid && self.write_budget > 0 {
            self.write_budget -= 1;
            self.my_heartbeat += 1;
            self.mem
                .heartbeat
                .get(self.pid)
                .write(self.pid, self.my_heartbeat);
        }
        // Budget exhausted: the "optimization" — stay leader, write nothing.
    }

    fn on_timer_expire(&mut self) -> u64 {
        8
    }

    fn initial_timeout(&self) -> u64 {
        8
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, budget: u64) -> (MemorySpace, Arc<NaiveMemory>, Vec<NaiveOmega>) {
        let space = MemorySpace::new(n);
        let mem = NaiveMemory::new(&space);
        let procs = ProcessId::all(n)
            .map(|pid| NaiveOmega::new(Arc::clone(&mem), pid, budget))
            .collect();
        (space, mem, procs)
    }

    #[test]
    fn campaign_elects_smallest_and_goes_silent() {
        let (space, mem, mut procs) = system(3, 2);
        for _ in 0..6 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
        }
        // p0 campaigned and won; everyone follows.
        for proc in &procs {
            assert_eq!(proc.leader(), p(0));
        }
        assert_eq!(mem.peek_heartbeat(p(0)), 2, "budget exhausted");
        let writes_before = space.stats().total_writes();
        for _ in 0..10 {
            for proc in procs.iter_mut() {
                proc.t2_step();
            }
        }
        assert_eq!(
            space.stats().total_writes(),
            writes_before,
            "the naive leader never writes again — the Lemma 5 violation"
        );
    }

    #[test]
    fn followers_cannot_distinguish_silent_from_crashed() {
        let (_s, mem, mut procs) = system(2, 1);
        procs[0].t2_step(); // campaign write
        procs[1].t2_step();
        assert_eq!(procs[1].leader(), p(0));
        // "Crash" p0 by simply never stepping it again: p1's view is
        // unchanged forever.
        for _ in 0..20 {
            procs[1].t2_step();
            let _ = procs[1].on_timer_expire();
        }
        assert_eq!(procs[1].leader(), p(0), "loyal forever, even to a corpse");
        assert_eq!(mem.peek_heartbeat(p(0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one write")]
    fn zero_budget_rejected() {
        let space = MemorySpace::new(1);
        let mem = NaiveMemory::new(&space);
        let _ = NaiveOmega::new(mem, p(0), 0);
    }

    #[test]
    fn timer_is_inert() {
        let (_s, _m, mut procs) = system(2, 1);
        assert_eq!(procs[0].on_timer_expire(), 8);
        assert_eq!(procs[0].initial_timeout(), 8);
        assert_eq!(procs[0].n(), 2);
    }
}
