//! `DeafFollower`: the Lemma-6 counterexample wrapper.
//!
//! Lemma 6 states that in any Ω algorithm **every** correct process other
//! than the leader must keep *reading* shared memory forever. This wrapper
//! turns any correct process into one that stops reading after a budget of
//! steps — it freezes: no more scans, no more leader re-evaluation, its
//! `leader()` output pinned to whatever it believed last.
//!
//! The violation run (the lemma's proof construction, executable as
//! [`crate::lemma6_evidence`]): let the system stabilize, let the follower
//! go deaf, then crash the leader. Correct-and-reading processes re-elect;
//! the deaf one keeps returning the crashed identity forever, so the
//! system never reaches a common correct leader.

use omega_core::OmegaProcess;
use omega_registers::ProcessId;

/// Timeout used to park the timer of a frozen process.
const PARKED_TIMEOUT: u64 = u64::MAX / 4;

/// Wraps an Ω process and cuts off all its shared-memory activity after a
/// step budget, freezing its leader estimate.
#[derive(Debug)]
pub struct DeafFollower<P> {
    inner: P,
    steps_before_deaf: u64,
    frozen_estimate: Option<ProcessId>,
}

impl<P: OmegaProcess> DeafFollower<P> {
    /// Wraps `inner`; it behaves faithfully for `steps_before_deaf` `T2`
    /// steps and then stops accessing shared memory forever.
    #[must_use]
    pub fn new(inner: P, steps_before_deaf: u64) -> Self {
        DeafFollower {
            inner,
            steps_before_deaf,
            frozen_estimate: None,
        }
    }

    /// Whether the process has gone deaf.
    #[must_use]
    pub fn is_deaf(&self) -> bool {
        self.steps_before_deaf == 0
    }
}

impl<P: OmegaProcess> OmegaProcess for DeafFollower<P> {
    fn pid(&self) -> ProcessId {
        self.inner.pid()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn leader(&self) -> ProcessId {
        if self.is_deaf() {
            // Frozen: answers from stale local state, touching no registers.
            self.frozen_estimate.unwrap_or_else(|| self.inner.pid())
        } else {
            self.inner.leader()
        }
    }

    fn t2_step(&mut self) {
        if self.is_deaf() {
            return;
        }
        self.inner.t2_step();
        self.steps_before_deaf -= 1;
        if self.steps_before_deaf == 0 {
            self.frozen_estimate = self.inner.cached_leader();
        }
    }

    fn on_timer_expire(&mut self) -> u64 {
        if self.is_deaf() {
            PARKED_TIMEOUT
        } else {
            self.inner.on_timer_expire()
        }
    }

    fn initial_timeout(&self) -> u64 {
        self.inner.initial_timeout()
    }

    fn cached_leader(&self) -> Option<ProcessId> {
        if self.is_deaf() {
            self.frozen_estimate
        } else {
            self.inner.cached_leader()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::{Alg1Memory, Alg1Process};
    use omega_registers::MemorySpace;
    use std::sync::Arc;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn faithful_until_budget_then_frozen() {
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        let p0 = Alg1Process::new(Arc::clone(&mem), p(0));
        let mut deaf = DeafFollower::new(p0, 3);
        assert!(!deaf.is_deaf());
        for _ in 0..3 {
            deaf.t2_step();
        }
        assert!(deaf.is_deaf());
        let frozen = deaf.cached_leader();
        assert!(frozen.is_some());

        let reads_before = space.stats().total_reads();
        let writes_before = space.stats().total_writes();
        for _ in 0..10 {
            deaf.t2_step();
            let _ = deaf.leader();
            assert_eq!(deaf.on_timer_expire(), PARKED_TIMEOUT);
        }
        assert_eq!(
            space.stats().total_reads(),
            reads_before,
            "no reads while deaf"
        );
        assert_eq!(
            space.stats().total_writes(),
            writes_before,
            "no writes while deaf"
        );
        assert_eq!(deaf.cached_leader(), frozen, "estimate frozen forever");
    }

    #[test]
    fn delegates_identity() {
        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        let deaf = DeafFollower::new(Alg1Process::new(mem, p(2)), 1);
        assert_eq!(deaf.pid(), p(2));
        assert_eq!(deaf.n(), 3);
        assert!(deaf.initial_timeout() >= 1);
    }

    #[test]
    fn zero_budget_is_deaf_immediately() {
        let space = MemorySpace::new(2);
        let mem = Alg1Memory::new(&space);
        let mut deaf = DeafFollower::new(Alg1Process::new(mem, p(1)), 0);
        assert!(deaf.is_deaf());
        deaf.t2_step();
        assert_eq!(space.stats().total_reads(), 0);
        // With no estimate ever formed, it answers its own identity.
        assert_eq!(deaf.leader(), p(1));
    }
}
