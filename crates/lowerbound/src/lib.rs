//! Executable falsification of the paper's lower bounds.
//!
//! The paper proves three impossibility-flavored results about *any*
//! eventual-leader algorithm in asynchronous shared memory:
//!
//! * **Lemma 5** — the eventually elected leader must write shared memory
//!   forever;
//! * **Lemma 6** — every other correct process must read shared memory
//!   forever;
//! * **Theorem 5 / Corollary 1** — with bounded shared memory, there are
//!   runs in which at least `t + 1` (up to all) processes write forever.
//!
//! Proofs of this kind construct adversarial runs; this crate makes those
//! constructions executable. For each bound it provides a *plausible but
//! broken* algorithm that tries to beat it —
//!
//! * [`NaiveOmega`] — leader campaigns, wins, then goes silent (beats
//!   Lemma 5?),
//! * [`DeafFollower`] — a follower that stops reading once settled (beats
//!   Lemma 6?),
//! * [`FrugalOmega`] — all-boolean shared memory with only the leader
//!   writing (beats Theorem 5?),
//!
//! — and the corresponding detector ([`lemma5_evidence`],
//! [`lemma6_evidence`], [`theorem5_evidence`]) that replays the proof's run
//! construction in the deterministic simulator and returns the observable
//! violation, together with a control experiment showing the paper's real
//! algorithms survive the identical construction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod deaf;
mod detector;
mod frugal;
mod naive;

pub use deaf::DeafFollower;
pub use detector::{
    lemma5_control, lemma5_evidence, lemma6_evidence, theorem5_evidence, BoundedMemoryEvidence,
    DeafEvidence, TwinRunEvidence,
};
pub use frugal::{FrugalMemory, FrugalOmega};
pub use naive::{NaiveMemory, NaiveOmega};
