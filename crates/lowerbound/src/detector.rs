//! Executable proofs: the run constructions behind the lower bounds.
//!
//! Each function here replays, in the deterministic simulator, the
//! adversarial run construction used by one of the paper's lower-bound
//! proofs, and returns the observable *evidence* that the corresponding
//! broken algorithm violates Eventual Leadership:
//!
//! * [`lemma5_evidence`] — the twin-run argument: a leader that stops
//!   writing is indistinguishable from a crashed one, so in the twin run
//!   the followers elect a corpse forever.
//! * [`lemma6_evidence`] — a follower that stops reading keeps returning a
//!   crashed leader while everyone else moves on.
//! * [`theorem5_evidence`] — with bounded shared memory and only the
//!   leader writing, a state-aliasing schedule starves the election;
//!   Algorithm 2 survives the very same schedule because its handshake
//!   forces followers to write.
//!
//! Each evidence function has a *control* counterpart showing the real
//! algorithms do **not** violate the property under the same construction.

use omega_core::{boxed_actors, Alg1Memory, Alg1Process, OmegaVariant};
use omega_registers::{MemorySpace, ProcessId};
use omega_sim::adversary::Synchronous;
use omega_sim::crash::CrashPlan;
use omega_sim::metrics::TimelineSample;
use omega_sim::{Actor, RunReport, SimTime, Simulation};
use std::sync::Arc;

use crate::deaf::DeafFollower;
use crate::frugal::{FrugalMemory, FrugalOmega};
use crate::naive::{NaiveMemory, NaiveOmega};

/// Outcome of a Lemma-5 twin-run experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwinRunEvidence {
    /// Leader elected in the live run `R` (no crash).
    pub elected_in_live_run: Option<ProcessId>,
    /// Whether the followers' sampled estimates in the crash run `R'` are
    /// identical, sample by sample, to the live run — the
    /// indistinguishability at the heart of the proof.
    pub followers_views_identical: bool,
    /// Whether, at the end of `R'`, every follower still reports the
    /// crashed process as its leader.
    pub followers_follow_corpse: bool,
}

impl TwinRunEvidence {
    /// Whether the experiment demonstrated an Eventual Leadership
    /// violation: indistinguishable views *and* a permanently-elected
    /// corpse.
    #[must_use]
    pub fn violation_demonstrated(&self) -> bool {
        self.followers_views_identical && self.followers_follow_corpse
    }
}

fn run_synchronous(
    actors: Vec<Box<dyn Actor>>,
    crash: Option<(SimTime, ProcessId)>,
    horizon: u64,
) -> RunReport {
    let mut builder = Simulation::builder(actors)
        .adversary(Synchronous::new(3))
        .horizon(horizon)
        .sample_every(50);
    if let Some((time, pid)) = crash {
        builder = builder.crash_plan(CrashPlan::none().with_crash_at(time, pid));
    }
    builder.run()
}

/// Whether every follower's estimate matches between two sample sets.
fn followers_match(a: &[TimelineSample], b: &[TimelineSample], leader: ProcessId) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(sa, sb)| {
            sa.leaders
                .iter()
                .zip(&sb.leaders)
                .enumerate()
                .filter(|(i, _)| *i != leader.index())
                .all(|(_, (ea, eb))| ea == eb)
        })
}

/// Whether the final sample shows every process except `leader` trusting
/// `leader`.
fn followers_trust(report: &RunReport, leader: ProcessId) -> bool {
    report.timeline.samples().last().is_some_and(|s| {
        s.leaders
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != leader.index())
            .all(|(_, e)| *e == Some(leader))
    })
}

/// Lemma 5 made executable, against the broken [`NaiveOmega`]: run the
/// crash-free run `R`, identify the elected (and then silent) leader,
/// re-run with that leader crashed right after its last write, and compare
/// what the followers could observe.
#[must_use]
pub fn lemma5_evidence(
    n: usize,
    write_budget: u64,
    crash_at: u64,
    horizon: u64,
) -> TwinRunEvidence {
    let build = || {
        let space = MemorySpace::new(n);
        let mem = NaiveMemory::new(&space);
        boxed_actors(
            ProcessId::all(n)
                .map(|pid| NaiveOmega::new(Arc::clone(&mem), pid, write_budget))
                .collect(),
        )
    };
    let live = run_synchronous(build(), None, horizon);
    let Some(stab) = live.stabilization() else {
        return TwinRunEvidence {
            elected_in_live_run: None,
            followers_views_identical: false,
            followers_follow_corpse: false,
        };
    };
    let leader = stab.leader;
    let crashed = run_synchronous(
        build(),
        Some((SimTime::from_ticks(crash_at), leader)),
        horizon,
    );
    TwinRunEvidence {
        elected_in_live_run: Some(leader),
        followers_views_identical: followers_match(
            live.timeline.samples(),
            crashed.timeline.samples(),
            leader,
        ),
        followers_follow_corpse: followers_trust(&crashed, leader),
    }
}

/// The Lemma-5 control: the same twin-run construction against the real
/// Algorithm 1. Its leader never stops writing, so the runs *are*
/// distinguishable and the followers abandon the corpse.
#[must_use]
pub fn lemma5_control(n: usize, crash_at: u64, horizon: u64) -> TwinRunEvidence {
    let build = || OmegaVariant::Alg1.build(n).actors;
    let live = run_synchronous(build(), None, horizon);
    let Some(stab) = live.stabilization() else {
        return TwinRunEvidence {
            elected_in_live_run: None,
            followers_views_identical: false,
            followers_follow_corpse: false,
        };
    };
    let leader = stab.leader;
    let crashed = run_synchronous(
        build(),
        Some((SimTime::from_ticks(crash_at), leader)),
        horizon,
    );
    TwinRunEvidence {
        elected_in_live_run: Some(leader),
        followers_views_identical: followers_match(
            live.timeline.samples(),
            crashed.timeline.samples(),
            leader,
        ),
        followers_follow_corpse: followers_trust(&crashed, leader),
    }
}

/// Outcome of a Lemma-6 experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeafEvidence {
    /// The leader that crashed.
    pub crashed_leader: Option<ProcessId>,
    /// The process that stopped reading.
    pub deaf_process: ProcessId,
    /// Its final (frozen) leader estimate.
    pub deaf_final_estimate: Option<ProcessId>,
    /// Whether the processes that kept reading re-elected a correct leader.
    pub readers_reelected: bool,
}

impl DeafEvidence {
    /// Whether the experiment demonstrated the violation: the deaf process
    /// is stuck on the corpse while the readers have moved on — no common
    /// leader is ever reached.
    #[must_use]
    pub fn violation_demonstrated(&self) -> bool {
        self.readers_reelected
            && self.crashed_leader.is_some()
            && self.deaf_final_estimate == self.crashed_leader
    }
}

/// Lemma 6 made executable: in an Algorithm-1 system, the highest-identity
/// process stops reading after `deaf_steps` steps; the elected leader is
/// crashed afterwards. Readers re-elect; the deaf process cannot.
#[must_use]
pub fn lemma6_evidence(n: usize, deaf_steps: u64, crash_at: u64, horizon: u64) -> DeafEvidence {
    assert!(n >= 3, "need a leader, a reader, and a deaf process");
    let deaf_pid = ProcessId::new(n - 1);
    let space = MemorySpace::new(n);
    let mem = Alg1Memory::new(&space);
    let actors: Vec<Box<dyn Actor>> = ProcessId::all(n)
        .map(|pid| {
            let inner = Alg1Process::new(Arc::clone(&mem), pid);
            if pid == deaf_pid {
                boxed_actors(vec![DeafFollower::new(inner, deaf_steps)]).remove(0)
            } else {
                boxed_actors(vec![inner]).remove(0)
            }
        })
        .collect();
    let report = Simulation::builder(actors)
        .adversary(Synchronous::new(3))
        .crash_plan(CrashPlan::none().with_leader_crash_at(SimTime::from_ticks(crash_at)))
        .horizon(horizon)
        .sample_every(50)
        .run();

    let crashed_leader = report.crashed.iter().next();
    let deaf_final = report.timeline.last_estimate_of(deaf_pid);
    // Did every correct process that kept reading settle on a common
    // correct leader?
    let readers_reelected = report.timeline.samples().last().is_some_and(|s| {
        let mut readers = report
            .correct
            .iter()
            .filter(|&p| p != deaf_pid)
            .map(|p| s.leaders[p.index()]);
        match readers.next().flatten() {
            Some(q) => report.correct.contains(q) && readers.all(|e| e == Some(q)),
            None => false,
        }
    });
    DeafEvidence {
        crashed_leader,
        deaf_process: deaf_pid,
        deaf_final_estimate: deaf_final,
        readers_reelected,
    }
}

/// Outcome of a Theorem-5 experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedMemoryEvidence {
    /// Total shared-memory footprint of the frugal algorithm (bits) — the
    /// point is that it is tiny and bounded.
    pub frugal_hwm_bits: u64,
    /// Whether the frugal algorithm reached a stable correct leader under
    /// the aliasing schedule (expected: `false`).
    pub frugal_stabilized: bool,
    /// Whether the frugal run ended in split brain (two processes each
    /// trusting themselves).
    pub frugal_split_brain: bool,
    /// Whether Algorithm 2 stabilized under the *same* schedule
    /// (expected: `true`).
    pub alg2_stabilized: bool,
}

impl BoundedMemoryEvidence {
    /// Whether the experiment demonstrated the bound: the
    /// fewer-than-`t+1`-writers bounded algorithm failed on a run that the
    /// all-writers bounded algorithm survives.
    #[must_use]
    pub fn bound_demonstrated(&self) -> bool {
        !self.frugal_stabilized && self.alg2_stabilized
    }
}

/// Theorem 5 made executable: the leader of [`FrugalOmega`] toggles its
/// single-bit heartbeat with period `2s` under a synchronous schedule with
/// step period `s = 4`; follower scans land every 8 ticks, i.e. exactly two
/// toggles apart, so every scan reads the same recurring memory state —
/// the aliasing at the heart of the proof's Figure-4 construction.
/// Algorithm 2 runs under the identical schedule as the control.
#[must_use]
pub fn theorem5_evidence(n: usize, horizon: u64) -> BoundedMemoryEvidence {
    // The frugal, bounded, single-writer algorithm under the aliasing
    // schedule.
    let space = MemorySpace::new(n);
    let mem = FrugalMemory::new(&space);
    let actors = boxed_actors(
        ProcessId::all(n)
            .map(|pid| FrugalOmega::new(Arc::clone(&mem), pid, 8))
            .collect::<Vec<_>>(),
    );
    let frugal_space = space.clone();
    let frugal = Simulation::builder(actors)
        .adversary(Synchronous::new(4))
        .memory(frugal_space)
        .horizon(horizon)
        .sample_every(50)
        .run();
    let frugal_stabilized = frugal.stabilized_for(0.3);
    let frugal_split_brain = frugal.timeline.samples().last().is_some_and(|s| {
        let distinct: std::collections::HashSet<_> = s.leaders.iter().flatten().collect();
        distinct.len() > 1
    });
    let frugal_hwm_bits = frugal
        .footprints
        .last()
        .map(|(_, fp)| fp.total_hwm_bits())
        .unwrap_or(0);

    // Control: Algorithm 2 under the same schedule.
    let sys = OmegaVariant::Alg2.build(n);
    let alg2 = Simulation::builder(sys.actors)
        .adversary(Synchronous::new(4))
        .horizon(horizon)
        .sample_every(50)
        .run();
    BoundedMemoryEvidence {
        frugal_hwm_bits,
        frugal_stabilized,
        frugal_split_brain,
        alg2_stabilized: alg2.stabilized_for(0.3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma5_violation_demonstrated_for_naive_omega() {
        let evidence = lemma5_evidence(3, 5, 2_000, 20_000);
        assert_eq!(evidence.elected_in_live_run, Some(ProcessId::new(0)));
        assert!(
            evidence.followers_views_identical,
            "silent leader must be indistinguishable from a crashed one"
        );
        assert!(evidence.followers_follow_corpse);
        assert!(evidence.violation_demonstrated());
    }

    #[test]
    fn lemma5_no_violation_for_real_alg1() {
        let evidence = lemma5_control(3, 10_000, 40_000);
        assert!(evidence.elected_in_live_run.is_some());
        assert!(
            !evidence.followers_views_identical,
            "Algorithm 1's ever-writing leader makes the runs distinguishable"
        );
        assert!(!evidence.followers_follow_corpse, "followers re-elect");
        assert!(!evidence.violation_demonstrated());
    }

    #[test]
    fn lemma6_violation_demonstrated_for_deaf_follower() {
        let evidence = lemma6_evidence(3, 200, 10_000, 60_000);
        assert!(evidence.crashed_leader.is_some());
        assert!(evidence.readers_reelected, "reading processes move on");
        assert_eq!(
            evidence.deaf_final_estimate, evidence.crashed_leader,
            "the deaf process is stuck on the corpse"
        );
        assert!(evidence.violation_demonstrated());
    }

    #[test]
    fn theorem5_bound_demonstrated() {
        let evidence = theorem5_evidence(2, 30_000);
        assert!(evidence.frugal_hwm_bits <= 4, "frugal memory is a few bits");
        assert!(!evidence.frugal_stabilized, "aliasing starves the election");
        assert!(
            evidence.frugal_split_brain,
            "both processes trust themselves"
        );
        assert!(
            evidence.alg2_stabilized,
            "Algorithm 2 survives the same schedule"
        );
        assert!(evidence.bound_demonstrated());
    }
}
