//! The native-thread backend.

use std::time::Duration;

use omega_runtime::{Cluster, NodeConfig};

use crate::wall::WallPacing;
use crate::{Driver, Outcome, Scenario};

/// Realizes a [`Scenario`] on operating-system threads
/// (`omega_runtime::Cluster`), mapping scenario ticks to wall-clock time.
///
/// Two of the scenario's knobs are simulator-only: the adversary spec (no
/// user-space code can dictate the OS scheduler's interleaving — the OS
/// *is* the schedule, and its fairness is what realizes AWB₁ here) and the
/// timer spec (`thread::sleep(x · tick)` is a faithful timer, trivially
/// AWB₂). Everything else — variant, `n`, the crash script, the horizon —
/// is honored literally: crash directives fire at `tick × tick_duration`
/// on the wall clock, and the horizon bounds the run the same way.
///
/// Time in the returned [`Outcome`] is expressed in scenario ticks
/// (wall-clock elapsed divided by `tick`), so outcomes line up with the
/// simulator's. The run loop itself is shared with the SAN backend (see
/// [`SanDriver`](crate::SanDriver)); this driver contributes only the
/// in-memory cluster and its pacing.
#[derive(Debug, Clone, Copy)]
pub struct ThreadDriver {
    /// Wall-clock length of one scenario tick (also the timer unit).
    pub tick: Duration,
    /// Pause between consecutive `T2` iterations of each node.
    pub step_interval: Duration,
    /// How long every correct node must agree before the election counts
    /// as stable.
    pub window: Duration,
    /// How long to observe post-stabilization traffic for the tail report.
    pub tail_sample: Duration,
}

impl Default for ThreadDriver {
    fn default() -> Self {
        ThreadDriver {
            tick: Duration::from_micros(100),
            step_interval: Duration::from_micros(150),
            window: Duration::from_millis(40),
            tail_sample: Duration::from_millis(120),
        }
    }
}

impl ThreadDriver {
    /// Pacing that mimics registers on a storage-area network: everything
    /// is orders of magnitude slower, and nothing about the algorithms
    /// changes.
    ///
    /// The heartbeat/timeout numbers come from the canonical
    /// [`NodeConfig::san_like`] profile (one definition, owned by
    /// `omega-runtime`); this driver only adds the observation windows.
    /// For elections over *actual* disk-block registers, use
    /// [`SanDriver`](crate::SanDriver) — this profile merely paces
    /// in-memory registers like a SAN.
    #[must_use]
    pub fn san_like() -> Self {
        let config = NodeConfig::san_like();
        ThreadDriver {
            tick: config.tick,
            step_interval: config.step_interval,
            window: Duration::from_millis(300),
            tail_sample: Duration::from_millis(500),
        }
    }

    fn node_config(&self) -> NodeConfig {
        NodeConfig {
            step_interval: self.step_interval,
            tick: self.tick,
        }
    }

    fn pacing(&self) -> WallPacing {
        WallPacing {
            tick: self.tick,
            window: self.window,
            tail_sample: self.tail_sample,
        }
    }

    /// Starts a cluster configured for `scenario` without running the crash
    /// script or waiting for stabilization — for interactive use (watches,
    /// application traffic) on a scenario-described system.
    #[must_use]
    pub fn launch(&self, scenario: &Scenario) -> Cluster {
        Cluster::start(scenario.variant, scenario.n, self.node_config())
    }
}

impl Driver for ThreadDriver {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        let cluster = self.launch(scenario);
        let outcome = self.pacing().run(scenario, &cluster, "threads", None);
        cluster.shutdown();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaVariant;

    #[test]
    fn fault_free_scenario_elects_on_threads() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3).horizon(100_000);
        let outcome = ThreadDriver::default().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.backend, "threads");
        assert!(outcome.steps.iter().all(|&s| s > 0), "every node stepped");
        assert!(outcome.total_writes() > 0);
        assert!(outcome.san.is_none(), "in-memory backend: no block stats");
        let tail = outcome.tail.as_ref().expect("tail observed");
        // The tail shows real traffic from correct processes. (Stronger
        // shapes — exactly-one-writer, writer == elected — hold eventually
        // but not reliably in one observation window: under CPU contention
        // the OS's fairness can lapse and leadership can migrate right
        // after detection, which the AWB model explicitly allows.)
        assert!(!tail.writers.is_empty(), "tail shows traffic");
        for writer in tail.writers.iter() {
            assert!(
                outcome.correct.contains(writer),
                "only live processes write"
            );
        }
    }

    #[test]
    fn leader_crash_script_fails_over_on_threads() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
            .crash_leader_at(2_000)
            .horizon(200_000);
        let outcome = ThreadDriver::default().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.crashed.len(), 1, "exactly the old leader fell");
        assert!(!outcome.crashed.contains(outcome.elected.unwrap()));
    }

    #[test]
    fn san_like_pacing_comes_from_the_canonical_profile() {
        // The satellite dedup: these numbers must be NodeConfig::san_like's,
        // not a drifting local copy.
        let driver = ThreadDriver::san_like();
        let canonical = NodeConfig::san_like();
        assert_eq!(driver.tick, canonical.tick);
        assert_eq!(driver.step_interval, canonical.step_interval);
    }
}
