//! Randomized scenario generation, election invariants, and greedy
//! spec shrinking — the library half of the `omega-bench` `fuzz` binary.
//!
//! The hand-written registry stays on the friendly side of AWB; this
//! module generates specs the hand suite never reaches (wild adversaries,
//! broken timers, crash scripts aimed at the timely process) and checks
//! every run against two oracles:
//!
//! * **Safety** — never two simultaneously *stable* leaders. A claimant
//!   counts only while it is actively stepping ([`split_brain`]): an
//!   adversary that freezes a stale self-estimate (a stalled former
//!   leader) is churn, not split-brain.
//! * **Liveness** — when [`liveness_checkable`] proves the spec sits
//!   firmly inside the paper's AWB envelope, the run must stabilize.
//!   The predicate is deliberately conservative: it mirrors the bounds
//!   the generator draws from, and doubles as the shrinking guard (a
//!   shrink step that leaves the envelope stops reproducing a liveness
//!   violation and is rejected by re-testing).
//!
//! On a violation, [`shrink`] greedily simplifies the spec — halve `n`,
//! drop crash-script entries, reset adversary/timer/AWB/seed to the
//! [`Scenario::fault_free`] defaults — re-testing each candidate, until no
//! move preserves the violation. Because the spec text omits defaults, the
//! fixpoint is a minimal reproducer a few lines long, named
//! `fuzz-regression/<hash>` by [`reproducer_name`].

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_sim::chaos::{Campaign, ChaosPhase};
use omega_sim::metrics::TimelineSample;
use omega_sim::rng::SmallRng;
use omega_sim::RunReport;

use crate::spec_text::to_spec_text;
use crate::{AdversarySpec, AwbSpec, CrashSpec, Scenario, TimerSpec};

/// An invariant violation found by the oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes were simultaneously stable, active leaders.
    Safety {
        /// What was observed, for the report.
        detail: String,
    },
    /// The spec promised stabilization and the run never settled.
    Liveness {
        /// What was observed, for the report.
        detail: String,
    },
    /// The spec provably prevents stable self-leadership
    /// ([`provably_hostile`]) and a process reigned past the witness
    /// allowance anyway — the dual of `Liveness`.
    FalseStable {
        /// What was observed, for the report.
        detail: String,
    },
}

impl Violation {
    /// `"safety"`, `"liveness"`, or `"false-stable"`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Safety { .. } => "safety",
            Violation::Liveness { .. } => "liveness",
            Violation::FalseStable { .. } => "false-stable",
        }
    }

    /// The human-readable observation.
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            Violation::Safety { detail }
            | Violation::Liveness { detail }
            | Violation::FalseStable { detail } => detail,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

/// Consecutive samples over which both claimants must hold their own
/// leadership for the safety oracle to call split-brain.
pub const SAFETY_WINDOW: usize = 25;

/// Minimum steps a claimant must take *inside* the window to count as
/// active (a frozen process cannot be a stable leader, only a stale one).
pub const MIN_WINDOW_STEPS: u64 = 10;

/// Minimum sample intervals of the window in which a claimant must take at
/// least one step. Total steps alone are not simultaneity: under a bursty
/// adversary two processes can *alternate* bursts inside one window, each
/// keeping a stale self-estimate while frozen — churn, not split-brain.
/// Requiring activity in a *strict majority* of the window's
/// `SAFETY_WINDOW - 1` intervals means two claimants must have stepped in
/// at least one common interval — simultaneity by pigeonhole, not luck.
pub const MIN_ACTIVE_INTERVALS: usize = (SAFETY_WINDOW - 1) / 2 + 1;

/// The safety oracle: scans for a window of [`SAFETY_WINDOW`] consecutive
/// samples in which two distinct processes each believe **themselves**
/// leader throughout while both step *throughout* the window (at least
/// [`MIN_WINDOW_STEPS`] steps in total, spread over at least
/// [`MIN_ACTIVE_INTERVALS`] of the window's sample intervals).
///
/// Samples without step counts (hand-built timelines) never produce a
/// claimant — activity cannot be proven.
#[must_use]
pub fn split_brain(samples: &[TimelineSample]) -> Option<String> {
    if samples.len() < SAFETY_WINDOW {
        return None;
    }
    for window in samples.windows(SAFETY_WINDOW) {
        let first = &window[0];
        let last = &window[SAFETY_WINDOW - 1];
        if first.steps.is_empty() || last.steps.is_empty() {
            continue;
        }
        let claimants: Vec<usize> = (0..first.steps.len())
            .filter(|&p| {
                window
                    .iter()
                    .all(|s| s.leaders.get(p).copied().flatten() == Some(ProcessId::new(p)))
                    && last.steps[p].saturating_sub(first.steps[p]) >= MIN_WINDOW_STEPS
                    && window
                        .windows(2)
                        .filter(|pair| {
                            pair[1].steps.get(p).copied().unwrap_or(0)
                                > pair[0].steps.get(p).copied().unwrap_or(0)
                        })
                        .count()
                        >= MIN_ACTIVE_INTERVALS
            })
            .collect();
        if claimants.len() >= 2 {
            return Some(format!(
                "processes {:?} each held self-leadership over [{}, {}] while actively stepping",
                claimants,
                first.time.ticks(),
                last.time.ticks()
            ));
        }
    }
    None
}

/// Whether the environment (schedule + timers) stays inside the regime
/// the paper's guarantees are stated over: bounded stalls and honest,
/// eventually-accurate timers.
///
/// This gates **both** oracles. Outside this envelope Ω promises nothing
/// — under stuck-low timers every process perpetually suspects every
/// other and two active self-leaders are *correct* behavior, and
/// convergence time grows roughly quadratically with the largest
/// scheduling gap (each false suspicion widens the adaptive timeout by a
/// constant), so multi-thousand-tick stalls legitimately outlast any
/// horizon this fuzzer can afford.
#[must_use]
pub fn environment_tame(s: &Scenario) -> bool {
    let adversary_ok = match s.adversary {
        AdversarySpec::Synchronous { period } => period <= 16,
        AdversarySpec::RoundRobin { slot } => slot <= 16,
        AdversarySpec::Random { min, max } => min >= 1 && min <= max && max <= 64,
        AdversarySpec::Bursty {
            fast,
            stall,
            burst_len,
        } => (1..=16).contains(&fast) && stall <= 128 && burst_len >= 1,
        AdversarySpec::PartitionedPhases {
            phase_len,
            fast,
            stall,
        } => fast >= 1 && phase_len <= 2_000 && stall <= 32,
        // Growing stalls starve their victim's estimate forever; the
        // staller is the AWB-violating schedule by construction.
        AdversarySpec::GrowingBursts { .. } | AdversarySpec::LeaderStaller { .. } => false,
    };
    if !adversary_ok {
        return false;
    }
    match s.timers {
        TimerSpec::Exact => true,
        TimerSpec::Affine { scale, offset } => (1..=4).contains(&scale) && offset <= 64,
        TimerSpec::Jittered { jitter } => jitter <= 64,
        TimerSpec::JitterAffineMix {
            jitter,
            scale,
            offset,
        } => jitter <= 64 && (1..=4).contains(&scale) && offset <= 64,
        // A chaotic timer fires arbitrarily *early*: during the chaos
        // phase every process suspects every other on no evidence, and a
        // storm of simultaneously active self-leaders is correct behavior
        // — the same reason stuck-low timers are out.
        TimerSpec::ChaoticThenExact { .. } | TimerSpec::StuckLow { .. } => false,
    }
}

/// Whether the spec sits firmly enough inside the AWB envelope that the
/// paper's theorems promise stabilization *within the horizon* — the gate
/// in front of the liveness oracle.
///
/// Deliberately conservative (a `false` only skips the liveness check, a
/// wrong `true` is a false alarm), and calibrated to the regimes this
/// repository's own registry demonstrates convergence in: *uniform*
/// schedules only (synchronous / round-robin / bounded-random — bursty
/// and partitioned-phase schedules are structured starvation, under which
/// stepping gaps legitimately outpace the adaptive timeouts and the
/// estimate keeps rotating), near-honest timers (jitter within the
/// registry's σ scale), a *strongly* timely process (`sigma <= 8`, the
/// registry ships 4), an early-settling AWB₁ promise, crashes early
/// enough to re-elect and re-settle, no crash touching the timely
/// process, and no step-clock variant (its liveness bound is a step-rate
/// ratio the envelope does not constrain).
#[must_use]
pub fn liveness_checkable(s: &Scenario) -> bool {
    let Some(AwbSpec {
        timely,
        tau1,
        sigma,
    }) = s.awb
    else {
        return false;
    };
    if s.variant == OmegaVariant::StepClock {
        return false;
    }
    if s.horizon < 20_000 || tau1 > 1_000 || sigma > 8 || s.sample_every > 200 {
        return false;
    }
    let adversary_ok = match s.adversary {
        AdversarySpec::Synchronous { period } => period <= 16,
        AdversarySpec::RoundRobin { slot } => slot <= 16,
        AdversarySpec::Random { min, max } => min >= 1 && min <= max && max <= 64,
        AdversarySpec::Bursty { .. }
        | AdversarySpec::PartitionedPhases { .. }
        | AdversarySpec::GrowingBursts { .. }
        | AdversarySpec::LeaderStaller { .. } => false,
    };
    if !adversary_ok {
        return false;
    }
    let timers_ok = match s.timers {
        TimerSpec::Exact => true,
        TimerSpec::Affine { scale, offset } => (1..=4).contains(&scale) && offset <= 64,
        TimerSpec::Jittered { jitter } => jitter <= 8,
        TimerSpec::JitterAffineMix {
            jitter,
            scale,
            offset,
        } => jitter <= 8 && (1..=4).contains(&scale) && offset <= 64,
        TimerSpec::ChaoticThenExact { .. } | TimerSpec::StuckLow { .. } => false,
    };
    if !timers_ok {
        return false;
    }
    if s.crashes.len() >= s.n {
        return false;
    }
    // Campaigns: a partition legitimately delays stabilization until well
    // past the heal (both sides' suspicions must re-expire), so its
    // convergence bound is outside this conservative envelope — skip
    // liveness, the safety oracle still watches the unmasked timeline.
    // Storms and waves are checkable when they clear early (the crash
    // rule's shape) and no wave kills the timely process.
    if let Some(campaign) = &s.campaign {
        if !campaign.is_empty() && s.horizon < 40_000 {
            return false;
        }
        let ok = campaign.phases.iter().all(|phase| {
            let done_by = phase.end().unwrap_or_else(|| phase.start());
            if phase.start() > s.horizon / 4 || done_by > s.horizon / 4 {
                return false;
            }
            match phase {
                // Cuts and flaps pump suspicions like partitions do; their
                // convergence bound is likewise outside this envelope.
                ChaosPhase::Partition { .. } | ChaosPhase::Cut { .. } | ChaosPhase::Flap { .. } => {
                    false
                }
                ChaosPhase::Wave { crash, .. } => crash.iter().all(|&p| p != timely),
                ChaosPhase::Storm { factor, jitter, .. } => *factor <= 4 && *jitter <= 64,
                ChaosPhase::Heal { .. } => true,
            }
        });
        if !ok {
            return false;
        }
    }
    // A crash resets convergence: there must be room to detect it (the
    // grown timeouts have to expire once more) and re-settle.
    if !s.crashes.is_empty() && s.horizon < 40_000 {
        return false;
    }
    s.crashes.iter().all(|crash| match *crash {
        CrashSpec::At { tick, pid } => pid != timely && tick <= s.horizon / 4,
        // A leader-relative crash may hit the timely process itself.
        CrashSpec::LeaderAt { .. } => false,
    })
}

/// Ticks after a partition window opens during which split leader
/// estimates remain *correct* Ω behavior even past the heal: the two
/// sides' pumped suspicions and grown timeouts must re-expire before
/// estimates can merge again. The safety oracle masks each partition's
/// `[from, until + grace)` out of the timeline.
pub const HEAL_GRACE_TICKS: u64 = 5_000;

/// Runs the safety oracle with campaign partitions masked out: inside a
/// register-space partition (and for [`HEAL_GRACE_TICKS`] after it) the
/// minority legitimately elects its own leader, so split estimates there
/// are the *spec's* doing, not split-brain. Each unmasked contiguous
/// segment of the timeline is scanned independently.
#[must_use]
pub fn split_brain_outside_partitions(s: &Scenario, samples: &[TimelineSample]) -> Option<String> {
    let masks: Vec<(u64, u64)> = s
        .campaign
        .iter()
        .flat_map(|c| c.phases.iter())
        .filter_map(|phase| match phase {
            // A flap's healed half-cycles stay masked too: the grace after
            // each cut overlaps the next install, so the whole window is
            // one contiguous regime of spec-sanctioned disagreement.
            ChaosPhase::Partition { from, until, .. }
            | ChaosPhase::Cut { from, until, .. }
            | ChaosPhase::Flap { from, until, .. } => {
                Some((*from, until.saturating_add(HEAL_GRACE_TICKS)))
            }
            _ => None,
        })
        .collect();
    if masks.is_empty() {
        return split_brain(samples);
    }
    let mut segment_start = 0;
    for (i, sample) in samples.iter().enumerate() {
        let t = sample.time.ticks();
        if masks.iter().any(|&(from, end)| t >= from && t < end) {
            if let Some(detail) = split_brain(&samples[segment_start..i]) {
                return Some(detail);
            }
            segment_start = i + 1;
        }
    }
    split_brain(&samples[segment_start..])
}

/// Whether the spec provably prevents any stable self-leading reign, and
/// over which window — the gate in front of the non-election oracle, dual
/// to [`liveness_checkable`].
///
/// Deliberately conservative (a `false` only skips the check; a wrong
/// `true` files a false regression), and calibrated to the recipe the
/// registry's `hostile/` members prove out: no AWB envelope, stuck-low
/// timers, and the leader-stalling schedule, whose plurality target
/// rotates every effective stall. Every spec-sanctioned reign must sit far
/// below the witness allowance (a third of the window): continuous
/// partition/cut spans and flap periods bounded by `window/6`, the
/// (storm-stretched) stall cadence by `window/8`. Crashes and waves void
/// the certificate — a lone survivor reigns legitimately — and the
/// step-clock variant has no timers for `StuckLow` to break.
#[must_use]
pub fn provably_hostile(s: &Scenario) -> Option<(u64, u64)> {
    if s.awb.is_some() || s.variant == OmegaVariant::StepClock || !s.crashes.is_empty() {
        return None;
    }
    let TimerSpec::StuckLow { cap } = s.timers else {
        return None;
    };
    if !(1..=16).contains(&cap) {
        return None;
    }
    let AdversarySpec::LeaderStaller { base, stall } = s.adversary else {
        return None;
    };
    if !(1..=4).contains(&base) {
        return None;
    }
    let campaign = s.campaign.as_ref()?;
    let (from, until) = campaign.disruption_window(s.horizon)?;
    let window = until.saturating_sub(from);
    let mut storm_factor = 1;
    for phase in &campaign.phases {
        match phase {
            ChaosPhase::Wave { .. } => return None,
            ChaosPhase::Heal { .. } => {}
            ChaosPhase::Storm { factor, .. } => storm_factor = storm_factor.max(*factor),
            // A cut sanctions a per-side reign for its whole continuous
            // span; only spans the heal cadence keeps short are certified.
            ChaosPhase::Partition { from, until, .. } | ChaosPhase::Cut { from, until, .. } => {
                if until.saturating_sub(*from).saturating_mul(6) > window {
                    return None;
                }
            }
            ChaosPhase::Flap { period, .. } => {
                if period.saturating_mul(6) > window {
                    return None;
                }
            }
        }
    }
    // Stalls must dwarf the stuck timers (so every reigning leader is
    // actually suspected) and the stretched rotation cadence must still
    // fit many times into the window.
    let effective = stall.saturating_mul(storm_factor);
    if effective <= cap.saturating_mul(4) || effective.saturating_mul(8) > window {
        return None;
    }
    Some((from, until))
}

/// Runs the scenario's variant on the simulator and applies the oracles.
#[must_use]
pub fn run_and_check(s: &Scenario) -> Option<Violation> {
    let sys = s.variant.build(s.n);
    let space = sys.space.clone();
    let report = s.sim_builder(sys.actors).memory(space).run();
    check_report(s, &report)
}

/// Applies the safety and (when checkable) liveness and non-election
/// oracles to a report.
#[must_use]
pub fn check_report(s: &Scenario, report: &RunReport) -> Option<Violation> {
    if environment_tame(s) {
        if let Some(detail) = split_brain_outside_partitions(s, report.timeline.samples()) {
            return Some(Violation::Safety { detail });
        }
    }
    if liveness_checkable(s) && report.stabilization().is_none() {
        let last = report.timeline.samples().last();
        return Some(Violation::Liveness {
            detail: format!(
                "AWB spec never stabilized over horizon {}; final estimates {:?}",
                s.horizon,
                last.map(|sample| &sample.leaders)
            ),
        });
    }
    if let Some((from, until)) = provably_hostile(s) {
        let witness =
            crate::NonElectionWitness::from_timeline(from, until, report.timeline.samples());
        if witness.false_stable_ticks > 0 {
            return Some(Violation::FalseStable {
                detail: format!(
                    "provably-hostile spec held a stable reign: {} false-stable ticks \
                     (max streak {} over window {from}..{until}, allowance {})",
                    witness.false_stable_ticks,
                    witness.max_stable_streak_ticks,
                    witness.allowance()
                ),
            });
        }
    }
    None
}

/// Draws a random scenario. `~85%` of draws keep an AWB envelope (most of
/// those from the tame pools so the liveness oracle applies); the rest
/// drop it and range over the wild adversaries and broken timers, where
/// only safety is checked.
#[must_use]
pub fn generate(rng: &mut SmallRng) -> Scenario {
    // One draw in five comes from the hostile pool: specs built to
    // *prevent* stable self-leadership, where the non-election oracle
    // ([`provably_hostile`]) takes over from the liveness oracle.
    if rng.gen_range(0..=99) < 20 {
        return generate_hostile(rng);
    }
    let variant = OmegaVariant::all()[rng.gen_range(0..=3) as usize];
    let n = rng.gen_range(2..=10) as usize;
    let horizon = [20_000, 40_000, 60_000][rng.gen_range(0..=2) as usize];
    let mut s = Scenario::fault_free(variant, n)
        .horizon(horizon)
        .seed(rng.gen_range(0..=999_983))
        .sample_every([50, 100, 200][rng.gen_range(0..=2) as usize])
        .stats_checkpoints(4);
    // The hostile pool above already covers the no-envelope corner, so
    // the normal pool leans tamer than it used to: with AWB, mostly stay
    // inside the envelope so liveness gets checked; sometimes (and always
    // without AWB) go wild for safety-only coverage.
    let awb = rng.gen_range(0..=99) < 95;
    let tame = awb && rng.gen_range(0..=99) < 90;
    if awb {
        let timely = ProcessId::new(rng.gen_range(0..=(n as u64 - 1)) as usize);
        let (tau1, sigma) = if tame {
            (rng.gen_range(0..=1_000), rng.gen_range(2..=8))
        } else {
            (rng.gen_range(0..=horizon / 4), rng.gen_range(2..=32))
        };
        s = s.awb(timely, tau1, sigma);
    } else {
        s = s.without_awb();
    }
    s.adversary = random_adversary(rng, n, variant, tame);
    s.timers = random_timers(rng, horizon, tame);
    let timely = s.awb.map(|a| a.timely);
    let crashes = rng.gen_range(0..=3).min(n as u64 - 1);
    for _ in 0..crashes {
        let spec = if tame {
            // Keep the violation-free side honest: spare the timely
            // process and crash early enough to re-elect.
            let mut pid = ProcessId::new(rng.gen_range(0..=(n as u64 - 1)) as usize);
            if Some(pid) == timely {
                pid = ProcessId::new((pid.index() + 1) % n);
            }
            CrashSpec::At {
                tick: rng.gen_range(0..=horizon / 4),
                pid,
            }
        } else if rng.gen_range(0..=1) == 0 {
            CrashSpec::LeaderAt {
                tick: rng.gen_range(0..=horizon),
            }
        } else {
            CrashSpec::At {
                tick: rng.gen_range(0..=horizon),
                pid: ProcessId::new(rng.gen_range(0..=(n as u64 - 1)) as usize),
            }
        };
        s.crashes.push(spec);
    }
    // A quarter of all draws carry a small chaos campaign. Phases stay
    // inside the tame envelope (early, short, bounded storms, waves that
    // spare the timely process) so the oracles keep their teeth: storms
    // and waves stay liveness-checked, partitions are safety-checked
    // outside their masked windows.
    if rng.gen_range(0..=99) < 25 {
        s = s.campaign(random_campaign(rng, n, horizon, timely));
    }
    s
}

/// Draws from the hostile pool: no AWB envelope, stuck-low timers, the
/// leader-stalling schedule, and a flap or storm covering most of the run
/// — exactly the shape [`provably_hostile`] certifies, so (nearly) every
/// draw gets the non-election oracle applied. Public so the fuzz bin's
/// `--hostile-budget` slice can concentrate a run on this pool.
#[must_use]
pub fn generate_hostile(rng: &mut SmallRng) -> Scenario {
    // The step-clock variant has no timers for `StuckLow` to break.
    let variant =
        [OmegaVariant::Alg1, OmegaVariant::Alg2, OmegaVariant::Mwmr][rng.gen_range(0..=2) as usize];
    let n = rng.gen_range(3..=8) as usize;
    let horizon = [60_000, 80_000, 100_000][rng.gen_range(0..=2) as usize];
    let cap = rng.gen_range(4..=12);
    let mut s = Scenario::fault_free(variant, n)
        .horizon(horizon)
        .seed(rng.gen_range(0..=999_983))
        .sample_every([50, 100][rng.gen_range(0..=1) as usize])
        .stats_checkpoints(4)
        .without_awb()
        .timers(TimerSpec::StuckLow { cap });
    let from = rng.gen_range(5_000..=10_000);
    let until = horizon - rng.gen_range(10_000..=20_000);
    let window = until - from;
    let split = rng.gen_range(1..=(n as u64 - 1)) as usize;
    let side = |range: std::ops::Range<usize>| range.map(ProcessId::new).collect::<Vec<_>>();
    let storm = rng.gen_range(0..=1) == 1;
    let mut campaign = Campaign::new();
    let storm_factor = if storm {
        let factor = rng.gen_range(2..=16);
        campaign = campaign.phase(ChaosPhase::Storm {
            factor,
            jitter: rng.gen_range(0..=8),
            from,
            until,
        });
        // Sometimes a short directed cut rides inside the storm window.
        if rng.gen_range(0..=2) == 0 {
            let span = window / 8;
            let cut_from = from + rng.gen_range(0..=(window - span));
            campaign = campaign.phase(ChaosPhase::Cut {
                blinded: side(0..split),
                hidden: side(split..n),
                from: cut_from,
                until: cut_from + span,
            });
        }
        factor
    } else {
        campaign = campaign.phase(ChaosPhase::Flap {
            groups: vec![side(0..split), side(split..n)],
            period: rng.gen_range(500..=window / 8),
            from,
            until,
        });
        1
    };
    // Quote the stall pre-stretch so the *effective* rotation cadence
    // lands inside the certified band regardless of the storm factor.
    let stall = (rng.gen_range(2_000..=window / 8) / storm_factor).max(cap * 4 + 1);
    s.adversary = AdversarySpec::LeaderStaller {
        base: rng.gen_range(1..=3),
        stall,
    };
    s.campaign(campaign)
}

fn random_campaign(
    rng: &mut SmallRng,
    n: usize,
    horizon: u64,
    timely: Option<ProcessId>,
) -> Campaign {
    let mut campaign = Campaign::new();
    for _ in 0..rng.gen_range(1..=2) {
        let from = rng.gen_range(1_000..=horizon / 8);
        let until = from + rng.gen_range(500..=horizon / 8);
        match rng.gen_range(0..=2) {
            0 => {
                // A two-way split at a random cut point.
                let cut = rng.gen_range(1..=(n as u64 - 1)) as usize;
                campaign = campaign.phase(ChaosPhase::Partition {
                    groups: vec![
                        (0..cut).map(ProcessId::new).collect(),
                        (cut..n).map(ProcessId::new).collect(),
                    ],
                    from,
                    until,
                });
            }
            1 => {
                campaign = campaign.phase(ChaosPhase::Storm {
                    factor: rng.gen_range(2..=4),
                    jitter: rng.gen_range(0..=8),
                    from,
                    until,
                });
            }
            _ => {
                let mut pid = ProcessId::new(rng.gen_range(0..=(n as u64 - 1)) as usize);
                if Some(pid) == timely {
                    pid = ProcessId::new((pid.index() + 1) % n);
                }
                campaign = campaign.phase(ChaosPhase::Wave {
                    crash: vec![pid],
                    recover: vec![],
                    at: from,
                });
                if rng.gen_range(0..=1) == 0 {
                    campaign = campaign.phase(ChaosPhase::Wave {
                        crash: vec![],
                        recover: vec![pid],
                        at: until,
                    });
                }
            }
        }
    }
    campaign
}

fn random_adversary(
    rng: &mut SmallRng,
    n: usize,
    variant: OmegaVariant,
    tame: bool,
) -> AdversarySpec {
    let min_delay = if variant == OmegaVariant::StepClock {
        2
    } else {
        1
    };
    // Tame draws stay inside the liveness envelope's uniform-schedule
    // pool; wild draws add the structured-starvation shapes (safety-only
    // coverage, and only within `environment_tame`'s bounds at that).
    let kinds = if tame { 3 } else { 7 };
    match rng.gen_range(0..=(kinds - 1)) {
        0 => AdversarySpec::Synchronous {
            period: rng.gen_range(1..=8).max(min_delay),
        },
        1 => AdversarySpec::RoundRobin {
            slot: rng.gen_range(1..=8).max(min_delay),
        },
        2 => {
            let min = rng.gen_range(min_delay..=4);
            let cap = if tame { 32 } else { 400 };
            AdversarySpec::Random {
                min,
                max: rng.gen_range(min..=cap),
            }
        }
        // Half the structured-starvation draws stay inside
        // `environment_tame`'s bounds so the safety oracle keeps watching
        // the bursty/phased shapes; the rest roam free (trace-determinism
        // coverage only).
        3 => AdversarySpec::Bursty {
            fast: rng.gen_range(min_delay..=4),
            stall: if rng.gen_range(0..=1) == 0 {
                rng.gen_range(16..=128)
            } else {
                rng.gen_range(129..=10_000)
            },
            burst_len: rng.gen_range(2..=16),
        },
        4 => AdversarySpec::PartitionedPhases {
            phase_len: rng.gen_range(100..=2_000),
            fast: rng.gen_range(min_delay..=4),
            stall: if rng.gen_range(0..=1) == 0 {
                rng.gen_range(8..=32)
            } else {
                rng.gen_range(33..=1_000)
            },
        },
        5 => AdversarySpec::GrowingBursts {
            victim: ProcessId::new(rng.gen_range(0..=(n as u64 - 1)) as usize),
            fast: rng.gen_range(min_delay..=4),
            burst_len: rng.gen_range(2..=8),
            initial_stall: rng.gen_range(100..=2_000),
            factor: rng.gen_range(2..=4),
        },
        _ => AdversarySpec::LeaderStaller {
            base: rng.gen_range(min_delay..=4),
            stall: rng.gen_range(500..=8_000),
        },
    }
}

fn random_timers(rng: &mut SmallRng, horizon: u64, tame: bool) -> TimerSpec {
    let kinds = if tame { 4 } else { 6 };
    match rng.gen_range(0..=(kinds - 1)) {
        0 | 1 => TimerSpec::Exact,
        2 => TimerSpec::Affine {
            scale: rng.gen_range(1..=4),
            offset: rng.gen_range(0..=64),
        },
        3 => TimerSpec::Jittered {
            jitter: rng.gen_range(0..=if tame { 8 } else { 64 }),
        },
        4 => TimerSpec::ChaoticThenExact {
            chaos_until: rng.gen_range(0..=horizon),
            chaos_max: rng.gen_range(1..=256),
        },
        _ => TimerSpec::StuckLow {
            cap: rng.gen_range(1..=16),
        },
    }
}

/// Greedily shrinks a violating spec: tries each simplification, keeps it
/// if `oracle` still reports a violation, and repeats until no move
/// survives. The oracle is a parameter so tests can shrink against
/// planted bugs; the fuzz binary passes [`run_and_check`].
pub fn shrink(
    original: &Scenario,
    oracle: &mut dyn FnMut(&Scenario) -> Option<Violation>,
) -> Scenario {
    let mut best = original.clone();
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&best) {
            if oracle(&candidate).is_some() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Strictly simpler variants of `s`, most aggressive first. Every move
/// either reduces `n`, removes a crash, or resets a field to its default
/// (which the spec text then omits), so shrinking terminates.
fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Chaos first: whole campaign, then whole phases. A campaign is the
    // most structured (and least likely load-bearing) part of a generated
    // spec, and dropping a phase never invalidates the rest.
    if let Some(campaign) = &s.campaign {
        let mut t = s.clone();
        t.campaign = None;
        out.push(t);
        for i in 0..campaign.phases.len() {
            let mut t = s.clone();
            let phases = &mut t.campaign.as_mut().expect("cloned Some").phases;
            phases.remove(i);
            if phases.is_empty() {
                t.campaign = None;
            }
            out.push(t);
        }
        // Then structure-preserving trims, for when a whole phase is
        // load-bearing but its extent is not: halve the active span, drop
        // a member from the largest group or side.
        for i in 0..campaign.phases.len() {
            let mut t = s.clone();
            if shrink_phase_span(&mut t.campaign.as_mut().expect("cloned Some").phases[i]) {
                out.push(t);
            }
            let mut t = s.clone();
            if shrink_phase_groups(&mut t.campaign.as_mut().expect("cloned Some").phases[i]) {
                out.push(t);
            }
        }
    }
    for target in [s.n / 2, s.n - 1] {
        if target >= 1 && target < s.n {
            out.push(with_n(s, target));
        }
    }
    for i in 0..s.crashes.len() {
        let mut t = s.clone();
        t.crashes.remove(i);
        out.push(t);
    }
    let base = Scenario::fault_free(s.variant, s.n);
    if s.awb != base.awb {
        let mut t = s.clone();
        t.awb = base.awb;
        t.expect_stabilization = true;
        out.push(t);
    }
    if s.adversary != base.adversary {
        let mut t = s.clone();
        t.adversary = base.adversary.clone();
        out.push(t);
    }
    if s.timers != base.timers {
        let mut t = s.clone();
        t.timers = base.timers;
        out.push(t);
    }
    if s.horizon != base.horizon {
        let mut t = s.clone();
        t.horizon = base.horizon;
        out.push(t);
    }
    if s.sample_every != base.sample_every {
        let mut t = s.clone();
        t.sample_every = base.sample_every;
        out.push(t);
    }
    if s.stats_checkpoints != base.stats_checkpoints {
        let mut t = s.clone();
        t.stats_checkpoints = base.stats_checkpoints;
        out.push(t);
    }
    if s.seed != base.seed {
        let mut t = s.clone();
        t.seed = base.seed;
        out.push(t);
    }
    if s.expect_stabilization != s.awb.is_some() {
        let mut t = s.clone();
        t.expect_stabilization = t.awb.is_some();
        out.push(t);
    }
    if s.san_latency.is_some() {
        let mut t = s.clone();
        t.san_latency = None;
        out.push(t);
    }
    out
}

/// Halves the phase's active span (and clamps a flap's period into the
/// shrunk window so it still oscillates). Returns whether anything
/// changed; spans shrink strictly, so the move terminates.
fn shrink_phase_span(phase: &mut ChaosPhase) -> bool {
    match phase {
        ChaosPhase::Partition { from, until, .. }
        | ChaosPhase::Cut { from, until, .. }
        | ChaosPhase::Storm { from, until, .. } => {
            let half = *from + until.saturating_sub(*from) / 2;
            if half <= *from {
                return false;
            }
            *until = half;
            true
        }
        ChaosPhase::Flap {
            from,
            until,
            period,
            ..
        } => {
            let half = *from + until.saturating_sub(*from) / 2;
            if half <= *from {
                return false;
            }
            *until = half;
            *period = (*period).min(half - *from).max(1);
            true
        }
        ChaosPhase::Wave { .. } | ChaosPhase::Heal { .. } => false,
    }
}

/// Drops the last member of the phase's largest group or cut side, keeping
/// every group nonempty. Returns whether anything changed.
fn shrink_phase_groups(phase: &mut ChaosPhase) -> bool {
    match phase {
        ChaosPhase::Partition { groups, .. } | ChaosPhase::Flap { groups, .. } => {
            match groups
                .iter_mut()
                .filter(|g| g.len() > 1)
                .max_by_key(|g| g.len())
            {
                Some(group) => {
                    group.pop();
                    true
                }
                None => false,
            }
        }
        ChaosPhase::Cut {
            blinded, hidden, ..
        } => {
            let side = if blinded.len() >= hidden.len() {
                blinded
            } else {
                hidden
            };
            if side.len() <= 1 {
                return false;
            }
            side.pop();
            true
        }
        ChaosPhase::Storm { .. } | ChaosPhase::Wave { .. } | ChaosPhase::Heal { .. } => false,
    }
}

/// `s` at a smaller system size, with out-of-range process references
/// dropped (crash targets) or clamped to `p0` (AWB witness, stall victim).
fn with_n(s: &Scenario, m: usize) -> Scenario {
    let mut t = s.clone();
    t.n = m;
    t.crashes.retain(|c| match c {
        CrashSpec::At { pid, .. } => pid.index() < m,
        CrashSpec::LeaderAt { .. } => true,
    });
    if let Some(awb) = &mut t.awb {
        if awb.timely.index() >= m {
            awb.timely = ProcessId::new(0);
        }
    }
    if let AdversarySpec::GrowingBursts { victim, .. } = &mut t.adversary {
        if victim.index() >= m {
            *victim = ProcessId::new(0);
        }
    }
    if let Some(campaign) = &mut t.campaign {
        for phase in &mut campaign.phases {
            match phase {
                ChaosPhase::Partition { groups, .. } | ChaosPhase::Flap { groups, .. } => {
                    for group in groups.iter_mut() {
                        group.retain(|p| p.index() < m);
                    }
                }
                ChaosPhase::Wave { crash, recover, .. } => {
                    crash.retain(|p| p.index() < m);
                    recover.retain(|p| p.index() < m);
                }
                ChaosPhase::Cut {
                    blinded, hidden, ..
                } => {
                    blinded.retain(|p| p.index() < m);
                    hidden.retain(|p| p.index() < m);
                }
                ChaosPhase::Storm { .. } | ChaosPhase::Heal { .. } => {}
            }
        }
        // A cut that lost a whole side to the clamp no longer validates.
        campaign.phases.retain(|phase| {
            !matches!(phase, ChaosPhase::Cut { blinded, hidden, .. }
                if blinded.is_empty() || hidden.is_empty())
        });
    }
    t
}

/// Number of lines in the spec text — the minimality measure reports use.
#[must_use]
pub fn spec_lines(s: &Scenario) -> usize {
    to_spec_text(s).lines().count()
}

/// FNV-1a 64 of `text`, truncated to 12 hex characters.
#[must_use]
pub fn spec_hash(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")[..12].to_string()
}

/// The registry name of a reproducer: `fuzz-regression/<hash>`, hashed
/// over the spec text *minus* its `scenario` line (the name cannot depend
/// on itself).
#[must_use]
pub fn reproducer_name(s: &Scenario) -> String {
    let text = to_spec_text(s);
    let canonical: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with("scenario "))
        .collect();
    format!("fuzz-regression/{}", spec_hash(&canonical.join("\n")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec_text::from_spec_text;
    use omega_sim::SimTime;

    fn sample(time: u64, leaders: Vec<Option<usize>>, steps: Vec<u64>) -> TimelineSample {
        TimelineSample {
            time: SimTime::from_ticks(time),
            leaders: leaders.into_iter().map(|l| l.map(ProcessId::new)).collect(),
            steps,
        }
    }

    #[test]
    fn split_brain_detects_two_active_self_leaders() {
        let samples: Vec<TimelineSample> = (0..40)
            .map(|i| {
                sample(
                    i * 100,
                    vec![Some(0), Some(1), Some(0)],
                    vec![i * 20, i * 20, i * 20],
                )
            })
            .collect();
        let hit = split_brain(&samples).expect("p0 and p1 both self-stable and active");
        assert!(hit.contains("[0, 1]"), "{hit}");
    }

    #[test]
    fn split_brain_ignores_frozen_claimants() {
        // p1 claims itself but never steps — a stale estimate, not a
        // second leader.
        let samples: Vec<TimelineSample> = (0..40)
            .map(|i| {
                sample(
                    i * 100,
                    vec![Some(0), Some(1), Some(0)],
                    vec![i * 20, 7, i * 20],
                )
            })
            .collect();
        assert!(split_brain(&samples).is_none());
        // And hand-built samples without step counts can never claim.
        let blind: Vec<TimelineSample> = (0..40)
            .map(|i| sample(i * 100, vec![Some(0), Some(1)], Vec::new()))
            .collect();
        assert!(split_brain(&blind).is_none());
    }

    #[test]
    fn split_brain_ignores_alternating_bursts() {
        // p0 and p1 each hold a self-estimate across the window, but they
        // step in *alternating* bursts (p0 in even ten-sample blocks, p1
        // in odd ones): their active spans never overlap, so nobody was
        // simultaneously a stable leader. This is the bursty-adversary
        // shape that must read as churn, not split-brain.
        let in_even_block = |k: u64| (k / 10).is_multiple_of(2);
        let samples: Vec<TimelineSample> = (0..60u64)
            .map(|i| {
                let p0 = (0..=i).filter(|&k| in_even_block(k)).count() as u64 * 2;
                let p1 = (0..=i).filter(|&k| !in_even_block(k)).count() as u64 * 2;
                sample(i * 100, vec![Some(0), Some(1)], vec![p0, p1])
            })
            .collect();
        assert!(
            split_brain(&samples).is_none(),
            "alternation is not split-brain"
        );
    }

    #[test]
    fn registry_scenarios_pass_both_oracles() {
        for name in [
            "fault-free",
            "leader-crash-failover",
            "no-awb-staller",
            "hostile/flap",
            "hostile/storm",
        ] {
            let scenario = registry::named(name).unwrap();
            assert_eq!(run_and_check(&scenario), None, "{name}");
        }
    }

    #[test]
    fn provably_hostile_classification() {
        // The calibrated registry recipes are certified, window and all.
        let named = |n: &str| registry::named(n).unwrap();
        assert_eq!(
            provably_hostile(&named("hostile/flap")),
            Some((10_000, 82_000))
        );
        assert_eq!(
            provably_hostile(&named("hostile/storm")),
            Some((10_000, 90_000))
        );
        // A whole-window cut sanctions a per-side reign for its full span
        // — conservatively out (the registry's own gate still covers it).
        assert_eq!(provably_hostile(&named("hostile/asym-cut")), None);
        // The positive control keeps its AWB envelope.
        assert_eq!(provably_hostile(&named("hostile/asym-core")), None);
        assert_eq!(provably_hostile(&registry::fault_free()), None);
        // No campaign means no hostile window: the plain necessity
        // experiment stays under the old "did not stabilize" check only.
        assert_eq!(provably_hostile(&registry::no_awb_staller()), None);
        // Crashes void the certificate: a lone survivor may reign.
        let crashed = named("hostile/flap").crash_at(5_000, ProcessId::new(2));
        assert_eq!(provably_hostile(&crashed), None);
    }

    #[test]
    fn hostile_pool_draws_pass_the_non_election_oracle() {
        // The oracle must be sound over its own pool: a false alarm here
        // would be committed as a regression by the nightly fuzz run.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut checked = 0;
        let mut draws = 0;
        while checked < 3 && draws < 200 {
            draws += 1;
            let s = generate(&mut rng);
            let Some((from, until)) = provably_hostile(&s) else {
                continue;
            };
            assert!(from < until);
            assert!(!s.expect_stabilization, "hostile draws expect no-elect");
            assert_eq!(run_and_check(&s), None, "{}", to_spec_text(&s));
            checked += 1;
        }
        assert_eq!(checked, 3, "the pool must actually produce hostile draws");
    }

    #[test]
    fn liveness_gate_classification() {
        let good = Scenario::fault_free(OmegaVariant::Alg1, 4);
        assert!(liveness_checkable(&good));
        assert!(!liveness_checkable(&good.clone().without_awb()));
        assert!(!liveness_checkable(
            &good.clone().timers(TimerSpec::StuckLow { cap: 8 })
        ));
        assert!(!liveness_checkable(&good.clone().adversary(
            AdversarySpec::LeaderStaller {
                base: 2,
                stall: 4_000
            }
        )));
        // Crashing the timely process voids the promise.
        assert!(!liveness_checkable(
            &good.clone().crash_at(5_000, ProcessId::new(0))
        ));
        assert!(liveness_checkable(
            &good.clone().crash_at(5_000, ProcessId::new(1))
        ));
        // A leader-relative crash may hit the timely process.
        assert!(!liveness_checkable(&good.clone().crash_leader_at(5_000)));
        // The step-clock variant's liveness is outside the envelope.
        assert!(!liveness_checkable(&Scenario::fault_free(
            OmegaVariant::StepClock,
            4
        )));
    }

    #[test]
    fn generated_specs_round_trip_and_are_bounded() {
        let mut rng = SmallRng::seed_from_u64(2026);
        let mut checkable = 0;
        let mut campaigns = 0;
        let mut hostile = 0;
        for _ in 0..200 {
            let s = generate(&mut rng);
            assert!((2..=10).contains(&s.n));
            assert!(s.crashes.len() < s.n);
            if let Some(campaign) = &s.campaign {
                campaigns += 1;
                campaign
                    .validate(s.n)
                    .expect("generated campaigns are valid");
                assert!(campaign.phases.len() <= 4, "campaigns stay small");
            }
            let text = to_spec_text(&s);
            let parsed = from_spec_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(to_spec_text(&parsed), text);
            if liveness_checkable(&s) {
                checkable += 1;
            }
            if provably_hostile(&s).is_some() {
                hostile += 1;
            }
        }
        assert!(
            checkable >= 60,
            "liveness must actually be exercised ({checkable}/200 checkable)"
        );
        assert!(
            campaigns >= 20,
            "campaigns must actually be generated ({campaigns}/200)"
        );
        assert!(
            hostile >= 20,
            "the hostile pool must actually be certified ({hostile}/200)"
        );
    }

    #[test]
    fn safety_oracle_masks_partition_windows() {
        // Split self-leadership across the whole run (ticks 0..10_000):
        // without a campaign this is split-brain; with a partition whose
        // cut + heal grace covers the run it is the spec's own doing.
        let samples: Vec<TimelineSample> = (0..100)
            .map(|i| {
                sample(
                    i * 100,
                    vec![Some(0), Some(1), Some(0)],
                    vec![i * 20, i * 20, i * 20],
                )
            })
            .collect();
        let plain = Scenario::fault_free(OmegaVariant::Alg1, 3);
        assert!(split_brain_outside_partitions(&plain, &samples).is_some());
        let cut = plain
            .clone()
            .campaign(Campaign::new().phase(ChaosPhase::Partition {
                groups: vec![
                    vec![ProcessId::new(0)],
                    vec![ProcessId::new(1), ProcessId::new(2)],
                ],
                from: 0,
                until: 5_000,
            }));
        assert!(
            split_brain_outside_partitions(&cut, &samples).is_none(),
            "the split sits inside the cut + grace window"
        );
        // A short early cut leaves the post-grace split exposed.
        let early = plain.campaign(Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![
                vec![ProcessId::new(0)],
                vec![ProcessId::new(1), ProcessId::new(2)],
            ],
            from: 0,
            until: 500,
        }));
        assert!(split_brain_outside_partitions(&early, &samples).is_some());
    }

    #[test]
    fn liveness_gate_classifies_campaigns() {
        let good = Scenario::fault_free(OmegaVariant::Alg1, 4).horizon(60_000);
        assert!(liveness_checkable(&good));
        // An early, short storm keeps the promise checkable.
        let stormy = good
            .clone()
            .campaign(Campaign::new().phase(ChaosPhase::Storm {
                factor: 3,
                jitter: 2,
                from: 2_000,
                until: 9_000,
            }));
        assert!(liveness_checkable(&stormy));
        // Partitions are outside the conservative convergence envelope.
        let cut = good
            .clone()
            .campaign(Campaign::new().phase(ChaosPhase::Partition {
                groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
                from: 2_000,
                until: 9_000,
            }));
        assert!(!liveness_checkable(&cut));
        // A wave that kills the timely process voids the promise.
        let timely = good.awb.unwrap().timely;
        let fatal = good
            .clone()
            .campaign(Campaign::new().phase(ChaosPhase::Wave {
                crash: vec![timely],
                recover: vec![],
                at: 2_000,
            }));
        assert!(!liveness_checkable(&fatal));
        // A late phase leaves no room to re-settle.
        let late = good.campaign(Campaign::new().phase(ChaosPhase::Storm {
            factor: 2,
            jitter: 0,
            from: 40_000,
            until: 50_000,
        }));
        assert!(!liveness_checkable(&late));
    }

    #[test]
    fn shrinker_drops_campaign_phases_first() {
        // Plant a bug that needs only the storm phase: the partition, the
        // wave, and everything else must be stripped — and phase moves are
        // offered before structural ones, so the campaign shrinks to the
        // single load-bearing phase instead of being pinned by n-shrinks.
        let messy = Scenario::fault_free(OmegaVariant::Alg1, 6)
            .named("fuzz/chaos-planted")
            .campaign(
                Campaign::new()
                    .phase(ChaosPhase::Partition {
                        groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
                        from: 1_000,
                        until: 3_000,
                    })
                    .phase(ChaosPhase::Storm {
                        factor: 4,
                        jitter: 1,
                        from: 4_000,
                        until: 8_000,
                    })
                    .phase(ChaosPhase::Wave {
                        crash: vec![ProcessId::new(2)],
                        recover: vec![],
                        at: 9_000,
                    }),
            )
            .crash_at(5_000, ProcessId::new(3))
            .horizon(40_000)
            .seed(99);
        let mut oracle = |c: &Scenario| {
            let has_storm = c.campaign.as_ref().is_some_and(Campaign::has_storm);
            has_storm.then(|| Violation::Safety {
                detail: "planted".into(),
            })
        };
        let minimal = shrink(&messy, &mut oracle);
        let campaign = minimal.campaign.as_ref().expect("storm phase kept");
        assert_eq!(campaign.phases.len(), 1, "{:?}", campaign.phases);
        assert!(matches!(campaign.phases[0], ChaosPhase::Storm { .. }));
        assert!(minimal.crashes.is_empty(), "crash script stripped");
        assert_eq!(minimal.n, 1, "n shrinks all the way once pids are gone");
        assert!(
            spec_lines(&minimal) <= 5,
            "reproducer stays readable:\n{}",
            to_spec_text(&minimal)
        );
    }

    #[test]
    fn shrinker_trims_phase_spans_and_groups() {
        let p = ProcessId::new;
        // Plant a bug that needs a flap with both sides populated: the
        // duration and the group sizes are not load-bearing, so the
        // shrinker must halve the span down to its 1-tick floor and trim
        // both groups to singletons.
        let wide = Scenario::fault_free(OmegaVariant::Alg1, 6)
            .named("fuzz/wide-flap")
            .campaign(Campaign::new().phase(ChaosPhase::Flap {
                groups: vec![vec![p(0), p(1), p(2)], vec![p(3), p(4), p(5)]],
                period: 2_000,
                from: 4_000,
                until: 36_000,
            }))
            .horizon(60_000);
        let mut oracle = |c: &Scenario| {
            let live_flap = c.campaign.as_ref().is_some_and(|c| {
                c.phases.iter().any(|phase| {
                    matches!(phase, ChaosPhase::Flap { groups, .. }
                        if groups.iter().all(|g| !g.is_empty()))
                })
            });
            live_flap.then(|| Violation::Safety {
                detail: "planted".into(),
            })
        };
        let minimal = shrink(&wide, &mut oracle);
        let campaign = minimal.campaign.as_ref().expect("flap kept");
        let ChaosPhase::Flap {
            groups,
            period,
            from,
            until,
        } = &campaign.phases[0]
        else {
            panic!("flap phase survives: {:?}", campaign.phases);
        };
        assert!(groups.iter().all(|g| g.len() == 1), "{groups:?}");
        assert_eq!(until - from, 1, "span halves to the 1-tick floor");
        assert_eq!(*period, 1, "period follows the span down");
    }

    #[test]
    fn shrinker_minimizes_planted_violation() {
        // Plant a bug that needs exactly "n >= 4 and at least one scripted
        // crash": everything else the generator dressed the spec in must
        // be stripped by the shrinker.
        let mut messy = Scenario::fault_free(OmegaVariant::Alg1, 9)
            .named("fuzz/planted")
            .adversary(AdversarySpec::Bursty {
                fast: 2,
                stall: 700,
                burst_len: 5,
            })
            .timers(TimerSpec::Jittered { jitter: 17 })
            .awb(ProcessId::new(3), 4_000, 13)
            .crash_at(9_000, ProcessId::new(5))
            .crash_leader_at(12_000)
            .crash_at(21_000, ProcessId::new(1))
            .horizon(40_000)
            .sample_every(50)
            .seed(777);
        messy.stats_checkpoints = 4;
        let mut oracle = |c: &Scenario| {
            let planted = c.n >= 4
                && c.crashes
                    .iter()
                    .any(|cr| matches!(cr, CrashSpec::At { .. }));
            planted.then(|| Violation::Safety {
                detail: "planted".into(),
            })
        };
        assert!(
            oracle(&messy).is_some(),
            "the plant must trigger pre-shrink"
        );
        let minimal = shrink(&messy, &mut oracle);
        assert_eq!(minimal.n, 4, "9 → halve → 4, and 3 loses the violation");
        assert_eq!(minimal.crashes.len(), 1);
        assert!(matches!(minimal.crashes[0], CrashSpec::At { .. }));
        assert!(
            spec_lines(&minimal) <= 5,
            "minimal reproducer must serialize in ≤ 5 lines:\n{}",
            to_spec_text(&minimal)
        );
        // And it is a fixpoint: shrinking again changes nothing.
        let again = shrink(&minimal, &mut oracle);
        assert_eq!(to_spec_text(&again), to_spec_text(&minimal));
    }

    #[test]
    fn reproducer_names_are_stable_and_name_independent() {
        let a = Scenario::fault_free(OmegaVariant::Alg1, 4).named("x");
        let b = Scenario::fault_free(OmegaVariant::Alg1, 4).named("totally-different");
        assert_eq!(reproducer_name(&a), reproducer_name(&b));
        assert!(reproducer_name(&a).starts_with("fuzz-regression/"));
        let c = Scenario::fault_free(OmegaVariant::Alg1, 5).named("x");
        assert_ne!(reproducer_name(&a), reproducer_name(&c));
        let hash = reproducer_name(&a);
        let hash = hash.strip_prefix("fuzz-regression/").unwrap();
        assert_eq!(hash.len(), 12);
        assert!(hash.chars().all(|ch| ch.is_ascii_hexdigit()));
    }
}
