//! The shared wall-clock election loop behind every real-time backend.
//!
//! [`ThreadDriver`](crate::ThreadDriver) (in-memory registers),
//! [`SanDriver`](crate::SanDriver) (disk-block registers) and
//! [`CoopDriver`](crate::CoopDriver) (the cooperative deadline-wheel
//! runtime) run the same experiment shape: spawn a [`Cluster`], replay the
//! crash script at its wall-clock due times, wait for a stable leader
//! inside the horizon budget, observe the post-stabilization tail, and
//! assemble an [`Outcome`] in scenario ticks. Only the cluster substrate
//! and the pacing differ, so that loop lives here once — a second copy
//! would inevitably drift, and outcome comparability across backends is
//! the whole point of the Scenario API.

use std::time::{Duration, Instant};

use omega_registers::ProcessId;
use omega_runtime::Cluster;
use omega_sim::chaos::ChaosPhase;

use crate::{ChaosOutcome, CrashSpec, Outcome, Scenario, TailActivity};

/// One wall-timed campaign injection. Storms are absent: the only wall
/// backend admitted with a storm is the SAN, whose disk substrate realizes
/// it (see `SanDriver`); partitions, heals, and wave crashes act through
/// the cluster like scripted crashes do.
enum ChaosAction {
    Partition(Vec<Vec<ProcessId>>),
    Cut(Vec<ProcessId>, Vec<ProcessId>),
    Heal,
    Crash(ProcessId),
}

/// Pacing of one wall-clock realization: how scenario ticks map to real
/// time, and how stability and the tail are observed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WallPacing {
    /// Wall-clock length of one scenario tick (also the timer unit).
    pub tick: Duration,
    /// How long every correct node must agree before the election counts
    /// as stable.
    pub window: Duration,
    /// How long to observe post-stabilization traffic for the tail report.
    pub tail_sample: Duration,
}

impl WallPacing {
    pub(crate) fn wall(&self, ticks: u64) -> Duration {
        let nanos = self.tick.as_nanos().saturating_mul(u128::from(ticks));
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    pub(crate) fn ticks_of(&self, wall: Duration) -> u64 {
        let tick = self.tick.as_nanos().max(1);
        u64::try_from(wall.as_nanos() / tick).unwrap_or(u64::MAX)
    }

    /// Runs `scenario` to completion on an already-started `cluster`,
    /// returning the backend-tagged outcome (with no SAN footprint — the
    /// caller attaches one if its substrate keeps block accounting).
    /// `workers` is the coop pool size, `None` for per-node-thread
    /// substrates. The caller owns the cluster and must shut it down
    /// afterwards.
    pub(crate) fn run(
        &self,
        scenario: &Scenario,
        cluster: &Cluster,
        backend: &'static str,
        workers: Option<usize>,
    ) -> Outcome {
        let start = Instant::now();

        // Directives at or beyond the horizon never fire in the simulator
        // (its event loop stops at the horizon), so drop them here too —
        // otherwise the script would pend forever and block stability.
        let mut crashes = scenario.crashes.clone();
        crashes.retain(|c| match *c {
            CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick < scenario.horizon,
        });
        crashes.sort_by_key(|c| match *c {
            CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick,
        });
        // Campaign phases, flattened to wall-timed actions under the same
        // convention (at-or-beyond-horizon never fires; an unhealed
        // partition stays installed to the end, as in the simulator).
        let mut chaos_actions: Vec<(u64, ChaosAction)> = Vec::new();
        if let Some(campaign) = &scenario.campaign {
            for phase in &campaign.phases {
                match phase {
                    ChaosPhase::Partition {
                        groups,
                        from,
                        until,
                    } => {
                        chaos_actions.push((*from, ChaosAction::Partition(groups.clone())));
                        chaos_actions.push((*until, ChaosAction::Heal));
                    }
                    ChaosPhase::Wave { crash, at, .. } => {
                        chaos_actions
                            .extend(crash.iter().map(|&pid| (*at, ChaosAction::Crash(pid))));
                    }
                    ChaosPhase::Heal { at } => chaos_actions.push((*at, ChaosAction::Heal)),
                    ChaosPhase::Storm { .. } => {}
                    ChaosPhase::Cut {
                        blinded,
                        hidden,
                        from,
                        until,
                    } => {
                        chaos_actions
                            .push((*from, ChaosAction::Cut(blinded.clone(), hidden.clone())));
                        chaos_actions.push((*until, ChaosAction::Heal));
                    }
                    ChaosPhase::Flap {
                        groups,
                        period,
                        from,
                        until,
                    } => {
                        // Same install/heal boundaries as the simulator.
                        for (install, heal) in omega_sim::chaos::flap_spans(*period, *from, *until)
                        {
                            chaos_actions.push((install, ChaosAction::Partition(groups.clone())));
                            chaos_actions.push((heal, ChaosAction::Heal));
                        }
                    }
                }
            }
            chaos_actions.retain(|(tick, _)| *tick < scenario.horizon);
            // Stable sort: simultaneous actions keep declaration order.
            chaos_actions.sort_by_key(|&(tick, _)| tick);
        }
        let deadline = start + self.wall(scenario.horizon);

        // Estimate flips are counted from t = 0, across the whole run — the
        // wall-clock analogue of the simulator's sampled leader timeline.
        // Two differing Options can't both be None, so a bare inequality
        // counts every transition, including the initial None→Some.
        let n = scenario.n;
        let mut estimate_changes = vec![0usize; n];
        let mut last_estimates: Vec<Option<ProcessId>> = vec![None; n];
        let mut count_flips = |estimates: &[Option<ProcessId>]| {
            for pid in ProcessId::all(n) {
                let current = estimates[pid.index()];
                if last_estimates[pid.index()] != current {
                    estimate_changes[pid.index()] += 1;
                    last_estimates[pid.index()] = current;
                }
            }
        };

        // The cluster's agreement/window state machine decides stability
        // while the observer replays the crash script at its wall-clock due
        // times. A `Some` returned while directives are still pending is the
        // pre-crash reign masquerading as the final one — loop and keep
        // waiting (the observer keeps firing crashes) until the script is
        // exhausted or the horizon budget runs out. Forward detection needs
        // a full agreement window after the last directive, so a crash
        // scheduled within `window / tick` ticks of the horizon cannot be
        // confirmed stable here even when the simulator's retrospective
        // view says it is; leave room after the script (the registry does).
        let mut next_crash = 0;
        let mut next_action = 0;
        let elected = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break None;
            }
            let agreed =
                cluster.await_stable_leader_observing(self.window, remaining, |estimates| {
                    while next_crash < crashes.len() {
                        let crash = crashes[next_crash];
                        let tick = match crash {
                            CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick,
                        };
                        if start.elapsed() < self.wall(tick) {
                            break;
                        }
                        match crash {
                            CrashSpec::At { pid, .. } => cluster.crash(pid),
                            CrashSpec::LeaderAt { .. } => {
                                // No estimate to aim at yet: retry next poll.
                                if cluster.crash_current_leader().is_none() {
                                    break;
                                }
                            }
                        }
                        next_crash += 1;
                    }
                    while next_action < chaos_actions.len() {
                        let (tick, action) = &chaos_actions[next_action];
                        if start.elapsed() < self.wall(*tick) {
                            break;
                        }
                        match action {
                            ChaosAction::Partition(groups) => {
                                cluster.space().install_partition(groups);
                            }
                            ChaosAction::Cut(blinded, hidden) => {
                                cluster.space().install_cut(blinded, hidden);
                            }
                            ChaosAction::Heal => cluster.space().heal_partition(),
                            ChaosAction::Crash(pid) => cluster.crash(*pid),
                        }
                        next_action += 1;
                    }
                    count_flips(estimates);
                });
            match agreed {
                Some(leader)
                    if next_crash >= crashes.len() && next_action >= chaos_actions.len() =>
                {
                    break Some(leader)
                }
                Some(_) => {} // stable, but the script is still pending
                None => break None,
            }
        };
        // Agreement held continuously for `window` before the loop broke,
        // so the stable suffix began a window ago.
        let stabilization_ticks =
            elected.map(|_| self.ticks_of(start.elapsed().saturating_sub(self.window)));

        // Throughput over the run loop proper — the tail observation below
        // is fixed-length sleeping, not engine work, so it is excluded.
        let run_elapsed = start.elapsed();
        let events_at_deadline = cluster.events_total();
        let elapsed_ms = run_elapsed.as_secs_f64() * 1e3;
        let events_per_sec = if run_elapsed.as_secs_f64() > 0.0 {
            events_at_deadline as f64 / run_elapsed.as_secs_f64()
        } else {
            0.0
        };

        // Post-stabilization tail: observe traffic over a fixed wall window.
        // The paper's tail claims (single writer, bounded footprints) are
        // *eventually* statements, and convergence straggles for a few
        // windows after agreement — trailing STOP writes, last suspicion
        // bumps — so take up to four windows and keep the first settled one
        // (no footprint growth), falling back to the last observed.
        let tail = elected.map(|_| {
            let span_ticks = self.ticks_of(self.tail_sample).max(1);
            let mut observed = None;
            // One reusable snapshot buffer across the observation windows
            // (each window discards its `before` view immediately).
            let mut before = omega_registers::StatsSnapshot::default();
            for _ in 0..4 {
                let fp_before = cluster.space().footprint();
                cluster.space().stats_into(&mut before);
                std::thread::sleep(self.tail_sample);
                let delta = cluster.space().stats().delta_since(&before);
                let grown: Vec<String> = cluster
                    .space()
                    .footprint()
                    .grown_since(&fp_before)
                    .into_iter()
                    .map(String::from)
                    .collect();
                // A settled observation shows real traffic and no footprint
                // growth; an empty window (thread starvation under load) is
                // not evidence of anything.
                let settled = grown.is_empty() && delta.total_writes() > 0;
                observed = Some((
                    TailActivity {
                        writers: delta.writer_set(),
                        readers: delta.reader_set(),
                        written_registers: delta.written_registers().len(),
                        writes_per_1k: delta.total_writes() as f64 * 1000.0 / span_ticks as f64,
                        span_ticks,
                    },
                    grown,
                ));
                if settled {
                    break;
                }
            }
            observed.expect("at least one tail window observed")
        });
        let (tail, grown_in_tail) = match tail {
            Some((t, g)) => (Some(t), g),
            None => (None, Vec::new()),
        };

        let stats = cluster.space().stats();
        // One snapshot for both fields, so they describe the same instant.
        let scan = cluster.scan_stats();
        // Injection here is wall-timed, so tick accounting is the planned
        // schedule, not a measurement; only the heal→stable window mixes in
        // something observed.
        let chaos = scenario.campaign.as_ref().map(|campaign| {
            let planned = campaign.planned_stats(scenario.horizon);
            ChaosOutcome {
                partitions: planned.partitions,
                partition_ticks: planned.partition_ticks,
                storm_ticks: planned.storm_ticks,
                wave_crashes: planned.wave_crashes,
                wave_recoveries: planned.wave_recoveries,
                heal_to_stable_ticks: match (planned.last_heal_at, stabilization_ticks) {
                    (Some(heal), Some(stable)) if stable >= heal => Some(stable - heal),
                    _ => None,
                },
            }
        });
        Outcome {
            backend,
            scenario: scenario.name.clone(),
            variant: scenario.variant,
            n,
            elected,
            stabilized: elected.is_some(),
            stabilization_ticks,
            horizon_ticks: scenario.horizon,
            crashed: {
                let mut crashed = omega_registers::ProcessSet::new(n);
                for pid in ProcessId::all(n) {
                    if !cluster.correct().contains(pid) {
                        crashed.insert(pid);
                    }
                }
                crashed
            },
            correct: cluster.correct(),
            steps: cluster.steps(),
            estimate_changes,
            reads: ProcessId::all(n).map(|p| stats.reads_of(p)).collect(),
            writes: ProcessId::all(n).map(|p| stats.writes_of(p)).collect(),
            reads_skipped: scan.reads_skipped,
            shard_passes: scan.shard_passes,
            elapsed_ms,
            events_per_sec,
            register_count: cluster.space().register_count(),
            hwm_bits: cluster.space().footprint().total_hwm_bits(),
            grown_in_tail,
            tail,
            san: None,
            chaos,
            // Wall drivers never admit non-electing scenarios, so there is
            // no hostile window to witness.
            witness: None,
            workers,
        }
    }
}
