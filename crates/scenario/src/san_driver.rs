//! The SAN-disk backend: elections over disk-block registers.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use omega_runtime::san::{SanDisk, SanLatency};
use omega_runtime::{Cluster, NodeConfig};
use omega_sim::chaos::ChaosPhase;

use crate::wall::WallPacing;
use crate::{Driver, Outcome, SanFootprint, Scenario};

/// Realizes a [`Scenario`] over a simulated storage-area-network disk: the
/// paper's motivating deployment (Section 1 — Disk Paxos, Petal, NASD),
/// where every 1WnR register is one shared disk block.
///
/// The driver builds a [`SanDisk`] seeded from the scenario, lays the
/// variant's full register layout out on it (one block per register, via
/// the space's [`BlockMap`](omega_registers::BlockMap)), and spawns the
/// *unmodified* election processes on OS threads against that disk-backed
/// memory. Every shared-memory access pays the disk's simulated service
/// time, and the run loop itself is the same wall-clock loop the
/// [`ThreadDriver`](crate::ThreadDriver) uses, so outcomes are directly
/// comparable across all three backends.
///
/// Two things are SAN-specific in the returned [`Outcome`]:
///
/// * **Pacing** — heartbeat cadence and the timeout unit stretch with the
///   disk's expected access time via [`NodeConfig::san_paced`], anchored
///   at the canonical [`NodeConfig::san_like`] profile. The algorithms are
///   untouched: AWB only relates step cadence to timeout units.
/// * **Block footprint** — [`Outcome::san`] carries the disk's block-level
///   accounting (blocks mapped and touched, accesses, simulated service
///   time) alongside the ordinary register statistics.
///
/// A scenario may pin its own latency model via
/// [`Scenario::san_latency`](crate::Scenario::san_latency) (the
/// `san-latency/…` registry family sweeps base/jitter this way); it then
/// overrides the driver's model *and* re-derives the pacing, so one driver
/// value can run the whole sweep.
///
/// # Examples
///
/// ```
/// use omega_scenario::{registry, Driver, SanDriver};
///
/// let outcome = SanDriver::instant().run(&registry::fault_free());
/// outcome.assert_election();
/// let san = outcome.san.expect("SAN backend reports block footprints");
/// assert_eq!(san.blocks_mapped, outcome.register_count as u64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SanDriver {
    /// Latency model of the disk (unless the scenario pins its own).
    pub latency: SanLatency,
    /// Node pacing used when the scenario does not pin a latency model.
    pub config: NodeConfig,
    /// How long every correct node must agree before the election counts
    /// as stable.
    pub window: Duration,
    /// How long to observe post-stabilization traffic for the tail report.
    pub tail_sample: Duration,
}

impl SanDriver {
    /// A driver for the given latency model: pacing, stability window and
    /// tail sampling all stretch with the model's expected access time.
    #[must_use]
    pub fn new(latency: SanLatency) -> Self {
        let (window, tail_sample) = observation_windows(latency);
        SanDriver {
            latency,
            config: NodeConfig::san_paced(latency),
            window,
            tail_sample,
        }
    }

    /// The zero-latency profile (tests, CI): disk semantics — block
    /// layout, footprint accounting, shared-medium linearization — at
    /// in-memory speed, paced exactly like
    /// [`ThreadDriver::default`](crate::ThreadDriver) (the fields are
    /// taken from it, not copied) so parity suites run all three backends
    /// in comparable wall time.
    #[must_use]
    pub fn instant() -> Self {
        let twin = crate::ThreadDriver::default();
        SanDriver {
            latency: SanLatency::instant(),
            config: NodeConfig {
                step_interval: twin.step_interval,
                tick: twin.tick,
            },
            window: twin.window,
            tail_sample: twin.tail_sample,
        }
    }

    /// The latency model and pacing a specific scenario runs under: the
    /// scenario's pinned model (with re-derived pacing) when present, this
    /// driver's defaults otherwise.
    fn plan(&self, scenario: &Scenario) -> (SanLatency, NodeConfig, WallPacing) {
        match scenario.san_latency {
            Some(latency) => {
                let config = NodeConfig::san_paced(latency);
                let (window, tail_sample) = observation_windows(latency);
                (
                    latency,
                    config,
                    WallPacing {
                        tick: config.tick,
                        window,
                        tail_sample,
                    },
                )
            }
            None => (
                self.latency,
                self.config,
                WallPacing {
                    tick: self.config.tick,
                    window: self.window,
                    tail_sample: self.tail_sample,
                },
            ),
        }
    }
}

/// Wall-timed realization of a campaign's latency storms: a controller
/// thread flips the disk's [`storm factor`](SanDisk::set_storm_factor) at
/// each storm phase's wall-clock boundaries. The SAN is the only wall
/// backend admitted with storms precisely because its substrate has this
/// knob — the election processes stay untouched, every disk access just
/// pays the stretched service time while a storm is active.
struct StormController {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<()>,
}

impl StormController {
    /// Spawns a controller for the scenario's storm phases, or `None` when
    /// the campaign has none. Boundaries at or beyond the horizon never
    /// fire, matching the wall loop's convention for every other clause.
    fn spawn(disk: &Arc<SanDisk>, scenario: &Scenario, pacing: &WallPacing) -> Option<Self> {
        let mut events: Vec<(Duration, u64)> = Vec::new();
        if let Some(campaign) = &scenario.campaign {
            for phase in &campaign.phases {
                if let ChaosPhase::Storm {
                    factor,
                    from,
                    until,
                    ..
                } = phase
                {
                    if *from < scenario.horizon {
                        events.push((pacing.wall(*from), *factor));
                    }
                    if *until < scenario.horizon {
                        events.push((pacing.wall(*until), 1));
                    }
                }
            }
        }
        if events.is_empty() {
            return None;
        }
        events.sort_by_key(|&(due, _)| due);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let disk = Arc::clone(disk);
        let handle = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let (lock, cvar) = &*shared;
            for (due, factor) in events {
                let mut stopped = lock.lock().expect("storm controller lock");
                loop {
                    if *stopped {
                        return;
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= due {
                        break;
                    }
                    stopped = cvar
                        .wait_timeout(stopped, due - elapsed)
                        .expect("storm controller wait")
                        .0;
                }
                disk.set_storm_factor(factor);
            }
        });
        Some(StormController { stop, handle })
    }

    /// Stops the controller and calms the disk: once the run loop is done,
    /// no pending boundary may fire and the factor resets to 1 so the
    /// post-run footprint snapshot is taken on a quiet medium.
    fn finish(self, disk: &SanDisk) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("storm controller lock") = true;
        cvar.notify_all();
        let _ = self.handle.join();
        disk.set_storm_factor(1);
    }
}

impl Default for SanDriver {
    /// The commodity-iSCSI profile ([`SanLatency::commodity`]).
    fn default() -> Self {
        SanDriver::new(SanLatency::commodity())
    }
}

/// Stability window and tail sample stretched to a latency model, anchored
/// at the historical SAN profile (300 ms / 500 ms at commodity latency)
/// and floored at the thread driver's defaults (40 ms / 120 ms).
fn observation_windows(latency: SanLatency) -> (Duration, Duration) {
    let anchor = SanLatency::commodity().expected();
    let ratio = latency.expected().as_secs_f64() / anchor.as_secs_f64();
    (
        Duration::from_millis(300)
            .mul_f64(ratio)
            .max(Duration::from_millis(40)),
        Duration::from_millis(500)
            .mul_f64(ratio)
            .max(Duration::from_millis(120)),
    )
}

impl Driver for SanDriver {
    fn name(&self) -> &'static str {
        "san"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        let (latency, config, pacing) = self.plan(scenario);
        let disk = SanDisk::new(latency, scenario.seed);
        let space = disk.memory_space(scenario.n);
        let cluster = Cluster::start_in(scenario.variant, &space, config);
        let storm = StormController::spawn(&disk, scenario, &pacing);
        let mut outcome = pacing.run(scenario, &cluster, "san", None);
        if let Some(storm) = storm {
            storm.finish(&disk);
        }
        cluster.shutdown();
        let stats = disk.stats();
        outcome.san = Some(SanFootprint {
            blocks_mapped: space.block_map().map_or(0, |m| m.blocks()) as u64,
            blocks_touched: stats.blocks_touched,
            block_accesses: stats.accesses,
            service_time_ms: stats.service_time.as_secs_f64() * 1e3,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaVariant;

    #[test]
    fn fault_free_scenario_elects_over_disk_blocks() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3).horizon(100_000);
        let outcome = SanDriver::instant().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.backend, "san");
        let san = outcome.san.expect("SAN backend reports block footprints");
        // One block per register, and every block eventually accessed.
        assert_eq!(san.blocks_mapped, outcome.register_count as u64);
        assert!(san.blocks_touched > 0 && san.blocks_touched <= san.blocks_mapped);
        // Block accesses are the register accesses on the same medium. The
        // outcome's register counters are snapshotted while nodes still
        // run, the disk's after shutdown, so the disk may have served a
        // few straggler accesses beyond the snapshot — never fewer.
        let snapshotted = outcome.total_reads() + outcome.total_writes();
        assert!(
            san.block_accesses >= snapshotted,
            "disk served {} accesses but registers counted {snapshotted}",
            san.block_accesses
        );
        assert_eq!(san.service_time_ms, 0.0, "instant profile never sleeps");
    }

    #[test]
    fn leader_crash_fails_over_on_the_san() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
            .crash_leader_at(2_000)
            .horizon(200_000);
        let outcome = SanDriver::instant().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.crashed.len(), 1);
        assert!(!outcome.crashed.contains(outcome.elected.unwrap()));
    }

    #[test]
    fn scenario_pinned_latency_overrides_the_driver() {
        // A sweep scenario pins its own latency: the driver must honor it
        // (observable as nonzero simulated service time even on the
        // instant driver) and re-derive pacing from it.
        let latency = SanLatency {
            base: Duration::from_micros(30),
            jitter: Duration::from_micros(10),
        };
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 2)
            .san_latency(latency)
            .horizon(100_000);
        let outcome = SanDriver::instant().run(&scenario);
        outcome.assert_election();
        let san = outcome.san.unwrap();
        assert!(
            san.service_time_ms > 0.0,
            "pinned latency must reach the disk"
        );
    }

    #[test]
    fn latency_storm_scenario_survives_on_the_san() {
        // The SAN is the only wall backend admitted with storms: the
        // controller thread stretches the disk's service time over the
        // storm window, the election rides it out, and the outcome carries
        // the (advisory, planned-schedule) chaos accounting.
        let scenario = crate::registry::named("chaos/latency-storm").expect("registry scenario");
        assert!(scenario.eligible_drivers().san, "storms admit the SAN");
        let outcome = SanDriver::instant().run(&scenario);
        outcome.assert_election();
        let chaos = outcome.chaos.expect("campaign scenarios report chaos");
        assert_eq!(chaos.storm_ticks, 20_000);
        assert_eq!(chaos.partitions, 0);
        assert_eq!(chaos.heal_to_stable_ticks, None, "storms never heal-gate");
    }

    #[test]
    fn pacing_stretches_with_latency() {
        let commodity = SanDriver::default();
        assert_eq!(commodity.config, NodeConfig::san_like());
        assert_eq!(commodity.window, Duration::from_millis(300));
        assert_eq!(commodity.tail_sample, Duration::from_millis(500));

        let instant = SanDriver::instant();
        assert!(instant.config.tick < commodity.config.tick);

        let double = SanDriver::new(SanLatency {
            base: Duration::from_millis(1),
            jitter: Duration::from_millis(1),
        });
        assert_eq!(double.config.tick, Duration::from_millis(10));
        assert_eq!(double.window, Duration::from_millis(600));
    }
}
