//! The backend-agnostic result of running a scenario.

use omega_core::OmegaVariant;
use omega_registers::{ProcessId, ProcessSet};
use omega_sim::metrics::TimelineSample;

/// Shared-memory activity over the trailing window of a run — the
/// "post-stabilization" view the paper's write-optimality results are
/// stated over (Theorems 3, 4, 7).
#[derive(Debug, Clone)]
pub struct TailActivity {
    /// Processes that wrote shared memory during the window.
    pub writers: ProcessSet,
    /// Processes that read shared memory during the window.
    pub readers: ProcessSet,
    /// Distinct registers written during the window.
    pub written_registers: usize,
    /// Writes per 1000 ticks of window span.
    pub writes_per_1k: f64,
    /// Window span in ticks.
    pub span_ticks: u64,
}

/// Block-level footprint of a run on a disk-backed (SAN) substrate: the
/// accounting the paper's "registers as disk blocks" deployment adds on
/// top of the ordinary register statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanFootprint {
    /// Blocks the layout mapper allocated (one per register).
    pub blocks_mapped: u64,
    /// Distinct blocks actually read or written during the run.
    pub blocks_touched: u64,
    /// Total block accesses served by the disk (reads + writes).
    pub block_accesses: u64,
    /// Total simulated disk service time, in milliseconds.
    pub service_time_ms: f64,
}

/// What a chaos campaign did to one run, plus how fast the election
/// recovered from it.
///
/// On the simulator every field is deterministic and replay-witnessed via
/// [`Outcome::fingerprint`]; wall-clock drivers fill the phase counters
/// from the spec (injection there is wall-timed, so tick accounting is
/// advisory).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOutcome {
    /// Partitions installed.
    pub partitions: u32,
    /// Total ticks some partition was active.
    pub partition_ticks: u64,
    /// Total ticks some latency storm was active.
    pub storm_ticks: u64,
    /// Processes crashed by waves.
    pub wave_crashes: u32,
    /// Processes resurrected by waves (simulator only).
    pub wave_recoveries: u32,
    /// Ticks from the last partition heal to stabilization — the bounded
    /// re-election window the chaos suite gates on. `None` when nothing
    /// healed, the run never stabilized, or it stabilized before the heal.
    pub heal_to_stable_ticks: Option<u64>,
}

/// Evidence that a hostile window produced **non-election** — the other
/// half of the Ω contract: when the spec breaks AWB, no process may hold
/// self-leadership stably; the algorithm must keep demoting.
///
/// Computed from the sampled leader timeline over the campaign's
/// disruption window. A process "stably self-leads" only while it keeps
/// electing itself **and keeps taking steps** — a stalled process frozen
/// on a stale self-estimate is not a stable leader (nobody else follows
/// it, and it isn't executing), exactly the claimant rule the split-brain
/// oracle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonElectionWitness {
    /// First tick of the hostile window.
    pub window_from: u64,
    /// Last tick of the hostile window.
    pub window_until: u64,
    /// Times a self-leading process lost its self-estimate between
    /// consecutive samples — the demotion churn AWB-violation must show.
    pub demotions: u64,
    /// Longest run of ticks any one process stayed actively self-leading.
    pub max_stable_streak_ticks: u64,
    /// Ticks of self-leadership held *beyond* the allowance, summed over
    /// every streak — 0 means no process was ever stably self-leading.
    pub false_stable_ticks: u64,
}

impl NonElectionWitness {
    /// A self-leading streak longer than `window / DENOM` counts as false
    /// stability: transient reigns while counters leapfrog are expected,
    /// holding a third of the hostile window is an election.
    pub const ALLOWANCE_DENOM: u64 = 3;

    /// The longest self-leading streak this witness's window tolerates.
    #[must_use]
    pub fn allowance(&self) -> u64 {
        (self.window_until.saturating_sub(self.window_from)) / Self::ALLOWANCE_DENOM
    }

    /// Scans the sampled timeline over `[window_from, window_until]` and
    /// builds the witness.
    ///
    /// A streak extends across an inter-sample interval only when the
    /// process self-leads at both ends **and** stepped in between; an
    /// interval without steps breaks the streak without counting as a
    /// demotion (a frozen claimant was not demoted — it just stopped).
    #[must_use]
    pub fn from_timeline(
        window_from: u64,
        window_until: u64,
        samples: &[TimelineSample],
    ) -> NonElectionWitness {
        let mut witness = NonElectionWitness {
            window_from,
            window_until,
            demotions: 0,
            max_stable_streak_ticks: 0,
            false_stable_ticks: 0,
        };
        let allowance = witness.allowance();
        let in_window: Vec<&TimelineSample> = samples
            .iter()
            .filter(|s| (window_from..=window_until).contains(&s.time.ticks()))
            .collect();
        let n = in_window.iter().map(|s| s.leaders.len()).max().unwrap_or(0);
        for p in 0..n {
            let pid = ProcessId::new(p);
            let self_leads = |s: &TimelineSample| s.leaders.get(p).copied().flatten() == Some(pid);
            let steps_of = |s: &TimelineSample| s.steps.get(p).copied().unwrap_or(0);
            let mut streak_from: Option<u64> = None;
            let close = |from: &mut Option<u64>, at: u64, w: &mut NonElectionWitness| {
                if let Some(start) = from.take() {
                    let len = at - start;
                    w.max_stable_streak_ticks = w.max_stable_streak_ticks.max(len);
                    w.false_stable_ticks += len.saturating_sub(allowance);
                }
            };
            for pair in in_window.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if self_leads(a) && !self_leads(b) {
                    witness.demotions += 1;
                }
                if self_leads(a) && self_leads(b) && steps_of(b) > steps_of(a) {
                    let start = *streak_from.get_or_insert(a.time.ticks());
                    // Keep the running streak visible even if the window
                    // ends mid-reign.
                    let len = b.time.ticks() - start;
                    witness.max_stable_streak_ticks = witness.max_stable_streak_ticks.max(len);
                } else {
                    close(&mut streak_from, a.time.ticks(), &mut witness);
                }
            }
            if let Some(last) = in_window.last() {
                close(&mut streak_from, last.time.ticks(), &mut witness);
            }
        }
        witness
    }
}

/// What one [`Driver`](crate::Driver) observed running one
/// [`Scenario`](crate::Scenario).
///
/// All drivers measure through the same instrumented
/// [`MemorySpace`](omega_registers::MemorySpace) and express time in the
/// scenario's abstract ticks (virtual ticks in the simulator; wall-clock
/// divided by the driver's tick duration on threads and the SAN), so
/// outcomes from every backend are directly comparable.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which driver produced this outcome (`"sim"` / `"threads"` /
    /// `"san"`).
    pub backend: &'static str,
    /// Name of the scenario that ran.
    pub scenario: String,
    /// The Ω variant that ran.
    pub variant: OmegaVariant,
    /// Number of processes.
    pub n: usize,
    /// The leader the run stabilized on, if it did.
    pub elected: Option<ProcessId>,
    /// Whether every correct process settled on one correct leader.
    pub stabilized: bool,
    /// Tick at which the stable suffix began.
    pub stabilization_ticks: Option<u64>,
    /// The scenario horizon, for normalizing.
    pub horizon_ticks: u64,
    /// Processes that crashed during the run.
    pub crashed: ProcessSet,
    /// Processes alive at the end.
    pub correct: ProcessSet,
    /// Main-task (`T2`) steps per process.
    pub steps: Vec<u64>,
    /// How many times each process's leader estimate changed between
    /// consecutive observations (simulator samples / thread-driver polls).
    pub estimate_changes: Vec<usize>,
    /// Cumulative shared-memory reads per process.
    pub reads: Vec<u64>,
    /// Cumulative shared-memory writes per process.
    pub writes: Vec<u64>,
    /// Shared reads avoided by the epoch-validated suspicion caches (rows
    /// and counters found clean and skipped instead of re-read).
    pub reads_skipped: u64,
    /// Sharded `T3` scan passes executed across all processes.
    pub shard_passes: u64,
    /// Wall-clock milliseconds the backend spent executing the run (the
    /// simulator's event loop / the thread driver's run loop; excludes
    /// system construction and post-run tail observation).
    pub elapsed_ms: f64,
    /// Events retired per wall-clock second (simulator events; `T2` steps +
    /// `T3` expirations on threads) — the suite's throughput metric.
    pub events_per_sec: f64,
    /// Registers allocated by the variant's layout.
    pub register_count: usize,
    /// Total shared-memory high-water footprint in bits.
    pub hwm_bits: u64,
    /// Registers whose footprint still grew late in the run (empty for
    /// fully bounded variants; at most `PROGRESS[leader]` for Figure 2).
    pub grown_in_tail: Vec<String>,
    /// Activity over the trailing window, when the backend captured one.
    pub tail: Option<TailActivity>,
    /// Block-level disk footprint, when the backend ran over a SAN
    /// (`None` for in-memory backends).
    pub san: Option<SanFootprint>,
    /// Chaos-campaign accounting (`None` when the scenario has no
    /// campaign).
    pub chaos: Option<ChaosOutcome>,
    /// Non-election witness over the hostile window — only computed by
    /// the simulator for campaigns run with `expect_stabilization =
    /// false` (wall drivers never admit those).
    pub witness: Option<NonElectionWitness>,
    /// Worker-pool size of the cooperative backend's sharded wheel
    /// (`None` on every other backend — sim, threads, and SAN have no
    /// pool to size).
    pub workers: Option<usize>,
}

impl Outcome {
    /// Fraction of the horizon from stabilization to the end of the run
    /// (0.0 when the run never stabilized).
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        match self.stabilization_ticks {
            Some(from) if self.horizon_ticks > 0 => {
                (self.horizon_ticks.saturating_sub(from)) as f64 / self.horizon_ticks as f64
            }
            _ => 0.0,
        }
    }

    /// Whether the run stabilized with at least `min_fraction` of the
    /// horizon still ahead (the "settled early enough to mean it" check).
    #[must_use]
    pub fn stabilized_for(&self, min_fraction: f64) -> bool {
        self.stabilized && self.stable_fraction() >= min_fraction
    }

    /// Whether the elected leader (if any) was alive at the end of the run.
    #[must_use]
    pub fn leader_is_correct(&self) -> bool {
        self.elected.is_some_and(|l| self.correct.contains(l))
    }

    /// Total shared-memory writes across all processes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total shared-memory reads across all processes.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Asserts the Ω contract this scenario promised: stabilization onto a
    /// correct leader when the spec satisfies AWB.
    ///
    /// # Panics
    ///
    /// Panics with a scenario-labelled message when the contract is broken.
    pub fn assert_election(&self) {
        assert!(
            self.stabilized,
            "{} [{}]: expected stabilization, got none",
            self.scenario, self.backend
        );
        assert!(
            self.leader_is_correct(),
            "{} [{}]: elected {:?} is not a correct process ({:?})",
            self.scenario,
            self.backend,
            self.elected,
            self.correct
        );
    }

    /// A canonical rendering of every *deterministic* field — the
    /// byte-identity witness of trace replay.
    ///
    /// Two runs of the same spec (live, traced, or replayed from a trace
    /// file) must produce equal fingerprints; wall-clock measurements
    /// (`elapsed_ms`, `events_per_sec`) are excluded because no two real
    /// executions share a clock.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{}|{}|{}|{:?}|{}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{:?}",
            self.scenario,
            self.variant,
            self.n,
            self.elected,
            self.stabilized,
            self.stabilization_ticks,
            self.horizon_ticks,
            self.crashed,
            self.correct,
            self.steps,
            self.estimate_changes,
            self.reads,
            self.writes,
            self.reads_skipped,
            self.shard_passes,
            self.register_count,
            self.hwm_bits,
            self.grown_in_tail,
        );
        if let Some(tail) = &self.tail {
            let _ = write!(
                out,
                "|tail:{:?}/{:?}/{}/{}/{}",
                tail.writers,
                tail.readers,
                tail.written_registers,
                tail.writes_per_1k,
                tail.span_ticks
            );
        }
        if let Some(san) = &self.san {
            let _ = write!(out, "|san:{san:?}");
        }
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, "|chaos:{chaos:?}");
        }
        if let Some(witness) = &self.witness {
            let _ = write!(out, "|witness:{witness:?}");
        }
        out
    }

    /// A one-screen human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario   : {}  [{}]", self.scenario, self.backend);
        let _ = writeln!(
            out,
            "system     : {} n={}  ({} registers)",
            self.variant, self.n, self.register_count
        );
        match (self.elected, self.stabilization_ticks) {
            (Some(leader), Some(from)) => {
                let _ = writeln!(
                    out,
                    "election   : {leader} stable from tick {from} ({:.0}% of horizon remained)",
                    self.stable_fraction() * 100.0
                );
            }
            _ => {
                let _ = writeln!(out, "election   : DID NOT STABILIZE");
            }
        }
        let _ = writeln!(
            out,
            "crashed    : {:?}  correct: {:?}",
            self.crashed, self.correct
        );
        let _ = writeln!(
            out,
            "memory     : {} writes / {} reads, hwm {} bits",
            self.total_writes(),
            self.total_reads(),
            self.hwm_bits
        );
        let _ = writeln!(
            out,
            "wall clock : {:.1} ms ({:.0} events/sec)",
            self.elapsed_ms, self.events_per_sec
        );
        if self.reads_skipped > 0 || self.shard_passes > 0 {
            let _ = writeln!(
                out,
                "scan       : {} reads skipped, {} shard passes",
                self.reads_skipped, self.shard_passes
            );
        }
        if let Some(tail) = &self.tail {
            let writers: Vec<String> = tail.writers.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "tail       : writers [{}] into {} register(s), {:.1} writes/1k ticks",
                writers.join(","),
                tail.written_registers,
                tail.writes_per_1k
            );
        }
        if let Some(san) = &self.san {
            let _ = writeln!(
                out,
                "san        : {}/{} blocks touched, {} accesses, {:.1} ms service time",
                san.blocks_touched, san.blocks_mapped, san.block_accesses, san.service_time_ms
            );
        }
        if let Some(chaos) = &self.chaos {
            let heal = match chaos.heal_to_stable_ticks {
                Some(t) => format!("{t} ticks heal→stable"),
                None => "no post-heal stabilization".to_string(),
            };
            let _ = writeln!(
                out,
                "chaos      : {} partition(s) over {} ticks, {} storm ticks, {}+{} wave crashes/recoveries, {heal}",
                chaos.partitions,
                chaos.partition_ticks,
                chaos.storm_ticks,
                chaos.wave_crashes,
                chaos.wave_recoveries
            );
        }
        if let Some(w) = &self.witness {
            let _ = writeln!(
                out,
                "non-elect  : {} demotions, max streak {} ticks (allowance {}), {} false-stable ticks over {}..{}",
                w.demotions,
                w.max_stable_streak_ticks,
                w.allowance(),
                w.false_stable_ticks,
                w.window_from,
                w.window_until
            );
        }
        if !self.grown_in_tail.is_empty() {
            let _ = writeln!(out, "unbounded  : {}", self.grown_in_tail.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_sim::SimTime;

    fn sample(at: u64, leaders: &[Option<usize>], steps: &[u64]) -> TimelineSample {
        TimelineSample {
            time: SimTime::from_ticks(at),
            leaders: leaders.iter().map(|l| l.map(ProcessId::new)).collect(),
            steps: steps.to_vec(),
        }
    }

    #[test]
    fn witness_flags_a_stable_self_leader() {
        // p0 leads itself, stepping, across the whole 0..=900 window.
        let samples: Vec<TimelineSample> = (0..10)
            .map(|i| sample(i * 100, &[Some(0), Some(0)], &[i + 1, i + 1]))
            .collect();
        let w = NonElectionWitness::from_timeline(0, 900, &samples);
        assert_eq!(w.max_stable_streak_ticks, 900);
        assert_eq!(w.allowance(), 300);
        assert_eq!(w.false_stable_ticks, 600, "reign beyond the allowance");
        assert_eq!(w.demotions, 0);
    }

    #[test]
    fn witness_accepts_churning_leadership() {
        // Self-leadership alternates between p0 and p1 every sample: all
        // churn, no streak longer than one interval.
        let samples: Vec<TimelineSample> = (0..10)
            .map(|i| {
                let boss = (i % 2) as usize;
                sample(i * 100, &[Some(boss), Some(boss)], &[i + 1, i + 1])
            })
            .collect();
        let w = NonElectionWitness::from_timeline(0, 900, &samples);
        assert_eq!(w.false_stable_ticks, 0);
        assert_eq!(w.max_stable_streak_ticks, 0, "no two adjacent self-leads");
        assert_eq!(
            w.demotions, 9,
            "every flip demotes the previous self-leader"
        );
    }

    #[test]
    fn witness_ignores_frozen_claimants() {
        // p0 claims itself the whole window but its step counter never
        // moves: a stalled process on a stale estimate is not a stable
        // leader.
        let samples: Vec<TimelineSample> = (0..10)
            .map(|i| sample(i * 100, &[Some(0), Some(0)], &[5, i + 1]))
            .collect();
        let w = NonElectionWitness::from_timeline(0, 900, &samples);
        assert_eq!(w.false_stable_ticks, 0);
        assert_eq!(w.max_stable_streak_ticks, 0);
        assert_eq!(w.demotions, 0, "it was never demoted, it just froze");
    }

    #[test]
    fn witness_clips_to_the_window() {
        // A long reign outside the window is invisible; inside it only
        // 200..=400 qualifies.
        let samples: Vec<TimelineSample> = (0..10)
            .map(|i| sample(i * 100, &[Some(0)], &[i + 1]))
            .collect();
        let w = NonElectionWitness::from_timeline(200, 400, &samples);
        assert_eq!(w.max_stable_streak_ticks, 200);
        assert_eq!(w.allowance(), 66);
        assert_eq!(w.false_stable_ticks, 134);
    }
}
