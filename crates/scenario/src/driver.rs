//! The backend interface: anything that can realize a [`Scenario`].

use crate::{Outcome, Scenario};

/// A backend that can execute a [`Scenario`] and report a comparable
/// [`Outcome`].
///
/// Four implementations ship today — [`SimDriver`](crate::SimDriver)
/// (deterministic virtual time, adversarial schedules),
/// [`ThreadDriver`](crate::ThreadDriver) (OS threads, wall-clock),
/// [`SanDriver`](crate::SanDriver) (OS threads over disk-block registers
/// with injected SAN latency) and [`CoopDriver`](crate::CoopDriver) (the
/// cooperative deadline-wheel runtime, the wall-clock backend that scales
/// past `n = 16`) — and the trait is the seam further backends plug into.
pub trait Driver {
    /// Short backend name recorded in every [`Outcome`].
    fn name(&self) -> &'static str;

    /// Executes the scenario to completion.
    fn run(&self, scenario: &Scenario) -> Outcome;
}
