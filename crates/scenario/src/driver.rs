//! The backend interface: anything that can realize a [`Scenario`].

use crate::{Outcome, Scenario};

/// A backend that can execute a [`Scenario`] and report a comparable
/// [`Outcome`].
///
/// Two implementations ship today — [`SimDriver`](crate::SimDriver)
/// (deterministic virtual time, adversarial schedules) and
/// [`ThreadDriver`](crate::ThreadDriver) (OS threads, wall-clock) — and the
/// trait is the seam future backends (a SAN-disk driver, an async/tokio
/// driver) plug into.
pub trait Driver {
    /// Short backend name recorded in every [`Outcome`].
    fn name(&self) -> &'static str;

    /// Executes the scenario to completion.
    fn run(&self, scenario: &Scenario) -> Outcome;
}
