//! One declarative scenario spec, every backend.
//!
//! The paper's central claim is that the *same* Ω algorithms behave
//! correctly both against adversarial schedules (checked in a simulator)
//! and on real hardware (run on threads). This crate makes that claim a
//! first-class API: a [`Scenario`] describes an election experiment once —
//! variant, system size, scheduling regime, AWB envelope, timer model,
//! crash script, horizon, seed — with no reference to any backend, and a
//! [`Driver`] realizes it:
//!
//! * [`SimDriver`] — the deterministic discrete-event simulator: virtual
//!   time, literally enforced adversaries and timer models, reproducible
//!   from the seed.
//! * [`ThreadDriver`] — operating-system threads and wall-clock time, with
//!   scenario ticks mapped to real durations and the crash script replayed
//!   on the wall clock.
//! * [`SanDriver`] — the paper's motivating deployment: the same election
//!   processes on OS threads, but every 1WnR register is a block of a
//!   simulated storage-area-network disk (one block per register, with
//!   injected access latency and block-level footprint accounting in
//!   [`Outcome::san`]).
//! * [`CoopDriver`] — the cooperative task runtime: the same node loops
//!   multiplexed as deadline-wheel tasks on one worker thread, the
//!   real-time backend that scales past `n = 16` (the thread/SAN drivers'
//!   hard limit) and realizes fairness through queue discipline instead of
//!   kernel preemption.
//!
//! All return the same [`Outcome`] type, measured through the same
//! instrumented registers and expressed in the same tick units, so results
//! are directly comparable across backends. The [`registry`] ships a
//! curated suite of named scenarios (fault-free, failover chains, crash
//! storms, σ stress, AWB edge cases, scaling probes) shared by the tests
//! and the benchmark binaries; parameterized families
//! ([`registry::sigma_sweep`], [`registry::n_scaling`],
//! [`registry::san_latency_sweep`], [`registry::contention_sweep`]) are
//! built through the [`registry::family`] helper.
//!
//! # The outcome-diff regression gate
//!
//! Outcomes are not just observed — they are *defended*. The
//! `omega-bench` `scenarios` binary records the whole suite into
//! `BENCH_scenarios.json` (stabilization tick, read/write totals, scan
//! savings, footprint per scenario), and the same binary re-runs the
//! suite and diffs it against that committed baseline:
//!
//! ```text
//! # record a new baseline (after an intentional perf change)
//! cargo run --release -p omega-bench --bin scenarios
//!
//! # gate: exits non-zero on a stabilization-tick regression > 25%
//! # or a total-write regression > 15% against the committed file
//! cargo run --release -p omega-bench --bin scenarios -- --check BENCH_scenarios.json
//! ```
//!
//! CI runs the `--check` form on every push, so a change that silently
//! slows stabilization or inflates write traffic fails the build; new
//! scenarios (no trend yet) are reported but never fail the gate. Set
//! `BENCH_OUT=<path>` to also publish the current outcomes from a check
//! run. The [`Outcome::reads_skipped`] / [`Outcome::shard_passes`]
//! counters in each record make the sharded-scan savings part of the
//! defended trend line.
//!
//! # One spec, two backends
//!
//! ```no_run
//! use omega_scenario::{registry, Driver, SimDriver, ThreadDriver};
//!
//! let scenario = registry::named("leader-crash-failover").unwrap();
//! let simulated = SimDriver.run(&scenario);
//! let native = ThreadDriver::default().run(&scenario);
//! for outcome in [&simulated, &native] {
//!     outcome.assert_election();          // Theorem 1, on both backends
//!     assert_eq!(outcome.crashed.len(), 1);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzz;
pub mod registry;
pub mod spec_text;

mod coop_driver;
mod driver;
mod outcome;
mod san_driver;
mod sim_driver;
mod spec;
mod thread_driver;
mod wall;

pub use coop_driver::CoopDriver;
pub use driver::Driver;
pub use outcome::{ChaosOutcome, NonElectionWitness, Outcome, SanFootprint, TailActivity};
pub use san_driver::SanDriver;
pub use sim_driver::SimDriver;
pub use spec::{
    coop_max_n, AdversarySpec, AwbSpec, CrashSpec, DriverEligibility, Scenario, TimerSpec,
    COOP_MAX_N, COOP_NODES_PER_WORKER, SIM_MAX_N, THREAD_MAX_N,
};
pub use thread_driver::ThreadDriver;
