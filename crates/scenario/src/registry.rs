//! The named scenario registry: one curated suite usable from tests,
//! benches, and examples alike.
//!
//! Each entry is a complete, backend-free [`Scenario`]; run any of them on
//! any [`Driver`](crate::Driver). `expect_stabilization` records which side
//! of the AWB assumption the spec falls on, so suites can assert both the
//! positive theorems and the necessity experiments.

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_runtime::san::SanLatency;
use omega_sim::chaos::{Campaign, ChaosPhase};

use crate::{AdversarySpec, Scenario, TimerSpec};

/// The curated scenario suite, in presentation order.
#[must_use]
pub fn all() -> Vec<Scenario> {
    let mut suite = vec![
        fault_free(),
        fault_free_large(),
        leader_crash_failover(),
        double_failover(),
        crash_storm(),
        sigma_stress(),
        slow_timer_edge(),
        bounded_memory(),
        mwmr_lean(),
        stepclock(),
    ];
    suite.extend(n_scaling(&[32, 64, 128, 256, 512, 1024]));
    suite.extend(contention_sweep(&[(4, 4), (4, 32), (32, 4), (32, 32)]));
    suite.extend(san_latency_sweep(&[(100, 100), (500, 500), (2_000, 1_000)]));
    suite.extend(chaos_suite());
    suite.extend(hostile_suite());
    suite.push(no_awb_staller());
    suite
}

/// The chaos campaigns: partitions, latency storms, and crash/recovery
/// waves as first-class scenarios. Members deliberately span the admission
/// matrix — `partition-heal` runs everywhere, `latency-storm` only where
/// service time is simulated (sim, SAN), `wave-recover` only where a
/// process can be un-crashed (sim).
#[must_use]
pub fn chaos_suite() -> Vec<Scenario> {
    vec![
        chaos_partition_heal(),
        chaos_latency_storm(),
        chaos_wave_recover(),
    ]
}

/// The headline chaos story: a minority/majority register-space partition
/// mid-run. Inside the cut the minority `{0,1}` elects locally while the
/// majority side (holding the timely `p4`) elects its own leader; no
/// global stable leader can exist until the heal, after which re-election
/// must land within a bounded window (asserted via
/// [`ChaosOutcome::heal_to_stable_ticks`](crate::ChaosOutcome)).
#[must_use]
pub fn chaos_partition_heal() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("chaos/partition-heal")
        .awb(ProcessId::new(4), 1_000, 4)
        .campaign(Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![
                vec![ProcessId::new(0), ProcessId::new(1)],
                vec![ProcessId::new(2), ProcessId::new(3), ProcessId::new(4)],
            ],
            from: 20_000,
            until: 45_000,
        }))
        .horizon(100_000)
}

/// A latency storm on the shared medium: step service time stretched 4×
/// (±2 ticks of jitter) for a 20 000-tick window. The election must hold
/// its leader through the storm — slow is not crashed.
#[must_use]
pub fn chaos_latency_storm() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("chaos/latency-storm")
        .campaign(Campaign::new().phase(ChaosPhase::Storm {
            factor: 4,
            jitter: 2,
            from: 15_000,
            until: 35_000,
        }))
        .horizon(80_000)
}

/// A crash wave that later recedes: `{0,1}` stop at 15 000 and resume at
/// 40 000 with their register state intact (stopped nodes rejoining). Only
/// the simulator can un-crash a process, so this member is sim-only.
#[must_use]
pub fn chaos_wave_recover() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("chaos/wave-recover")
        .awb(ProcessId::new(4), 1_000, 4)
        .campaign(
            Campaign::new()
                .phase(ChaosPhase::Wave {
                    crash: vec![ProcessId::new(0), ProcessId::new(1)],
                    recover: vec![],
                    at: 15_000,
                })
                .phase(ChaosPhase::Wave {
                    crash: vec![],
                    recover: vec![ProcessId::new(0), ProcessId::new(1)],
                    at: 40_000,
                }),
        )
        .horizon(100_000)
}

/// The hostile campaigns: chaos *outside* the tame envelope, with
/// non-election as the verified outcome. The expect-false members upgrade
/// the necessity experiment from "did not stabilize" to a checked
/// [`NonElectionWitness`](crate::NonElectionWitness): inside the
/// disruption window no process may ever accumulate a stable self-leading
/// reign (`false_stable_ticks == 0`). Each pairs its chaos clause with the
/// AWB₂-violating regime the clause exploits — timers stuck below the
/// disruption cadence can never outrun it, and the leader-stalling
/// schedule keeps rotating whichever process the counter argmin would
/// otherwise settle on (with the id tie-break, symmetric counter growth
/// alone would let `p0` reign through any symmetric cut). `asym-core` is
/// the positive control: a *directed* cut is survivable when the side
/// everyone still reads live is a strongly-connected timely core.
#[must_use]
pub fn hostile_suite() -> Vec<Scenario> {
    vec![
        hostile_flap(),
        hostile_asym_cut(),
        hostile_storm(),
        hostile_asym_core(),
    ]
}

/// A symmetric flapping partition at a cadence the stuck-low timers can
/// never outrun: the register space splits and heals every 3 000 ticks for
/// most of the run. With no AWB envelope and the staller demoting every
/// would-be argmin, the witness must show zero false-stable ticks across
/// the whole flap window.
#[must_use]
pub fn hostile_flap() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("hostile/flap")
        .without_awb()
        .adversary(AdversarySpec::LeaderStaller {
            base: 2,
            stall: 4_000,
        })
        .timers(TimerSpec::StuckLow { cap: 8 })
        .campaign(Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![
                vec![ProcessId::new(0), ProcessId::new(1)],
                vec![ProcessId::new(2), ProcessId::new(3)],
            ],
            period: 3_000,
            from: 10_000,
            until: 82_000,
        }))
        .horizon(100_000)
}

/// An asymmetric majority cut: `{0,1,2}` read `{3,4}` frozen for most of
/// the run while `{3,4}` still read everyone live. Under the stalling
/// schedule and stuck timers, the blinded majority's counters pump
/// one-way — no stable reign may form anywhere inside the cut window.
#[must_use]
pub fn hostile_asym_cut() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("hostile/asym-cut")
        .without_awb()
        .adversary(AdversarySpec::LeaderStaller {
            base: 2,
            stall: 4_000,
        })
        .timers(TimerSpec::StuckLow { cap: 8 })
        .campaign(Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
            hidden: vec![ProcessId::new(3), ProcessId::new(4)],
            from: 15_000,
            until: 90_000,
        }))
        .horizon(110_000)
}

/// An envelope-violating latency storm: step service time stretched 16×
/// while every timer stays stuck at 8 ticks — far below the stretched
/// inter-write gap, so mutual suspicion never stops and the staller keeps
/// the argmin rotating for the storm's whole span. The stall is quoted
/// pre-stretch: the storm multiplies it to the same ~4 000-tick rotation
/// cadence the other hostile members run at.
#[must_use]
pub fn hostile_storm() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("hostile/storm")
        .without_awb()
        .adversary(AdversarySpec::LeaderStaller {
            base: 2,
            stall: 250,
        })
        .timers(TimerSpec::StuckLow { cap: 8 })
        .campaign(Campaign::new().phase(ChaosPhase::Storm {
            factor: 16,
            jitter: 8,
            from: 10_000,
            until: 90_000,
        }))
        .horizon(110_000)
}

/// The positive control (López–Rajsbaum–Raynal's connectivity condition):
/// a directed cut blinds the majority `{2,3,4}` to the core `{0,1}` — but
/// the core stays strongly connected, holds the timely `p0`, and is read
/// live by *everyone*. The hidden side's counters pump unboundedly while
/// the core's stay flat, so all five processes agree on `p0` straight
/// through the cut: a hostile asymmetric topology that still elects, on
/// the simulator and on every wall backend.
#[must_use]
pub fn hostile_asym_core() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("hostile/asym-core")
        .awb(ProcessId::new(0), 1_000, 4)
        .campaign(Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![ProcessId::new(0), ProcessId::new(1)],
            hidden: vec![ProcessId::new(2), ProcessId::new(3), ProcessId::new(4)],
            from: 15_000,
            until: 90_000,
        }))
        .horizon(120_000)
}

/// Loads the fuzz-regression corpus from a directory of `*.spec` files
/// (the format of [`spec_text`](crate::spec_text), one scenario each).
///
/// Each scenario is named `fuzz-regression/<file-stem>` from its file name
/// — the canonical corpus layout the fuzz binary emits — regardless of any
/// `scenario` line inside, so names and files cannot drift apart. Files
/// are loaded in sorted order; a missing directory is an empty corpus.
///
/// # Errors
///
/// Returns a message naming the offending file when one cannot be read or
/// parsed — a corrupt reproducer must fail loudly, not shrink the suite.
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<Scenario>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "spec"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read corpus spec {}: {e}", path.display()))?;
        let scenario = crate::spec_text::from_spec_text(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("non-UTF-8 corpus file name {}", path.display()))?;
        out.push(scenario.named(format!("fuzz-regression/{stem}")));
    }
    Ok(out)
}

/// Looks a scenario up by its registry name.
#[must_use]
pub fn named(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// All registry names, in presentation order.
#[must_use]
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

/// Baseline: Figure 2, four processes, random AWB schedule, no faults.
#[must_use]
pub fn fault_free() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4).named("fault-free")
}

/// The same baseline at n = 16: register layout and suspicion traffic grow
/// quadratically while the election must still settle.
#[must_use]
pub fn fault_free_large() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 16)
        .named("fault-free-large")
        .horizon(80_000)
}

/// The headline failover story: elect, crash the leader a third of the way
/// in, re-elect among the survivors.
#[must_use]
pub fn leader_crash_failover() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("leader-crash-failover")
        .awb(ProcessId::new(4), 1_000, 4)
        .crash_leader_at(20_000)
        .horizon(80_000)
}

/// Two successive leader crashes: every reign must end in a clean handover.
#[must_use]
pub fn double_failover() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 5)
        .named("double-failover")
        .awb(ProcessId::new(4), 0, 4)
        .crash_leader_at(20_000)
        .crash_leader_at(50_000)
        .horizon(110_000)
}

/// `t = n − 1` faults: five of six processes crash in a staggered storm;
/// the lone survivor (the timely `p5`) must end up electing itself.
#[must_use]
pub fn crash_storm() -> Scenario {
    let mut scenario = Scenario::fault_free(OmegaVariant::Alg1, 6)
        .named("crash-storm")
        .awb(ProcessId::new(5), 0, 4)
        .horizon(80_000);
    for i in 0..5 {
        scenario = scenario.crash_at(4_000 + i * 4_000, ProcessId::new(i as usize));
    }
    scenario
}

/// A slack AWB₁ bound: the timely process is only clamped to σ = 32 while
/// followers race at delays in `[1, 12]` — stabilization must survive any
/// finite σ (Lemma 2's geometry).
#[must_use]
pub fn sigma_stress() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("sigma-stress")
        .adversary(AdversarySpec::Random { min: 1, max: 12 })
        .awb(ProcessId::new(0), 2_000, 32)
        .horizon(80_000)
}

/// The AWB₂ asymptotic edge: every timer is arbitrary garbage for the
/// first 20 000 ticks and only then behaves — stabilization is only
/// promised *after* the chaos, and arrives.
#[must_use]
pub fn slow_timer_edge() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("slow-timer-edge")
        .adversary(AdversarySpec::Random { min: 1, max: 9 })
        .awb(ProcessId::new(0), 2_000, 4)
        .timers(TimerSpec::ChaoticThenExact {
            chaos_until: 20_000,
            chaos_max: 60,
        })
        .horizon(100_000)
}

/// Figure 5: the fully bounded variant, everyone writing forever.
#[must_use]
pub fn bounded_memory() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg2, 4).named("bounded-memory")
}

/// Section 3.5(a): suspicion columns collapsed into nWnR registers — a
/// linear register count instead of quadratic.
#[must_use]
pub fn mwmr_lean() -> Scenario {
    Scenario::fault_free(OmegaVariant::Mwmr, 5).named("mwmr-lean")
}

/// Section 3.5(b): timers replaced by counted own-steps.
#[must_use]
pub fn stepclock() -> Scenario {
    Scenario::fault_free(OmegaVariant::StepClock, 4).named("stepclock")
}

/// Scale probes: the standard AWB workload at growing system sizes —
/// `n-scaling-32` is the historical baseline; 64/128/256 exercise the
/// sharded `T3` scan and the epoch-gated `leader()` cache, whose savings
/// the outcome's `reads_skipped`/`shard_passes` counters make visible;
/// 512/1024 exist for the sharded coop worker pool (admitted at
/// `workers ≥ 8` / `≥ 16` — see `coop_max_n`) and are refused by every
/// other backend, including the sim (`SIM_MAX_N`: its literal realization
/// is memory-cubic in `n`).
///
/// Statistics checkpoints shrink with `n` because one cumulative snapshot
/// is `O(n³)` counters; the trend line needs totals, not fine windows. The
/// giant probes also shorten the horizon: stabilization lands within the
/// first few hundred ticks, and a wall run's deadline budget scales with
/// the horizon — a 100 000-tick allowance at `n ≥ 512` buys nothing but a
/// slower failure when a pool doesn't elect.
#[must_use]
pub fn n_scaling(sizes: &[usize]) -> Vec<Scenario> {
    family("n-scaling-", sizes, |n| {
        Scenario::fault_free(OmegaVariant::Alg1, n)
            .horizon(match n {
                n if n >= 1024 => 10_000,
                n if n >= 512 => 20_000,
                _ => 100_000,
            })
            .stats_checkpoints(match n {
                n if n >= 512 => 2,
                n if n >= 128 => 4,
                _ => 16,
            })
    })
}

/// One `(writers, sigma)` point of the contention sweep, displayed as
/// `<writers>x<sigma>` so family members get stable registry names.
#[derive(Clone, Copy)]
struct ContentionPoint {
    writers: usize,
    sigma: u64,
}

impl std::fmt::Display for ContentionPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.writers, self.sigma)
    }
}

/// The write-contention sweep à la Alistarh–Gelashvili (PAPERS.md): the
/// standard AWB workload with the number of *contending writers* and the
/// timing slack σ as the two axes. Pre-stabilization, every process is a
/// suspicion writer, so `writers` (the system size) is literally the
/// write-contention bound `κ` of the lower-bound literature; larger σ
/// stretches the churn phase, holding the contention window open longer
/// before the single-writer regime takes over.
///
/// Members above `n = 16` exist precisely for the cooperative backend: the
/// simulator and the coop driver run them, the per-node-thread backends
/// (threads, SAN) skip them — a sweep that is *only* meaningful now that a
/// wall-clock backend scales.
#[must_use]
pub fn contention_sweep(points: &[(usize, u64)]) -> Vec<Scenario> {
    let points: Vec<ContentionPoint> = points
        .iter()
        .map(|&(writers, sigma)| ContentionPoint { writers, sigma })
        .collect();
    family("contention/", &points, |p| {
        Scenario::fault_free(OmegaVariant::Alg1, p.writers)
            .awb(ProcessId::new(0), 1_000, p.sigma)
            .horizon(80_000)
            .stats_checkpoints(if p.writers > 16 { 4 } else { 16 })
    })
}

/// One `(base, jitter)` point of the SAN latency sweep, displayed as
/// `<base>x<jitter>` (µs) so family members get stable registry names.
#[derive(Clone, Copy)]
struct SanPoint {
    base_us: u64,
    jitter_us: u64,
}

impl std::fmt::Display for SanPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.base_us, self.jitter_us)
    }
}

/// The SAN latency sweep: the standard fault-free workload with the disk's
/// `(base, jitter)` access latency pinned per member (µs pairs, e.g.
/// `san-latency/500x500` is the commodity-iSCSI point). On the SAN driver
/// each member pays its own simulated service time per register access and
/// stretches its pacing to match; other backends run the member as a plain
/// fault-free scenario — the latency pin is SAN-only, exactly as the
/// adversary spec is simulator-only.
///
/// Horizons are short: elections on a slow disk are latency-dominated, and
/// the family exists to chart stabilization time and block traffic against
/// access latency, not to soak.
#[must_use]
pub fn san_latency_sweep(points_us: &[(u64, u64)]) -> Vec<Scenario> {
    let points: Vec<SanPoint> = points_us
        .iter()
        .map(|&(base_us, jitter_us)| SanPoint { base_us, jitter_us })
        .collect();
    family("san-latency/", &points, |p| {
        Scenario::fault_free(OmegaVariant::Alg1, 3)
            .san_latency(SanLatency {
                base: std::time::Duration::from_micros(p.base_us),
                jitter: std::time::Duration::from_micros(p.jitter_us),
            })
            .horizon(20_000)
    })
}

/// The necessity experiment (E13): no AWB envelope, a leader-stalling
/// schedule, and AWB₂-violating timers — the election must *not* settle.
#[must_use]
pub fn no_awb_staller() -> Scenario {
    Scenario::fault_free(OmegaVariant::Alg1, 4)
        .named("no-awb-staller")
        .without_awb()
        .adversary(AdversarySpec::LeaderStaller {
            base: 2,
            stall: 4_000,
        })
        .timers(TimerSpec::StuckLow { cap: 8 })
        .horizon(120_000)
}

/// Builds a parameterized scenario family: one scenario per parameter,
/// built by `build` and named `{name}{param}` (callers include the
/// separator — `"sigma-sweep/"`, `"n-scaling-"` — in `name`, so family
/// members keep their historical registry names).
///
/// This is the pattern behind [`sigma_sweep`] and [`n_scaling`]; sweeps
/// for new dimensions (contention, horizon, timer jitter) should go
/// through it rather than hand-rolling the map-and-name loop.
#[must_use]
pub fn family<P: Copy + std::fmt::Display>(
    name: &str,
    params: &[P],
    mut build: impl FnMut(P) -> Scenario,
) -> Vec<Scenario> {
    params
        .iter()
        .map(|&p| build(p).named(format!("{name}{p}")))
        .collect()
}

/// The σ sweep of experiment E5: one scenario per σ, identical otherwise.
#[must_use]
pub fn sigma_sweep(sigmas: &[u64]) -> Vec<Scenario> {
    family("sigma-sweep/", sigmas, |sigma| {
        Scenario::fault_free(OmegaVariant::Alg1, 4)
            .adversary(AdversarySpec::Random { min: 1, max: 12 })
            .awb(ProcessId::new(0), 2_000, sigma)
            .seed(11)
            .horizon(80_000)
            .stats_checkpoints(32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_dir_round_trips_a_corpus() {
        let dir = std::env::temp_dir().join(format!("omega-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = crash_storm();
        std::fs::write(
            dir.join("abc123.spec"),
            crate::spec_text::to_spec_text(&spec),
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "fuzz-regression/abc123");
        assert_eq!(loaded[0].n, spec.n);
        assert_eq!(loaded[0].crashes, spec.crashes);
        // A corrupt spec fails loudly.
        std::fs::write(dir.join("bad.spec"), "variant nope\nn 3\n").unwrap();
        let e = load_dir(&dir).unwrap_err();
        assert!(e.contains("bad.spec"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
        // A missing directory is an empty corpus, not an error.
        assert!(load_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        assert!(names.len() >= 10, "the suite promises ~10 scenarios");
        let mut seen = std::collections::HashSet::new();
        for name in &names {
            assert!(seen.insert(name.clone()), "duplicate scenario {name}");
            let scenario = named(name).expect("resolvable");
            assert_eq!(&scenario.name, name);
            assert!(scenario.n > 0);
        }
        assert!(named("no-such-scenario").is_none());
    }

    #[test]
    fn chaos_suite_spans_the_admission_matrix() {
        let eligible = |name: &str| named(name).unwrap().eligible_drivers().names();
        assert_eq!(
            eligible("chaos/partition-heal"),
            vec!["sim", "threads", "san", "coop"],
            "partitions and heals are realizable on every backend"
        );
        assert_eq!(
            eligible("chaos/latency-storm"),
            vec!["sim", "san"],
            "only simulated service time can be stormed"
        );
        assert_eq!(
            eligible("chaos/wave-recover"),
            vec!["sim"],
            "only the simulator can un-crash a process"
        );
    }

    #[test]
    fn awb_classification_is_recorded() {
        assert!(fault_free().expect_stabilization);
        assert!(crash_storm().expect_stabilization);
        assert!(!no_awb_staller().expect_stabilization);
    }

    #[test]
    fn hostile_suite_spans_expectations_and_admission() {
        let suite = hostile_suite();
        assert_eq!(suite.len(), 4);
        // The expect-false members are sim-only: a wall backend cannot
        // assert non-election, so admission strips every wall driver.
        for member in ["hostile/flap", "hostile/asym-cut", "hostile/storm"] {
            let scenario = named(member).unwrap();
            assert!(
                !scenario.expect_stabilization,
                "{member} must expect no-elect"
            );
            assert_eq!(
                scenario.eligible_drivers().names(),
                vec!["sim"],
                "{member} is a non-election experiment"
            );
        }
        // The positive control elects, and its directed cut acts through
        // the visibility mask — admitted everywhere.
        let core = named("hostile/asym-core").unwrap();
        assert!(core.expect_stabilization);
        assert_eq!(
            core.eligible_drivers().names(),
            vec!["sim", "threads", "san", "coop"],
            "a survivable directed cut runs on every backend"
        );
    }

    #[test]
    fn hostile_members_verify_non_election_on_sim() {
        use crate::Driver as _;
        for scenario in hostile_suite() {
            let outcome = crate::SimDriver.run(&scenario);
            if scenario.expect_stabilization {
                // The asym-core control: the cut must not even delay the
                // election past the core's initial settling.
                outcome.assert_election();
                assert!(
                    outcome.witness.is_none(),
                    "witness is only computed for non-election specs"
                );
            } else {
                assert!(
                    !outcome.stabilized_for(0.34),
                    "{} must not hold a leader: {:?}",
                    scenario.name,
                    outcome.stabilization_ticks
                );
                let witness = outcome
                    .witness
                    .as_ref()
                    .expect("expect-false campaign computes a witness");
                assert_eq!(
                    witness.false_stable_ticks, 0,
                    "{}: a reign exceeded the allowance: {witness:?}",
                    scenario.name
                );
                assert!(
                    witness.demotions > 0,
                    "{}: the window must show observed churn: {witness:?}",
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn crash_storm_spares_the_timely_process() {
        let scenario = crash_storm();
        let timely = scenario.awb.unwrap().timely;
        for crash in &scenario.crashes {
            if let crate::CrashSpec::At { pid, .. } = crash {
                assert_ne!(*pid, timely, "the storm must not kill the AWB witness");
            }
        }
        assert_eq!(scenario.crashes.len(), 5);
    }

    #[test]
    fn sigma_sweep_parameterizes_only_sigma() {
        let sweep = sigma_sweep(&[2, 8, 32]);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].name, "sigma-sweep/2");
        assert_eq!(sweep[0].awb.unwrap().sigma, 2);
        assert_eq!(sweep[2].awb.unwrap().sigma, 32);
        assert_eq!(sweep[0].seed, sweep[2].seed);
        assert_eq!(sweep[0].horizon, sweep[2].horizon);
    }

    #[test]
    fn family_names_members_with_caller_separator() {
        let members = family("probe/", &[1u64, 9], |p| {
            Scenario::fault_free(OmegaVariant::Alg1, 3).seed(p)
        });
        assert_eq!(members[0].name, "probe/1");
        assert_eq!(members[1].name, "probe/9");
        assert_eq!(members[1].seed, 9);
    }

    #[test]
    fn contention_sweep_parameterizes_writers_and_sigma() {
        let sweep = contention_sweep(&[(4, 4), (32, 32)]);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].name, "contention/4x4");
        assert_eq!(sweep[0].n, 4);
        assert_eq!(sweep[0].awb.unwrap().sigma, 4);
        assert_eq!(sweep[1].name, "contention/32x32");
        assert_eq!(sweep[1].n, 32);
        assert_eq!(sweep[1].awb.unwrap().sigma, 32);
        assert!(sweep.iter().all(|s| s.expect_stabilization));
        // Large members checkpoint coarsely (O(n³) snapshots), small ones
        // keep the standard cadence.
        assert_eq!(sweep[0].stats_checkpoints, 16);
        assert_eq!(sweep[1].stats_checkpoints, 4);
        // The default registry carries the four-point sweep.
        for name in [
            "contention/4x4",
            "contention/4x32",
            "contention/32x4",
            "contention/32x32",
        ] {
            assert!(named(name).is_some(), "{name} must be in the registry");
        }
    }

    #[test]
    fn san_latency_sweep_pins_latency_per_member() {
        let sweep = san_latency_sweep(&[(100, 100), (2_000, 1_000)]);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].name, "san-latency/100x100");
        assert_eq!(sweep[1].name, "san-latency/2000x1000");
        let pinned = sweep[1].san_latency.expect("sweep members pin latency");
        assert_eq!(pinned.base, std::time::Duration::from_micros(2_000));
        assert_eq!(pinned.jitter, std::time::Duration::from_micros(1_000));
        assert!(sweep.iter().all(|s| s.expect_stabilization));
        // And the commodity point is in the default registry.
        assert!(named("san-latency/500x500").is_some());
    }

    #[test]
    fn n_scaling_family_keeps_historical_name_and_scales_checkpoints() {
        let probes = n_scaling(&[32, 64, 128, 256, 512, 1024]);
        assert_eq!(probes[0].name, "n-scaling-32");
        assert_eq!(probes[3].name, "n-scaling-256");
        assert_eq!(probes[3].n, 256);
        assert!(probes.iter().all(|s| s.expect_stabilization));
        assert_eq!(probes[1].stats_checkpoints, 16);
        assert_eq!(
            probes[2].stats_checkpoints, 4,
            "O(n³) snapshots: large probes checkpoint coarsely"
        );
        assert_eq!(probes[4].stats_checkpoints, 2);
        assert_eq!(
            (probes[4].horizon, probes[5].horizon),
            (20_000, 10_000),
            "giant probes shorten the horizon: stabilization is early"
        );
        // The giant probes are exactly the sharded coop pool's territory:
        // no single-worker backend admits them (nor the sim — memory-cubic
        // realization), a big enough pool does.
        assert!(!probes[4].eligible_drivers().coop);
        assert!(probes[4].eligible_drivers_at(8).coop);
        assert!(probes[5].eligible_drivers_at(16).coop);
        assert!(probes[3].eligible_drivers().sim);
        assert!(!probes[4].eligible_drivers().sim);
        assert!(!probes[5].eligible_drivers().sim);
        for name in [
            "n-scaling-32",
            "n-scaling-64",
            "n-scaling-128",
            "n-scaling-256",
            "n-scaling-512",
            "n-scaling-1024",
        ] {
            assert!(named(name).is_some(), "{name} must be in the registry");
        }
    }
}
