//! The declarative scenario specification — backend-free.

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_runtime::san::SanLatency;
use omega_sim::adversary::{
    Adversary, AwbEnvelope, Bursty, GrowingBursts, LeaderStaller, PartitionedPhases, RoundRobin,
    SeededRandom, Synchronous,
};
use omega_sim::chaos::Campaign;
use omega_sim::crash::CrashPlan;
use omega_sim::timers::{
    AffineTimer, ChaoticThen, ExactTimer, JitteredTimer, StuckLowTimer, TimerModel,
};
use omega_sim::{Actor, SimTime, Simulation, SimulationBuilder};

/// The scheduling regime of a scenario.
///
/// The simulator realizes these literally; the thread runtime cannot impose
/// an interleaving on the OS scheduler, so there the spec serves as
/// documentation of the regime the simulated twin ran under (the OS itself
/// plays the fair scheduler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// Every process steps once per `period` ticks.
    Synchronous {
        /// Step period in ticks.
        period: u64,
    },
    /// Fixed rotation, `slot` ticks per turn.
    RoundRobin {
        /// Ticks per rotation slot.
        slot: u64,
    },
    /// Independent uniform random delays in `[min, max]`.
    Random {
        /// Minimum step delay (ticks, ≥ 1).
        min: u64,
        /// Maximum step delay (ticks).
        max: u64,
    },
    /// Bursts of fast steps separated by long stalls, per process.
    Bursty {
        /// Delay between steps inside a burst.
        fast: u64,
        /// Length of the stall between bursts.
        stall: u64,
        /// Steps per burst.
        burst_len: u64,
    },
    /// Alternating partition phases: half the processes stalled at a time.
    PartitionedPhases {
        /// Phase length in ticks.
        phase_len: u64,
        /// Step delay for the running half.
        fast: u64,
        /// Step delay for the stalled half.
        stall: u64,
    },
    /// One designated victim suffers geometrically growing stalls — correct
    /// but never eventually synchronous (the AWB-vs-ES separating schedule).
    GrowingBursts {
        /// The process whose stalls grow.
        victim: ProcessId,
        /// Delay between its fast steps.
        fast: u64,
        /// Fast steps between stalls.
        burst_len: u64,
        /// First stall length; multiplied by `factor` each time.
        initial_stall: u64,
        /// Stall growth factor (≥ 2).
        factor: u64,
    },
    /// Stalls whichever process currently leads, forever (AWB-violating).
    LeaderStaller {
        /// Step delay for everyone else.
        base: u64,
        /// Step delay for the current leader.
        stall: u64,
    },
}

/// The AWB₁ envelope: after `tau1` the designated process's step delay is
/// clamped to `sigma`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwbSpec {
    /// The eventually timely process `p_ℓ`.
    pub timely: ProcessId,
    /// Time `τ₁` after which the clamp applies (ticks).
    pub tau1: u64,
    /// The clamp `σ` (ticks).
    pub sigma: u64,
}

/// The timer model every process runs (AWB₂ and its violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerSpec {
    /// `T(τ, x) = x` — the faithful timer.
    Exact,
    /// `T(τ, x) = scale·x + offset`.
    Affine {
        /// Rate multiplier (≥ 1 keeps AWB₂).
        scale: u64,
        /// Constant overhead.
        offset: u64,
    },
    /// `T(τ, x) = x + U[0, jitter]`, seeded per process.
    Jittered {
        /// Maximum extra delay.
        jitter: u64,
    },
    /// Arbitrary in `[1, chaos_max]` before `chaos_until`, exact afterwards
    /// — the asymptotic edge of AWB₂ (`τ_f = chaos_until`).
    ChaoticThenExact {
        /// End of the chaotic prefix (ticks).
        chaos_until: u64,
        /// Maximum chaotic duration.
        chaos_max: u64,
    },
    /// Even identities jittered, odd identities affine — a heterogeneous
    /// AWB₂-satisfying mix.
    JitterAffineMix {
        /// Jitter bound for even identities.
        jitter: u64,
        /// Affine scale for odd identities.
        scale: u64,
        /// Affine offset for odd identities.
        offset: u64,
    },
    /// `T(τ, x) = min(x, cap)` — **violates** AWB₂.
    StuckLow {
        /// The cap that breaks domination.
        cap: u64,
    },
}

/// One scripted failure, in scenario (tick) time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSpec {
    /// Crash a specific process at a specific tick.
    At {
        /// When (ticks).
        tick: u64,
        /// Whom.
        pid: ProcessId,
    },
    /// Crash whichever process the plurality then trusts as leader.
    LeaderAt {
        /// When (ticks).
        tick: u64,
    },
}

/// A complete, backend-free description of one election experiment.
///
/// Largest system the per-node-thread wall-clock backends (threads, SAN)
/// admit: `2n` dedicated OS threads thrash the scheduler past this, so
/// larger scenarios belong on the cooperative backend.
pub const THREAD_MAX_N: usize = 16;

/// Largest system the deterministic simulator admits. The literal
/// realization keeps a per-process `SuspicionCache`-style mirror of the
/// whole `n × n` suspicion matrix — `O(n³)` words across the system — and
/// pre-stabilization scans cost `O(n²)` per tick, so n = 512 already runs
/// minutes and tens of gigabytes where n = 256 takes seconds. Larger
/// systems are exactly what the sharded cooperative pool exists for, so
/// the sim refuses them loudly instead of thrashing.
pub const SIM_MAX_N: usize = 256;

/// Largest system the cooperative wall-clock backend records *on a small
/// pool*: up to two workers the wall comes from the wall-clock budget a
/// 100 µs tick leaves the multiplexing cores, not from thread thrash.
/// Larger pools raise the cap — see [`coop_max_n`].
pub const COOP_MAX_N: usize = 128;

/// How many nodes each additional coop worker is budgeted to carry once
/// the pool shards the deadline wheel: a worker owns `2 ×` this many task
/// loops, and the budget is deliberately half a lone worker's 128-node
/// ceiling because pooled workers also pay for stealing and cross-shard
/// re-arm traffic.
pub const COOP_NODES_PER_WORKER: usize = 64;

/// The coop admission cap as a function of pool size: a small pool keeps
/// the historical [`COOP_MAX_N`] = 128 ceiling, and past that every worker
/// adds [`COOP_NODES_PER_WORKER`] nodes — 4 workers admit n = 256, 8 admit
/// n = 512, 16 admit n = 1024.
#[must_use]
pub fn coop_max_n(workers: usize) -> usize {
    COOP_MAX_N.max(COOP_NODES_PER_WORKER * workers)
}

/// Which drivers can honor a scenario's contract — the driver axis of the
/// suite, one flag per backend (see the driver-axis table in ROADMAP.md).
///
/// The simulator runs every *regime* (it is the only backend that can
/// violate AWB on purpose) but refuses `n >` [`SIM_MAX_N`] — its literal
/// realization is memory-cubic in `n`. No wall-clock backend can realize
/// an AWB-violating literal adversary (real time *is* the fair schedule),
/// so the wall backends admit only scenarios whose spec promises
/// stabilization; the per-node-thread backends additionally refuse
/// `n >` [`THREAD_MAX_N`] and the cooperative backend refuses `n` beyond
/// its worker-dependent cap [`coop_max_n`] (128 single-worker) — the only
/// backend that reaches past the sim's cap, given enough workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverEligibility {
    /// The deterministic simulator (`SimDriver`).
    pub sim: bool,
    /// Dedicated OS threads (`ThreadDriver`).
    pub threads: bool,
    /// Dedicated OS threads over SAN block registers (`SanDriver`).
    pub san: bool,
    /// The cooperative deadline-wheel runtime (`CoopDriver`).
    pub coop: bool,
}

impl DriverEligibility {
    /// The admitting drivers' names, in the suite's canonical order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.sim {
            names.push("sim");
        }
        if self.threads {
            names.push("threads");
        }
        if self.san {
            names.push("san");
        }
        if self.coop {
            names.push("coop");
        }
        names
    }
}

/// A `Scenario` is the single source of truth a [`Driver`](crate::Driver)
/// consumes: which Ω variant, how many processes, the scheduling and timer
/// regime, the crash script, and the horizon — everything expressed in
/// abstract ticks. [`SimDriver`](crate::SimDriver) realizes ticks as
/// virtual time; [`ThreadDriver`](crate::ThreadDriver) maps them to
/// wall-clock durations.
///
/// # Examples
///
/// ```
/// use omega_core::OmegaVariant;
/// use omega_scenario::{Driver, Scenario, SimDriver};
///
/// let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
///     .crash_leader_at(20_000)
///     .horizon(60_000);
/// let outcome = SimDriver::default().run(&scenario);
/// assert!(outcome.stabilized);
/// assert_eq!(outcome.crashed.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (used in tables and JSON output).
    pub name: String,
    /// Which Ω implementation runs.
    pub variant: OmegaVariant,
    /// Number of processes.
    pub n: usize,
    /// The scheduling regime (simulator-enforced).
    pub adversary: AdversarySpec,
    /// The AWB₁ envelope, if the scenario guarantees it.
    pub awb: Option<AwbSpec>,
    /// The timer model (AWB₂ side of the assumption).
    pub timers: TimerSpec,
    /// Scripted failures.
    pub crashes: Vec<CrashSpec>,
    /// Run horizon in ticks (the thread driver maps this to its deadline).
    pub horizon: u64,
    /// Leader-estimate sampling cadence in ticks.
    pub sample_every: u64,
    /// Number of statistics/footprint checkpoints across the run.
    pub stats_checkpoints: usize,
    /// Seed for every random choice (adversary delays, timer jitter).
    pub seed: u64,
    /// Whether the spec satisfies AWB, i.e. whether the paper's theorems
    /// promise stabilization for it. Registry scenarios set this so tests
    /// can assert both directions.
    pub expect_stabilization: bool,
    /// Disk latency model pinned by the scenario, for SAN-backed drivers
    /// (the `san-latency/…` sweep family sets this; other backends ignore
    /// it, exactly as the thread backend ignores the adversary spec).
    pub san_latency: Option<SanLatency>,
    /// The chaos campaign, if any: a declarative fault schedule of
    /// register-space partitions, latency storms, crash/recovery waves and
    /// heals. The simulator realizes it literally; wall-clock drivers
    /// realize partitions, crash waves and heals best-effort at wall due
    /// times and *refuse* clauses they cannot honor (storms everywhere but
    /// SAN, recovery everywhere but sim) — see
    /// [`eligible_drivers`](Self::eligible_drivers).
    pub campaign: Option<Campaign>,
}

impl Scenario {
    /// A fault-free baseline: seeded-random scheduling inside an AWB
    /// envelope (`p0` timely, `τ₁ = 1000`, `σ = 4`), exact timers, horizon
    /// 60 000 ticks.
    ///
    /// The step-clock variant gets a minimum step delay of 2 — its timeouts
    /// are counted in own steps, so the step-rate variance must be bounded.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn fault_free(variant: OmegaVariant, n: usize) -> Self {
        assert!(n > 0, "a scenario needs at least one process");
        let min = if variant == OmegaVariant::StepClock {
            2
        } else {
            1
        };
        Scenario {
            name: format!("fault-free/{}/n{n}", variant.name()),
            variant,
            n,
            adversary: AdversarySpec::Random { min, max: 6 },
            awb: Some(AwbSpec {
                timely: ProcessId::new(0),
                tau1: 1_000,
                sigma: 4,
            }),
            timers: TimerSpec::Exact,
            crashes: Vec::new(),
            horizon: 60_000,
            sample_every: 100,
            stats_checkpoints: 16,
            seed: 42,
            expect_stabilization: true,
            san_latency: None,
            campaign: None,
        }
    }

    /// Which drivers admit this scenario at the default single-worker coop
    /// pool — the single source of truth the bench binaries' `--driver`
    /// dispatch and `--list` output both read. Pass a pool size through
    /// [`eligible_drivers_at`](Self::eligible_drivers_at) to see the
    /// worker-dependent coop cap.
    #[must_use]
    pub fn eligible_drivers(&self) -> DriverEligibility {
        self.eligible_drivers_at(1)
    }

    /// [`eligible_drivers`](Self::eligible_drivers) for a coop pool of
    /// `workers` threads: the coop cap is [`coop_max_n`]`(workers)`, so a
    /// scenario refused single-worker may be admitted on a larger pool
    /// (n = 256 needs workers ≥ 4). The other backends ignore the pool
    /// size.
    #[must_use]
    pub fn eligible_drivers_at(&self, workers: usize) -> DriverEligibility {
        let wall = self.expect_stabilization;
        // Campaign admission, clause by clause: wall-clock clusters can
        // cut/heal the register space (symmetric partitions, directed
        // cuts, and flap oscillations all act through the space's
        // visibility mask) and crash nodes at wall due times, but cannot
        // stretch service time (no simulated clock to stretch — except
        // the SAN block device, which serves a literal storm) and cannot
        // resurrect a crashed node (parked threads are gone for good).
        // Rather than silently dropping such clauses, the driver is ruled
        // ineligible and the suite skips it loudly. Non-electing
        // (`expect_stabilization = false`) scenarios are sim-only on top
        // of this: wall clusters detect stability, not its absence, and
        // the non-election witness needs the sampled timeline.
        let campaign = self.campaign.as_ref();
        let wall_campaign_ok = campaign.is_none_or(|c| !c.has_storm() && !c.has_recovery());
        let san_campaign_ok = campaign.is_none_or(|c| !c.has_recovery());
        DriverEligibility {
            sim: self.n <= SIM_MAX_N,
            threads: wall && self.n <= THREAD_MAX_N && wall_campaign_ok,
            san: wall && self.n <= THREAD_MAX_N && san_campaign_ok,
            coop: wall && self.n <= coop_max_n(workers) && wall_campaign_ok,
        }
    }

    /// Renames the scenario.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the scheduling regime.
    #[must_use]
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = spec;
        self
    }

    /// Imposes the AWB₁ envelope.
    #[must_use]
    pub fn awb(mut self, timely: ProcessId, tau1: u64, sigma: u64) -> Self {
        self.awb = Some(AwbSpec {
            timely,
            tau1,
            sigma,
        });
        self
    }

    /// Drops the AWB₁ envelope (and the stabilization expectation).
    #[must_use]
    pub fn without_awb(mut self) -> Self {
        self.awb = None;
        self.expect_stabilization = false;
        self
    }

    /// Sets the timer model.
    #[must_use]
    pub fn timers(mut self, spec: TimerSpec) -> Self {
        self.timers = spec;
        self
    }

    /// Adds a crash of `pid` at `tick`.
    #[must_use]
    pub fn crash_at(mut self, tick: u64, pid: ProcessId) -> Self {
        self.crashes.push(CrashSpec::At { tick, pid });
        self
    }

    /// Adds a crash of the then-current plurality leader at `tick`.
    #[must_use]
    pub fn crash_leader_at(mut self, tick: u64) -> Self {
        self.crashes.push(CrashSpec::LeaderAt { tick });
        self
    }

    /// Sets the horizon in ticks.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Sets the sampling cadence in ticks.
    #[must_use]
    pub fn sample_every(mut self, ticks: u64) -> Self {
        self.sample_every = ticks;
        self
    }

    /// Sets the number of statistics checkpoints.
    #[must_use]
    pub fn stats_checkpoints(mut self, count: usize) -> Self {
        self.stats_checkpoints = count;
        self
    }

    /// Sets the seed for all randomized choices.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the stabilization expectation (e.g. a scenario that keeps
    /// AWB₁ but breaks AWB₂ through its timers).
    #[must_use]
    pub fn expect_stabilization(mut self, expect: bool) -> Self {
        self.expect_stabilization = expect;
        self
    }

    /// Pins the disk latency model SAN-backed drivers must realize this
    /// scenario under (they also re-derive their pacing from it). Ignored
    /// by the simulator and the plain thread backend.
    #[must_use]
    pub fn san_latency(mut self, latency: SanLatency) -> Self {
        self.san_latency = Some(latency);
        self
    }

    /// Attaches a chaos [`Campaign`].
    ///
    /// # Panics
    ///
    /// Panics if the campaign fails [`Campaign::validate`] for this
    /// scenario's `n`.
    #[must_use]
    pub fn campaign(mut self, campaign: Campaign) -> Self {
        if let Err(msg) = campaign.validate(self.n) {
            panic!("scenario {}: {msg}", self.name);
        }
        self.campaign = Some(campaign);
        self
    }

    /// The crash plan in simulator terms.
    #[must_use]
    pub fn crash_plan(&self) -> CrashPlan {
        let mut plan = CrashPlan::none();
        for &crash in &self.crashes {
            plan = match crash {
                CrashSpec::At { tick, pid } => plan.with_crash_at(SimTime::from_ticks(tick), pid),
                CrashSpec::LeaderAt { tick } => {
                    plan.with_leader_crash_at(SimTime::from_ticks(tick))
                }
            };
        }
        plan
    }

    /// Instantiates the scheduling regime (with the AWB envelope applied,
    /// if any) as a simulator adversary.
    #[must_use]
    pub fn build_adversary(&self) -> Box<dyn Adversary> {
        let inner: Box<dyn Adversary> = match self.adversary {
            AdversarySpec::Synchronous { period } => Box::new(Synchronous::new(period)),
            AdversarySpec::RoundRobin { slot } => Box::new(RoundRobin::new(self.n, slot)),
            AdversarySpec::Random { min, max } => Box::new(SeededRandom::new(self.seed, min, max)),
            AdversarySpec::Bursty {
                fast,
                stall,
                burst_len,
            } => Box::new(Bursty::new(self.n, self.seed, fast, stall, burst_len)),
            AdversarySpec::PartitionedPhases {
                phase_len,
                fast,
                stall,
            } => Box::new(PartitionedPhases::new(self.n, phase_len, fast, stall)),
            AdversarySpec::GrowingBursts {
                victim,
                fast,
                burst_len,
                initial_stall,
                factor,
            } => Box::new(GrowingBursts::new(
                victim,
                fast,
                burst_len,
                initial_stall,
                factor,
            )),
            AdversarySpec::LeaderStaller { base, stall } => {
                Box::new(LeaderStaller::new(base, stall))
            }
        };
        match self.awb {
            Some(AwbSpec {
                timely,
                tau1,
                sigma,
            }) => Box::new(AwbEnvelope::new(
                inner,
                timely,
                SimTime::from_ticks(tau1),
                sigma,
            )),
            None => inner,
        }
    }

    /// Instantiates the timer model for process `pid` (jitter and chaos
    /// streams are derived from the scenario seed and the identity, so runs
    /// stay deterministic per spec).
    #[must_use]
    pub fn build_timer(&self, pid: ProcessId) -> Box<dyn TimerModel> {
        let per_process_seed = self
            .seed
            .wrapping_mul(0x0100_0000_01b3)
            .wrapping_add(pid.index() as u64 + 1);
        match self.timers {
            TimerSpec::Exact => Box::new(ExactTimer),
            TimerSpec::Affine { scale, offset } => Box::new(AffineTimer::new(scale, offset)),
            TimerSpec::Jittered { jitter } => {
                Box::new(JitteredTimer::new(per_process_seed, jitter))
            }
            TimerSpec::ChaoticThenExact {
                chaos_until,
                chaos_max,
            } => Box::new(ChaoticThen::new(
                SimTime::from_ticks(chaos_until),
                chaos_max,
                per_process_seed,
                ExactTimer,
            )),
            TimerSpec::JitterAffineMix {
                jitter,
                scale,
                offset,
            } => {
                if pid.index().is_multiple_of(2) {
                    Box::new(JitteredTimer::new(per_process_seed, jitter))
                } else {
                    Box::new(AffineTimer::new(scale, offset))
                }
            }
            TimerSpec::StuckLow { cap } => Box::new(StuckLowTimer::new(cap)),
        }
    }

    /// Applies the whole spec to a simulation over externally built actors.
    ///
    /// This is the escape hatch for experiments whose actors carry extra
    /// machinery (corrupted memories, consensus proposers, replicated
    /// logs): the scenario still owns scheduling, timers, crashes, horizon,
    /// and sampling, so the run's *environment* remains declarative.
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != self.n`.
    #[must_use]
    pub fn sim_builder(&self, actors: Vec<Box<dyn Actor>>) -> SimulationBuilder {
        assert_eq!(
            actors.len(),
            self.n,
            "scenario is specified for n = {}",
            self.n
        );
        let mut builder = Simulation::builder(actors)
            .adversary(self.build_adversary())
            .timers_from(|pid| self.build_timer(pid))
            .crash_plan(self.crash_plan())
            .horizon(self.horizon)
            .sample_every(self.sample_every)
            .stats_checkpoints(self.stats_checkpoints);
        if let Some(campaign) = &self.campaign {
            builder = builder.campaign(campaign.clone());
        }
        builder
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} n={} horizon={}]",
            self.name, self.variant, self.n, self.horizon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let s = Scenario::fault_free(OmegaVariant::Alg2, 5)
            .named("x")
            .adversary(AdversarySpec::Synchronous { period: 3 })
            .awb(ProcessId::new(2), 500, 8)
            .timers(TimerSpec::Jittered { jitter: 4 })
            .crash_at(10, ProcessId::new(1))
            .crash_leader_at(20)
            .horizon(1_000)
            .sample_every(10)
            .stats_checkpoints(4)
            .seed(7);
        assert_eq!(s.name, "x");
        assert_eq!(s.crashes.len(), 2);
        assert_eq!(s.crash_plan().directives().len(), 2);
        assert_eq!(s.awb.unwrap().sigma, 8);
        assert!(s.to_string().contains("alg2"));
    }

    #[test]
    fn stepclock_gets_bounded_step_variance() {
        let s = Scenario::fault_free(OmegaVariant::StepClock, 3);
        assert_eq!(s.adversary, AdversarySpec::Random { min: 2, max: 6 });
        let s = Scenario::fault_free(OmegaVariant::Alg1, 3);
        assert_eq!(s.adversary, AdversarySpec::Random { min: 1, max: 6 });
    }

    #[test]
    fn without_awb_clears_expectation() {
        let s = Scenario::fault_free(OmegaVariant::Alg1, 3).without_awb();
        assert!(s.awb.is_none());
        assert!(!s.expect_stabilization);
    }

    #[test]
    fn campaign_gates_driver_eligibility() {
        use omega_sim::chaos::ChaosPhase;
        let partition = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            from: 1_000,
            until: 2_000,
        });
        let base = Scenario::fault_free(OmegaVariant::Alg1, 5);
        assert_eq!(
            base.eligible_drivers().names(),
            vec!["sim", "threads", "san", "coop"]
        );
        // Partitions + crash waves + heals: every driver realizes them.
        let cut = base.clone().campaign(
            partition
                .clone()
                .phase(ChaosPhase::Wave {
                    crash: vec![ProcessId::new(4)],
                    recover: vec![],
                    at: 2_500,
                })
                .phase(ChaosPhase::Heal { at: 3_000 }),
        );
        assert_eq!(
            cut.eligible_drivers().names(),
            vec!["sim", "threads", "san", "coop"]
        );
        // Storms need a stretchable medium: only sim and the SAN device.
        let stormy = base
            .clone()
            .campaign(partition.clone().phase(ChaosPhase::Storm {
                factor: 4,
                jitter: 2,
                from: 100,
                until: 900,
            }));
        assert_eq!(stormy.eligible_drivers().names(), vec!["sim", "san"]);
        // Recovery is sim-only: wall clusters cannot resurrect a node.
        let lazarus = base.clone().campaign(partition.phase(ChaosPhase::Wave {
            crash: vec![],
            recover: vec![ProcessId::new(2)],
            at: 2_500,
        }));
        assert_eq!(lazarus.eligible_drivers().names(), vec!["sim"]);
        // Directed cuts and flaps act through the space's visibility mask:
        // every driver realizes them (the positive-control hostile
        // scenario must still elect on wall backends).
        let directed = base
            .clone()
            .campaign(Campaign::new().phase(ChaosPhase::Cut {
                blinded: vec![ProcessId::new(3), ProcessId::new(4)],
                hidden: vec![ProcessId::new(0), ProcessId::new(1)],
                from: 1_000,
                until: 40_000,
            }));
        assert_eq!(
            directed.eligible_drivers().names(),
            vec!["sim", "threads", "san", "coop"]
        );
        let flappy = base.campaign(Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            period: 2_000,
            from: 1_000,
            until: 9_000,
        }));
        assert_eq!(
            flappy.eligible_drivers().names(),
            vec!["sim", "threads", "san", "coop"]
        );
        // A non-electing expectation strips every wall driver regardless
        // of the campaign's clauses.
        let hostile = flappy.expect_stabilization(false);
        assert_eq!(hostile.eligible_drivers().names(), vec!["sim"]);
    }

    #[test]
    fn coop_admission_cap_scales_with_the_worker_pool() {
        assert_eq!(coop_max_n(1), 128);
        assert_eq!(coop_max_n(2), 128, "a small pool keeps the old ceiling");
        assert_eq!(coop_max_n(4), 256);
        assert_eq!(coop_max_n(8), 512);
        assert_eq!(coop_max_n(16), 1024);

        let big = Scenario::fault_free(OmegaVariant::Alg1, 256);
        assert!(
            !big.eligible_drivers().coop,
            "n = 256 stays refused at the single-worker default"
        );
        assert!(
            !big.eligible_drivers_at(2).coop,
            "two workers do not reach the n = 256 budget"
        );
        assert!(
            big.eligible_drivers_at(4).coop,
            "four workers admit n = 256"
        );
        assert!(
            !big.eligible_drivers_at(4).threads && !big.eligible_drivers_at(4).san,
            "the per-node-thread backends ignore the pool size"
        );
        let huge = Scenario::fault_free(OmegaVariant::Alg1, 1024);
        assert!(!huge.eligible_drivers_at(8).coop);
        assert!(huge.eligible_drivers_at(16).coop);
        // Past SIM_MAX_N the coop pool is the *only* backend left: the
        // sim's literal realization is memory-cubic in n.
        assert!(big.eligible_drivers().sim, "n = 256 is the sim's ceiling");
        assert!(!huge.eligible_drivers().sim);
        assert!(
            !Scenario::fault_free(OmegaVariant::Alg1, 512)
                .eligible_drivers_at(16)
                .sim,
            "the sim cap does not scale with the coop pool"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn campaign_builder_validates_against_n() {
        use omega_sim::chaos::ChaosPhase;
        let _ = Scenario::fault_free(OmegaVariant::Alg1, 3).campaign(Campaign::new().phase(
            ChaosPhase::Wave {
                crash: vec![ProcessId::new(7)],
                recover: vec![],
                at: 1,
            },
        ));
    }

    #[test]
    fn every_adversary_spec_builds() {
        let specs = [
            AdversarySpec::Synchronous { period: 2 },
            AdversarySpec::RoundRobin { slot: 2 },
            AdversarySpec::Random { min: 1, max: 5 },
            AdversarySpec::Bursty {
                fast: 2,
                stall: 100,
                burst_len: 4,
            },
            AdversarySpec::PartitionedPhases {
                phase_len: 100,
                fast: 2,
                stall: 50,
            },
            AdversarySpec::GrowingBursts {
                victim: ProcessId::new(0),
                fast: 2,
                burst_len: 3,
                initial_stall: 10,
                factor: 2,
            },
            AdversarySpec::LeaderStaller {
                base: 2,
                stall: 100,
            },
        ];
        for spec in specs {
            let s = Scenario::fault_free(OmegaVariant::Alg1, 4).adversary(spec.clone());
            let mut adversary = s.build_adversary();
            let d = adversary.next_step_delay(ProcessId::new(1), SimTime::ZERO);
            assert!(d >= 1, "{spec:?} produced zero delay");
        }
    }

    #[test]
    fn every_timer_spec_builds() {
        let specs = [
            TimerSpec::Exact,
            TimerSpec::Affine {
                scale: 2,
                offset: 1,
            },
            TimerSpec::Jittered { jitter: 5 },
            TimerSpec::ChaoticThenExact {
                chaos_until: 100,
                chaos_max: 9,
            },
            TimerSpec::JitterAffineMix {
                jitter: 5,
                scale: 2,
                offset: 3,
            },
            TimerSpec::StuckLow { cap: 4 },
        ];
        for spec in specs {
            let s = Scenario::fault_free(OmegaVariant::Alg1, 4).timers(spec);
            for i in 0..4 {
                let mut timer = s.build_timer(ProcessId::new(i));
                assert!(timer.duration(SimTime::from_ticks(1_000), 10) >= 1);
            }
        }
    }
}
