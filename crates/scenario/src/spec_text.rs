//! A line-oriented text serialization of [`Scenario`] — the on-disk form
//! of fuzz reproducers and the `meta` payload of recorded traces.
//!
//! The format is deliberately diff- and human-friendly: one `key value…`
//! line per field, `#` comments, and **default omission** — a line is only
//! emitted when the field differs from the [`Scenario::fault_free`]
//! baseline for the spec's variant and size. A freshly shrunk reproducer
//! is therefore a handful of lines, each one a fact the violation needs:
//!
//! ```text
//! scenario fuzz-regression/4fd1a2b3c4d5
//! variant alg1-fig2
//! n 4
//! crash at 9000 1
//! ```
//!
//! Round-trip: [`from_spec_text`]`(`[`to_spec_text`]`(s))` reproduces every
//! field of `s` (scenario equality is asserted field-by-field in the
//! tests, and the fuzz corpus is stored exclusively in this format).

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_runtime::san::SanLatency;
use omega_sim::chaos::{Campaign, ChaosPhase};

use crate::{AdversarySpec, AwbSpec, CrashSpec, Scenario, TimerSpec};

/// A malformed spec text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec parse error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

impl SpecError {
    /// Prefixes the message with the 1-based line the error came from.
    fn at(self, line: usize) -> SpecError {
        SpecError(format!("line {line}: {}", self.0))
    }
}

/// Serializes a scenario, omitting every field equal to its
/// [`Scenario::fault_free`] default.
#[must_use]
pub fn to_spec_text(s: &Scenario) -> String {
    use std::fmt::Write as _;
    let base = Scenario::fault_free(s.variant, s.n);
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", s.name);
    let _ = writeln!(out, "variant {}", s.variant.name());
    let _ = writeln!(out, "n {}", s.n);
    if s.adversary != base.adversary {
        let _ = writeln!(out, "adversary {}", adversary_text(&s.adversary));
    }
    if s.awb != base.awb {
        match s.awb {
            Some(AwbSpec {
                timely,
                tau1,
                sigma,
            }) => {
                let _ = writeln!(out, "awb {} {tau1} {sigma}", timely.index());
            }
            None => {
                let _ = writeln!(out, "awb none");
            }
        }
    }
    if s.timers != base.timers {
        let _ = writeln!(out, "timers {}", timer_text(&s.timers));
    }
    for crash in &s.crashes {
        match *crash {
            CrashSpec::At { tick, pid } => {
                let _ = writeln!(out, "crash at {tick} {}", pid.index());
            }
            CrashSpec::LeaderAt { tick } => {
                let _ = writeln!(out, "crash leader {tick}");
            }
        }
    }
    if let Some(campaign) = &s.campaign {
        for phase in &campaign.phases {
            match phase {
                ChaosPhase::Partition {
                    groups,
                    from,
                    until,
                } => {
                    let _ = writeln!(
                        out,
                        "campaign partition {} {from} {until}",
                        groups_text(groups)
                    );
                }
                ChaosPhase::Storm {
                    factor,
                    jitter,
                    from,
                    until,
                } => {
                    let _ = writeln!(out, "campaign storm {factor} {jitter} {from} {until}");
                }
                ChaosPhase::Wave { crash, recover, at } => {
                    let _ = writeln!(
                        out,
                        "campaign wave {} {} {at}",
                        pids_text(crash),
                        pids_text(recover)
                    );
                }
                ChaosPhase::Heal { at } => {
                    let _ = writeln!(out, "campaign heal {at}");
                }
                ChaosPhase::Cut {
                    blinded,
                    hidden,
                    from,
                    until,
                } => {
                    let _ = writeln!(
                        out,
                        "campaign cut {}>{} {from} {until}",
                        pids_text(blinded),
                        pids_text(hidden)
                    );
                }
                ChaosPhase::Flap {
                    groups,
                    period,
                    from,
                    until,
                } => {
                    let _ = writeln!(
                        out,
                        "campaign flap {} {period} {from} {until}",
                        groups_text(groups)
                    );
                }
            }
        }
    }
    if s.horizon != base.horizon {
        let _ = writeln!(out, "horizon {}", s.horizon);
    }
    if s.sample_every != base.sample_every {
        let _ = writeln!(out, "sample-every {}", s.sample_every);
    }
    if s.stats_checkpoints != base.stats_checkpoints {
        let _ = writeln!(out, "checkpoints {}", s.stats_checkpoints);
    }
    if s.seed != base.seed {
        let _ = writeln!(out, "seed {}", s.seed);
    }
    // `expect` defaults to "AWB present": only a spec that overrides that
    // derivation (e.g. keeps AWB₁ but breaks AWB₂ via timers) gets a line.
    if s.expect_stabilization != s.awb.is_some() {
        let _ = writeln!(out, "expect {}", s.expect_stabilization);
    }
    if let Some(latency) = s.san_latency {
        let _ = writeln!(
            out,
            "san-latency {} {}",
            latency.base.as_micros(),
            latency.jitter.as_micros()
        );
    }
    out
}

fn adversary_text(spec: &AdversarySpec) -> String {
    match *spec {
        AdversarySpec::Synchronous { period } => format!("sync {period}"),
        AdversarySpec::RoundRobin { slot } => format!("roundrobin {slot}"),
        AdversarySpec::Random { min, max } => format!("random {min} {max}"),
        AdversarySpec::Bursty {
            fast,
            stall,
            burst_len,
        } => format!("bursty {fast} {stall} {burst_len}"),
        AdversarySpec::PartitionedPhases {
            phase_len,
            fast,
            stall,
        } => format!("phases {phase_len} {fast} {stall}"),
        AdversarySpec::GrowingBursts {
            victim,
            fast,
            burst_len,
            initial_stall,
            factor,
        } => format!(
            "growing {} {fast} {burst_len} {initial_stall} {factor}",
            victim.index()
        ),
        AdversarySpec::LeaderStaller { base, stall } => format!("staller {base} {stall}"),
    }
}

fn timer_text(spec: &TimerSpec) -> String {
    match *spec {
        TimerSpec::Exact => "exact".to_string(),
        TimerSpec::Affine { scale, offset } => format!("affine {scale} {offset}"),
        TimerSpec::Jittered { jitter } => format!("jittered {jitter}"),
        TimerSpec::ChaoticThenExact {
            chaos_until,
            chaos_max,
        } => format!("chaotic {chaos_until} {chaos_max}"),
        TimerSpec::JitterAffineMix {
            jitter,
            scale,
            offset,
        } => format!("mix {jitter} {scale} {offset}"),
        TimerSpec::StuckLow { cap } => format!("stucklow {cap}"),
    }
}

/// Parses a spec text back into a [`Scenario`].
///
/// `variant` and `n` are required; everything else falls back to the
/// [`Scenario::fault_free`] defaults exactly as [`to_spec_text`] omits
/// them. Blank lines and `#` comments are ignored.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the offending line (by number and
/// content) on any unknown key, malformed value, or missing required
/// field.
pub fn from_spec_text(text: &str) -> Result<Scenario, SpecError> {
    // Pass 1: the base scenario needs `variant` and `n` up front (the
    // defaults every other line is resolved against depend on them).
    let mut variant = None;
    let mut n = None;
    for (lineno, line) in lines(text) {
        let (key, rest) = split_key(line);
        match key {
            "variant" => variant = Some(parse_variant(rest).map_err(|e| e.at(lineno))?),
            "n" => n = Some(parse_num::<usize>(rest, "n").map_err(|e| e.at(lineno))?),
            _ => {}
        }
    }
    let variant = variant.ok_or_else(|| err("missing required `variant` line"))?;
    let n = n.ok_or_else(|| err("missing required `n` line"))?;
    if n == 0 {
        return Err(err("n must be positive"));
    }
    let mut s = Scenario::fault_free(variant, n);
    s.crashes.clear();

    // Pass 2: apply the overrides.
    let mut explicit_expect = None;
    for (lineno, line) in lines(text) {
        apply_line(&mut s, &mut explicit_expect, line).map_err(|e| e.at(lineno))?;
    }
    s.expect_stabilization = explicit_expect.unwrap_or(s.awb.is_some());
    if let Some(campaign) = &s.campaign {
        campaign.validate(n).map_err(err)?;
    }
    Ok(s)
}

fn apply_line(
    s: &mut Scenario,
    explicit_expect: &mut Option<bool>,
    line: &str,
) -> Result<(), SpecError> {
    let (key, rest) = split_key(line);
    match key {
        "variant" | "n" => {}
        "scenario" => s.name = rest.trim().to_string(),
        "adversary" => s.adversary = parse_adversary(rest)?,
        "awb" => {
            if rest.trim() == "none" {
                s.awb = None;
            } else {
                let f = fields(rest, 3, "awb")?;
                s.awb = Some(AwbSpec {
                    timely: parse_pid(f[0])?,
                    tau1: parse_num(f[1], "awb tau1")?,
                    sigma: parse_num(f[2], "awb sigma")?,
                });
            }
        }
        "timers" => s.timers = parse_timers(rest)?,
        "crash" => s.crashes.push(parse_crash(rest)?),
        "campaign" => {
            let phase = parse_campaign_phase(rest)?;
            s.campaign
                .get_or_insert_with(Campaign::new)
                .phases
                .push(phase);
        }
        "horizon" => s.horizon = parse_num(rest, "horizon")?,
        "sample-every" => s.sample_every = parse_num(rest, "sample-every")?,
        "checkpoints" => s.stats_checkpoints = parse_num(rest, "checkpoints")?,
        "seed" => s.seed = parse_num(rest, "seed")?,
        "expect" => {
            *explicit_expect = Some(match rest.trim() {
                "true" => true,
                "false" => false,
                other => return Err(err(format!("expect must be true/false, got `{other}`"))),
            });
        }
        "san-latency" => {
            let f = fields(rest, 2, "san-latency")?;
            s.san_latency = Some(SanLatency {
                base: std::time::Duration::from_micros(parse_num(f[0], "san base")?),
                jitter: std::time::Duration::from_micros(parse_num(f[1], "san jitter")?),
            });
        }
        other => return Err(err(format!("unknown spec key `{other}`"))),
    }
    Ok(())
}

fn lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

fn split_key(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((key, rest)) => (key, rest.trim()),
        None => (line, ""),
    }
}

fn fields<'a>(rest: &'a str, want: usize, what: &str) -> Result<Vec<&'a str>, SpecError> {
    let f: Vec<&str> = rest.split_whitespace().collect();
    if f.len() != want {
        return Err(err(format!(
            "`{what}` needs {want} fields, got {} in `{rest}`",
            f.len()
        )));
    }
    Ok(f)
}

fn parse_num<T: std::str::FromStr>(field: &str, what: &str) -> Result<T, SpecError> {
    field
        .trim()
        .parse()
        .map_err(|_| err(format!("bad {what} value `{field}`")))
}

fn parse_pid(field: &str) -> Result<ProcessId, SpecError> {
    Ok(ProcessId::new(parse_num::<usize>(field, "process id")?))
}

fn parse_variant(rest: &str) -> Result<OmegaVariant, SpecError> {
    OmegaVariant::all()
        .into_iter()
        .find(|v| v.name() == rest.trim())
        .ok_or_else(|| err(format!("unknown variant `{}`", rest.trim())))
}

fn parse_adversary(rest: &str) -> Result<AdversarySpec, SpecError> {
    let (kind, rest) = split_key(rest);
    Ok(match kind {
        "sync" => AdversarySpec::Synchronous {
            period: parse_num(rest, "sync period")?,
        },
        "roundrobin" => AdversarySpec::RoundRobin {
            slot: parse_num(rest, "roundrobin slot")?,
        },
        "random" => {
            let f = fields(rest, 2, "adversary random")?;
            AdversarySpec::Random {
                min: parse_num(f[0], "random min")?,
                max: parse_num(f[1], "random max")?,
            }
        }
        "bursty" => {
            let f = fields(rest, 3, "adversary bursty")?;
            AdversarySpec::Bursty {
                fast: parse_num(f[0], "bursty fast")?,
                stall: parse_num(f[1], "bursty stall")?,
                burst_len: parse_num(f[2], "bursty burst_len")?,
            }
        }
        "phases" => {
            let f = fields(rest, 3, "adversary phases")?;
            AdversarySpec::PartitionedPhases {
                phase_len: parse_num(f[0], "phases phase_len")?,
                fast: parse_num(f[1], "phases fast")?,
                stall: parse_num(f[2], "phases stall")?,
            }
        }
        "growing" => {
            let f = fields(rest, 5, "adversary growing")?;
            AdversarySpec::GrowingBursts {
                victim: parse_pid(f[0])?,
                fast: parse_num(f[1], "growing fast")?,
                burst_len: parse_num(f[2], "growing burst_len")?,
                initial_stall: parse_num(f[3], "growing initial_stall")?,
                factor: parse_num(f[4], "growing factor")?,
            }
        }
        "staller" => {
            let f = fields(rest, 2, "adversary staller")?;
            AdversarySpec::LeaderStaller {
                base: parse_num(f[0], "staller base")?,
                stall: parse_num(f[1], "staller stall")?,
            }
        }
        other => return Err(err(format!("unknown adversary `{other}`"))),
    })
}

fn parse_timers(rest: &str) -> Result<TimerSpec, SpecError> {
    let (kind, rest) = split_key(rest);
    Ok(match kind {
        "exact" => TimerSpec::Exact,
        "affine" => {
            let f = fields(rest, 2, "timers affine")?;
            TimerSpec::Affine {
                scale: parse_num(f[0], "affine scale")?,
                offset: parse_num(f[1], "affine offset")?,
            }
        }
        "jittered" => TimerSpec::Jittered {
            jitter: parse_num(rest, "jittered jitter")?,
        },
        "chaotic" => {
            let f = fields(rest, 2, "timers chaotic")?;
            TimerSpec::ChaoticThenExact {
                chaos_until: parse_num(f[0], "chaotic until")?,
                chaos_max: parse_num(f[1], "chaotic max")?,
            }
        }
        "mix" => {
            let f = fields(rest, 3, "timers mix")?;
            TimerSpec::JitterAffineMix {
                jitter: parse_num(f[0], "mix jitter")?,
                scale: parse_num(f[1], "mix scale")?,
                offset: parse_num(f[2], "mix offset")?,
            }
        }
        "stucklow" => TimerSpec::StuckLow {
            cap: parse_num(rest, "stucklow cap")?,
        },
        other => return Err(err(format!("unknown timer model `{other}`"))),
    })
}

fn pids_text(pids: &[ProcessId]) -> String {
    if pids.is_empty() {
        "-".to_string()
    } else {
        pids.iter()
            .map(|p| p.index().to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn groups_text(groups: &[Vec<ProcessId>]) -> String {
    if groups.is_empty() {
        "-".to_string()
    } else {
        groups
            .iter()
            .map(|g| pids_text(g))
            .collect::<Vec<_>>()
            .join("|")
    }
}

fn parse_pid_list(field: &str) -> Result<Vec<ProcessId>, SpecError> {
    if field == "-" {
        return Ok(Vec::new());
    }
    field.split(',').map(parse_pid).collect()
}

fn parse_groups(field: &str) -> Result<Vec<Vec<ProcessId>>, SpecError> {
    if field == "-" {
        return Ok(Vec::new());
    }
    field.split('|').map(parse_pid_list).collect()
}

fn parse_campaign_phase(rest: &str) -> Result<ChaosPhase, SpecError> {
    let (kind, rest) = split_key(rest);
    Ok(match kind {
        "partition" => {
            let f = fields(rest, 3, "campaign partition")?;
            ChaosPhase::Partition {
                groups: parse_groups(f[0])?,
                from: parse_num(f[1], "partition from")?,
                until: parse_num(f[2], "partition until")?,
            }
        }
        "storm" => {
            let f = fields(rest, 4, "campaign storm")?;
            ChaosPhase::Storm {
                factor: parse_num(f[0], "storm factor")?,
                jitter: parse_num(f[1], "storm jitter")?,
                from: parse_num(f[2], "storm from")?,
                until: parse_num(f[3], "storm until")?,
            }
        }
        "wave" => {
            let f = fields(rest, 3, "campaign wave")?;
            ChaosPhase::Wave {
                crash: parse_pid_list(f[0])?,
                recover: parse_pid_list(f[1])?,
                at: parse_num(f[2], "wave at")?,
            }
        }
        "heal" => ChaosPhase::Heal {
            at: parse_num(rest, "heal at")?,
        },
        "cut" => {
            let f = fields(rest, 3, "campaign cut")?;
            let (blinded, hidden) = f[0]
                .split_once('>')
                .ok_or_else(|| err("cut sides must be `blinded>hidden`".to_string()))?;
            ChaosPhase::Cut {
                blinded: parse_pid_list(blinded)?,
                hidden: parse_pid_list(hidden)?,
                from: parse_num(f[1], "cut from")?,
                until: parse_num(f[2], "cut until")?,
            }
        }
        "flap" => {
            let f = fields(rest, 4, "campaign flap")?;
            ChaosPhase::Flap {
                groups: parse_groups(f[0])?,
                period: parse_num(f[1], "flap period")?,
                from: parse_num(f[2], "flap from")?,
                until: parse_num(f[3], "flap until")?,
            }
        }
        other => return Err(err(format!("unknown campaign phase `{other}`"))),
    })
}

fn parse_crash(rest: &str) -> Result<CrashSpec, SpecError> {
    let (kind, rest) = split_key(rest);
    Ok(match kind {
        "at" => {
            let f = fields(rest, 2, "crash at")?;
            CrashSpec::At {
                tick: parse_num(f[0], "crash tick")?,
                pid: parse_pid(f[1])?,
            }
        }
        "leader" => CrashSpec::LeaderAt {
            tick: parse_num(rest, "crash tick")?,
        },
        other => return Err(err(format!("unknown crash kind `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn assert_same(a: &Scenario, b: &Scenario) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.n, b.n);
        assert_eq!(a.adversary, b.adversary);
        assert_eq!(a.awb, b.awb);
        assert_eq!(a.timers, b.timers);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.horizon, b.horizon);
        assert_eq!(a.sample_every, b.sample_every);
        assert_eq!(a.stats_checkpoints, b.stats_checkpoints);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.expect_stabilization, b.expect_stabilization);
        assert_eq!(a.san_latency, b.san_latency);
        assert_eq!(a.campaign, b.campaign);
    }

    #[test]
    fn every_registry_scenario_round_trips() {
        for scenario in registry::all() {
            let text = to_spec_text(&scenario);
            let parsed = from_spec_text(&text).unwrap_or_else(|e| {
                panic!("{}: {e}\n{text}", scenario.name);
            });
            assert_same(&scenario, &parsed);
            // Serialization is a fixpoint.
            assert_eq!(to_spec_text(&parsed), text);
        }
    }

    #[test]
    fn fault_free_default_is_three_lines() {
        let s = Scenario::fault_free(OmegaVariant::Alg1, 4);
        let text = to_spec_text(&s);
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("variant alg1-fig2"));
        assert!(text.contains("n 4"));
    }

    #[test]
    fn stepclock_default_adversary_is_omitted() {
        // The fault-free default adversary depends on the variant; the
        // serializer must compare against the right baseline.
        let s = Scenario::fault_free(OmegaVariant::StepClock, 3);
        let text = to_spec_text(&s);
        assert!(!text.contains("adversary"), "{text}");
        let parsed = from_spec_text(&text).unwrap();
        assert_eq!(parsed.adversary, AdversarySpec::Random { min: 2, max: 6 });
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a reproducer\n\nscenario x\nvariant alg2-fig5-bounded\n\nn 3\n# done\n";
        let s = from_spec_text(text).unwrap();
        assert_eq!(s.name, "x");
        assert_eq!(s.variant, OmegaVariant::Alg2);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn awb_none_clears_expectation() {
        let s = from_spec_text("variant alg1-fig2\nn 3\nawb none\n").unwrap();
        assert!(s.awb.is_none());
        assert!(!s.expect_stabilization);
        // ... unless overridden explicitly.
        let s = from_spec_text("variant alg1-fig2\nn 3\nawb none\nexpect true\n").unwrap();
        assert!(s.expect_stabilization);
    }

    #[test]
    fn every_campaign_stanza_round_trips() {
        let p = ProcessId::new;
        let campaign = Campaign::new()
            .phase(ChaosPhase::Partition {
                groups: vec![vec![p(0), p(1)], vec![p(2), p(3), p(4)]],
                from: 1_000,
                until: 4_000,
            })
            .phase(ChaosPhase::Storm {
                factor: 5,
                jitter: 3,
                from: 4_500,
                until: 6_000,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![p(1)],
                recover: vec![],
                at: 6_500,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![],
                recover: vec![p(1)],
                at: 7_000,
            })
            .phase(ChaosPhase::Heal { at: 7_500 })
            .phase(ChaosPhase::Cut {
                blinded: vec![p(0), p(1)],
                hidden: vec![p(2), p(3)],
                from: 8_000,
                until: 9_000,
            })
            .phase(ChaosPhase::Flap {
                groups: vec![vec![p(0), p(1)], vec![p(2), p(3), p(4)]],
                period: 400,
                from: 10_000,
                until: 14_000,
            });
        let s = Scenario::fault_free(OmegaVariant::Alg1, 5)
            .campaign(campaign)
            .horizon(20_000);
        let text = to_spec_text(&s);
        assert!(
            text.contains("campaign partition 0,1|2,3,4 1000 4000"),
            "{text}"
        );
        assert!(text.contains("campaign storm 5 3 4500 6000"), "{text}");
        assert!(text.contains("campaign wave 1 - 6500"), "{text}");
        assert!(text.contains("campaign wave - 1 7000"), "{text}");
        assert!(text.contains("campaign heal 7500"), "{text}");
        assert!(text.contains("campaign cut 0,1>2,3 8000 9000"), "{text}");
        assert!(
            text.contains("campaign flap 0,1|2,3,4 400 10000 14000"),
            "{text}"
        );
        let parsed = from_spec_text(&text).unwrap();
        assert_same(&s, &parsed);
        assert_eq!(to_spec_text(&parsed), text);
    }

    #[test]
    fn parse_errors_name_the_offending_line() {
        let text = "scenario x\nvariant alg1-fig2\nn 3\n\n# comment\ncrash at x 0\n";
        let e = from_spec_text(text).unwrap_err().to_string();
        assert!(e.contains("line 6"), "{e}");
        assert!(e.contains("bad crash tick"), "{e}");
        // An invalid campaign (pid out of range) is caught at parse time.
        let oob = "variant alg1-fig2\nn 3\ncampaign wave 7 - 100\n";
        let e = from_spec_text(oob).unwrap_err().to_string();
        assert!(e.contains("out of range"), "{e}");
        // Hostile stanzas carry line numbers like every other key.
        let cut = "variant alg1-fig2\nn 3\n# hostile\ncampaign cut 0,1 100 900\n";
        let e = from_spec_text(cut).unwrap_err().to_string();
        assert!(e.contains("line 4"), "{e}");
        assert!(e.contains("blinded>hidden"), "{e}");
        let flap = "variant alg1-fig2\nn 3\n\ncampaign flap 0|1 x 100 900\n";
        let e = from_spec_text(flap).unwrap_err().to_string();
        assert!(e.contains("line 4"), "{e}");
        assert!(e.contains("bad flap period"), "{e}");
    }

    #[test]
    fn malformed_texts_are_rejected_with_context() {
        for (text, needle) in [
            ("n 3\n", "variant"),
            ("variant alg1-fig2\n", "`n`"),
            ("variant nope\nn 3\n", "unknown variant"),
            ("variant alg1-fig2\nn 0\n", "positive"),
            ("variant alg1-fig2\nn 3\nfrobnicate 7\n", "unknown spec key"),
            ("variant alg1-fig2\nn 3\nadversary random 1\n", "2 fields"),
            ("variant alg1-fig2\nn 3\ntimers warp 4\n", "unknown timer"),
            ("variant alg1-fig2\nn 3\ncrash at x 0\n", "bad crash tick"),
            ("variant alg1-fig2\nn 3\nexpect maybe\n", "true/false"),
            (
                "variant alg1-fig2\nn 3\ncampaign quake 5\n",
                "unknown campaign phase",
            ),
            ("variant alg1-fig2\nn 3\ncampaign storm 2 1 5\n", "4 fields"),
            (
                "variant alg1-fig2\nn 3\ncampaign partition 0|0 5 9\n",
                "two groups",
            ),
            (
                "variant alg1-fig2\nn 3\ncampaign cut 0>0 5 9\n",
                "both sides",
            ),
            ("variant alg1-fig2\nn 3\ncampaign cut 0>1 5\n", "3 fields"),
            (
                "variant alg1-fig2\nn 3\ncampaign flap 0|1 0 5 9\n",
                "period",
            ),
            (
                "variant alg1-fig2\nn 3\ncampaign flap 0|7 4 5 9\n",
                "out of range",
            ),
        ] {
            let e = from_spec_text(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` should fail mentioning `{needle}`, got: {e}"
            );
        }
    }
}
