//! The deterministic-simulator backend.

use omega_registers::MemorySpace;
use omega_sim::{Actor, RunReport, Trace};

use crate::{ChaosOutcome, Driver, NonElectionWitness, Outcome, Scenario, TailActivity};

/// Realizes a [`Scenario`] on the deterministic discrete-event simulator
/// (`omega_sim`): ticks are virtual time, the adversary/timer specs are
/// enforced literally, and the whole run is reproducible from the scenario
/// seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimDriver;

impl SimDriver {
    /// Runs a scenario over externally built actors sharing `space`.
    ///
    /// The escape hatch for experiments that need custom actors (corrupted
    /// memories, co-located consensus proposers) while keeping the
    /// environment — schedule, timers, crashes, horizon — declarative.
    ///
    /// # Panics
    ///
    /// Panics if `actors.len() != scenario.n`.
    #[must_use]
    pub fn run_actors(
        &self,
        scenario: &Scenario,
        actors: Vec<Box<dyn Actor>>,
        space: &MemorySpace,
    ) -> Outcome {
        let report = scenario.sim_builder(actors).memory(space.clone()).run();
        outcome_of(scenario, &report, space)
    }

    /// Runs a scenario while recording its complete event sequence.
    ///
    /// The returned [`Trace`] carries the scenario's spec text as `meta`,
    /// so writing `trace.encode()` to a file yields a self-contained
    /// reproducer: [`run_replay`](Self::run_replay) on the decoded trace
    /// (against a scenario parsed back from `meta`) reproduces the run
    /// byte-identically — compare via [`Outcome::fingerprint`].
    #[must_use]
    pub fn run_traced(&self, scenario: &Scenario) -> (Outcome, Trace) {
        let sys = scenario.variant.build(scenario.n);
        let space = sys.space.clone();
        let report = scenario
            .sim_builder(sys.actors)
            .memory(space.clone())
            .record_trace()
            .run();
        let mut trace = report.recording.clone().expect("record_trace was enabled");
        trace.meta = crate::spec_text::to_spec_text(scenario);
        (outcome_of(scenario, &report, &space), trace)
    }

    /// Replays a recorded trace under the scenario that produced it: the
    /// event sequence comes from the trace, everything else (actors,
    /// memory, sampling) is rebuilt from the spec.
    ///
    /// # Panics
    ///
    /// Panics if the trace's process count or horizon do not match the
    /// scenario's.
    #[must_use]
    pub fn run_replay(&self, scenario: &Scenario, trace: &Trace) -> Outcome {
        let sys = scenario.variant.build(scenario.n);
        let space = sys.space.clone();
        let report = scenario
            .sim_builder(sys.actors)
            .memory(space.clone())
            .run_replay(trace);
        outcome_of(scenario, &report, &space)
    }
}

impl Driver for SimDriver {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        let sys = scenario.variant.build(scenario.n);
        let space = sys.space.clone();
        self.run_actors(scenario, sys.actors, &space)
    }
}

fn outcome_of(scenario: &Scenario, report: &RunReport, space: &MemorySpace) -> Outcome {
    let stabilization = report.stabilization();
    let stats = space.stats();
    let n = scenario.n;
    let chaos = scenario.campaign.as_ref().map(|_| {
        let c = report.chaos;
        ChaosOutcome {
            partitions: c.partitions,
            partition_ticks: c.partition_ticks,
            storm_ticks: c.storm_ticks,
            wave_crashes: c.wave_crashes,
            wave_recoveries: c.wave_recoveries,
            heal_to_stable_ticks: match (c.last_heal_at, stabilization) {
                (Some(heal), Some(s)) if s.stable_from.ticks() >= heal => {
                    Some(s.stable_from.ticks() - heal)
                }
                _ => None,
            },
        }
    });
    let tail = report.windowed.tail(0.25).map(|w| TailActivity {
        writers: w.stats.writer_set(),
        readers: w.stats.reader_set(),
        written_registers: w.stats.written_registers().len(),
        writes_per_1k: w.stats.total_writes() as f64 * 1000.0 / (w.end - w.start).max(1) as f64,
        span_ticks: w.end - w.start,
    });
    // The non-election witness: only meaningful (and only gated) when the
    // spec runs a campaign it expects NOT to stabilize under — the hostile
    // window is the campaign's disruption span.
    let witness = if scenario.expect_stabilization {
        None
    } else {
        scenario
            .campaign
            .as_ref()
            .and_then(|c| c.disruption_window(scenario.horizon))
            .map(|(from, until)| {
                NonElectionWitness::from_timeline(from, until, report.timeline.samples())
            })
    };
    let grown_in_tail = match report.footprints.len() {
        0 | 1 => Vec::new(),
        len => {
            let mid = &report.footprints[len * 3 / 4].1;
            let last = &report.footprints[len - 1].1;
            last.grown_since(mid)
                .into_iter()
                .map(String::from)
                .collect()
        }
    };
    Outcome {
        backend: "sim",
        scenario: scenario.name.clone(),
        variant: scenario.variant,
        n,
        elected: stabilization.map(|s| s.leader),
        stabilized: stabilization.is_some(),
        stabilization_ticks: stabilization.map(|s| s.stable_from.ticks()),
        horizon_ticks: scenario.horizon,
        crashed: report.crashed.clone(),
        correct: report.correct.clone(),
        steps: report.steps_taken.clone(),
        estimate_changes: omega_registers::ProcessId::all(n)
            .map(|p| report.timeline.changes_of(p))
            .collect(),
        reads: omega_registers::ProcessId::all(n)
            .map(|p| stats.reads_of(p))
            .collect(),
        writes: omega_registers::ProcessId::all(n)
            .map(|p| stats.writes_of(p))
            .collect(),
        reads_skipped: stats.scan().reads_skipped,
        shard_passes: stats.scan().shard_passes,
        elapsed_ms: report.wall.elapsed_ms(),
        events_per_sec: report.events_per_sec(),
        register_count: space.register_count(),
        hwm_bits: space.footprint().total_hwm_bits(),
        grown_in_tail,
        tail,
        san: None,
        chaos,
        witness,
        workers: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaVariant;
    use omega_registers::ProcessId;

    #[test]
    fn fault_free_scenario_elects_and_measures() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4).horizon(30_000);
        let outcome = SimDriver.run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.backend, "sim");
        assert_eq!(outcome.n, 4);
        assert_eq!(outcome.register_count, 4 + 4 + 16);
        assert!(outcome.steps.iter().all(|&s| s > 0));
        assert!(outcome.total_writes() > 0);
        assert!(outcome.total_reads() > 0);
        // Theorem 3 shape: single tail writer into a single register.
        let tail = outcome.tail.as_ref().expect("stats checkpointed");
        assert_eq!(tail.writers.len(), 1);
        assert_eq!(tail.written_registers, 1);
        assert!(outcome.summary().contains("stable from"));
    }

    #[test]
    fn leader_crash_is_applied_and_reported() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
            .crash_leader_at(15_000)
            .horizon(60_000);
        let outcome = SimDriver.run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.crashed.len(), 1);
        assert!(outcome.stabilization_ticks.unwrap() > 15_000);
        assert!(!outcome.crashed.contains(outcome.elected.unwrap()));
    }

    #[test]
    fn same_scenario_same_outcome() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg2, 3).horizon(20_000);
        let a = SimDriver.run(&scenario);
        let b = SimDriver.run(&scenario);
        assert_eq!(a.elected, b.elected);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.stabilization_ticks, b.stabilization_ticks);
    }

    #[test]
    fn awb_violating_scenario_does_not_stabilize() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
            .without_awb()
            .adversary(crate::AdversarySpec::LeaderStaller {
                base: 2,
                stall: 4_000,
            })
            .timers(crate::TimerSpec::StuckLow { cap: 8 })
            .horizon(80_000);
        let outcome = SimDriver.run(&scenario);
        assert!(
            !outcome.stabilized_for(0.34),
            "staller must keep demoting leaders"
        );
        assert!(!scenario.expect_stabilization);
    }

    #[test]
    fn traced_run_replays_to_identical_fingerprint() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 4)
            .crash_leader_at(15_000)
            .horizon(40_000);
        let (live, trace) = SimDriver.run_traced(&scenario);
        assert!(!trace.is_empty());
        assert!(trace.meta.contains("variant alg1-fig2"));
        // The trace is self-contained: parse the scenario back out of it.
        let parsed = crate::spec_text::from_spec_text(&trace.meta).unwrap();
        let replayed = SimDriver.run_replay(&parsed, &trace);
        assert_eq!(replayed.fingerprint(), live.fingerprint());
        // A traced run is also identical to an untraced one.
        let plain = SimDriver.run(&scenario);
        assert_eq!(plain.fingerprint(), live.fingerprint());
    }

    #[test]
    fn partition_heal_scenario_recovers_after_heal() {
        use omega_sim::chaos::{Campaign, ChaosPhase};
        let p = ProcessId::new;
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 5)
            .awb(p(4), 1_000, 4)
            .campaign(Campaign::new().phase(ChaosPhase::Partition {
                groups: vec![vec![p(0), p(1)], vec![p(2), p(3), p(4)]],
                from: 20_000,
                until: 45_000,
            }))
            .horizon(100_000);
        let outcome = SimDriver.run(&scenario);
        outcome.assert_election();
        let chaos = outcome.chaos.expect("campaign ran");
        assert_eq!(chaos.partitions, 1);
        assert_eq!(chaos.partition_ticks, 25_000);
        // The two sides cannot agree mid-cut, so the stable suffix starts
        // after the heal — and within a bounded re-election window.
        assert!(
            outcome.stabilization_ticks.unwrap() > 45_000,
            "no stable leader across the cut: {:?}",
            outcome.stabilization_ticks
        );
        let window = chaos.heal_to_stable_ticks.expect("healed, then stabilized");
        assert!(
            window > 0 && window < 40_000,
            "re-election took {window} ticks"
        );
        assert!(outcome.fingerprint().contains("|chaos:"));
    }

    #[test]
    fn run_actors_hatch_preserves_environment() {
        use omega_core::{boxed_actors, Alg1Memory, Alg1Process};
        use std::sync::Arc;
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3).horizon(30_000);
        let space = MemorySpace::new(3);
        let mem = Alg1Memory::new(&space);
        mem.corrupt(0xdead);
        let procs: Vec<Alg1Process> = ProcessId::all(3)
            .map(|pid| Alg1Process::new(Arc::clone(&mem), pid))
            .collect();
        let outcome = SimDriver.run_actors(&scenario, boxed_actors(procs), &space);
        outcome.assert_election();
    }
}
