//! The cooperative-scheduler backend: wall-clock elections past the
//! OS-thread wall.

use std::time::Duration;

use omega_runtime::{Cluster, CoopConfig, NodeConfig};

use crate::wall::WallPacing;
use crate::{Driver, Outcome, Scenario};

/// Realizes a [`Scenario`] on the cooperative task runtime
/// (`omega_runtime::coop`): all `2n` node loops multiplexed as
/// deadline-ordered tasks over one worker thread (or a small pool),
/// instead of two dedicated OS threads per node.
///
/// This is the fourth backend, and the first *real-time* one that scales:
/// the thread and SAN drivers refuse every `n > 16` scenario because `2n`
/// kernel threads thrash a small host, while one coop worker runs
/// `n-scaling-64` and `n-scaling-128` to stable elections, and a sharded
/// pool ([`workers`](Self::workers) ≥ 4) runs `n-scaling-256` and beyond —
/// the admission cap is `omega_scenario::coop_max_n(workers)`. The
/// scheduling regime also differs qualitatively from the OS scheduler's:
/// under overload the deadline wheel degrades into round-robin over the
/// overdue tasks (per-shard exactly, globally up to the steal window), so
/// fairness (the operational face of AWB₁) comes from the queue discipline
/// rather than kernel preemption — a genuinely different realization of
/// the assumption to validate the algorithms against.
///
/// Like the thread driver, the adversary spec and timer spec are
/// simulator-only (the wheel *is* the schedule; `deadline = x · tick` is a
/// faithful timer), the crash script fires at `tick × tick_duration` on
/// the wall clock, and a pinned SAN latency is ignored. The run loop is
/// the shared wall-clock loop (`wall.rs`), so outcomes line up with every
/// other backend's.
#[derive(Debug, Clone, Copy)]
pub struct CoopDriver {
    /// Wall-clock length of one scenario tick (also the timer unit).
    pub tick: Duration,
    /// Pause between consecutive `T2` polls of each node.
    pub step_interval: Duration,
    /// How long every correct node must agree before the election counts
    /// as stable.
    pub window: Duration,
    /// How long to observe post-stabilization traffic for the tail report.
    pub tail_sample: Duration,
    /// Worker threads multiplexing the task set (1 = fully cooperative).
    pub workers: usize,
}

impl Default for CoopDriver {
    /// The thread driver's pacing numbers on a single worker, so
    /// thread-vs-coop comparisons at equal `n` measure the substrate, not
    /// the configuration.
    fn default() -> Self {
        let twin = crate::ThreadDriver::default();
        CoopDriver {
            tick: twin.tick,
            step_interval: twin.step_interval,
            window: twin.window,
            tail_sample: twin.tail_sample,
            workers: 1,
        }
    }
}

impl CoopDriver {
    fn coop_config(&self) -> CoopConfig {
        CoopConfig {
            node: NodeConfig {
                step_interval: self.step_interval,
                tick: self.tick,
            },
            workers: self.workers,
        }
    }

    fn pacing(&self) -> WallPacing {
        WallPacing {
            tick: self.tick,
            window: self.window,
            tail_sample: self.tail_sample,
        }
    }

    /// Starts a coop-hosted cluster configured for `scenario` without
    /// running the crash script or waiting for stabilization — for
    /// interactive use on a scenario-described system, mirroring
    /// [`ThreadDriver::launch`](crate::ThreadDriver::launch).
    #[must_use]
    pub fn launch(&self, scenario: &Scenario) -> Cluster {
        Cluster::start_coop(scenario.variant, scenario.n, self.coop_config())
    }
}

impl Driver for CoopDriver {
    fn name(&self) -> &'static str {
        "coop"
    }

    fn run(&self, scenario: &Scenario) -> Outcome {
        let cluster = self.launch(scenario);
        let outcome = self
            .pacing()
            .run(scenario, &cluster, "coop", Some(self.workers));
        cluster.shutdown();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaVariant;

    #[test]
    fn fault_free_scenario_elects_on_coop() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3).horizon(100_000);
        let outcome = CoopDriver::default().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.backend, "coop");
        assert!(outcome.steps.iter().all(|&s| s > 0), "every node stepped");
        assert!(outcome.total_writes() > 0);
        assert!(outcome.san.is_none(), "in-memory backend: no block stats");
        let tail = outcome.tail.as_ref().expect("tail observed");
        assert!(!tail.writers.is_empty(), "tail shows traffic");
        for writer in tail.writers.iter() {
            assert!(
                outcome.correct.contains(writer),
                "only live processes write"
            );
        }
    }

    #[test]
    fn leader_crash_script_fails_over_on_coop() {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, 3)
            .crash_leader_at(2_000)
            .horizon(200_000);
        let outcome = CoopDriver::default().run(&scenario);
        outcome.assert_election();
        assert_eq!(outcome.crashed.len(), 1, "exactly the old leader fell");
        assert!(!outcome.crashed.contains(outcome.elected.unwrap()));
    }

    #[test]
    fn partition_heal_campaign_runs_on_coop() {
        // The acceptance scenario on a wall-clock backend: the observer
        // severs {0,1} from {2,3,4} at the partition's wall-timed start,
        // heals it, and the election must still stabilize inside the
        // horizon. Tick accounting is the planned schedule (advisory on
        // wall backends); stability is genuinely observed.
        let scenario = crate::registry::named("chaos/partition-heal").expect("registry scenario");
        assert!(
            scenario.eligible_drivers().coop,
            "partition+heal campaigns admit coop"
        );
        let outcome = CoopDriver::default().run(&scenario);
        outcome.assert_election();
        let chaos = outcome.chaos.expect("campaign scenarios report chaos");
        assert_eq!(chaos.partitions, 1);
        assert_eq!(chaos.partition_ticks, 25_000);
        assert_eq!(chaos.wave_crashes, 0);
        assert!(outcome.crashed.is_empty(), "partitions are not crashes");
    }

    #[test]
    fn default_pacing_twins_the_thread_driver() {
        // Thread-vs-coop throughput rows compare substrates only when the
        // pacing is identical; pin that coupling.
        let coop = CoopDriver::default();
        let threads = crate::ThreadDriver::default();
        assert_eq!(coop.tick, threads.tick);
        assert_eq!(coop.step_interval, threads.step_interval);
        assert_eq!(coop.window, threads.window);
        assert_eq!(coop.workers, 1, "fully cooperative by default");
    }
}
