//! Integration and property tests for the simulation harness itself:
//! the machine that checks the paper must itself be checked. Randomized
//! properties are driven by the crate's own seeded generator, 64 cases
//! each, reproducible from the case number.

use omega_registers::ProcessId;
use omega_sim::adversary::{Adversary, AwbEnvelope, PartitionedPhases, SeededRandom};
use omega_sim::event::{EventKind, EventQueue};
use omega_sim::rng::SmallRng;
use omega_sim::{Actor, SimTime, Simulation, StepCtx};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A minimal actor: counts invocations, reports a fixed leader.
struct Counter {
    steps: u64,
}

impl Actor for Counter {
    fn on_step(&mut self, _ctx: StepCtx) {
        self.steps += 1;
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        7
    }

    fn current_leader(&self) -> Option<ProcessId> {
        Some(p(0))
    }
}

fn counters(n: usize) -> Vec<Box<dyn Actor>> {
    (0..n)
        .map(|_| Box::new(Counter { steps: 0 }) as Box<dyn Actor>)
        .collect()
}

#[test]
fn trace_confirms_awb_envelope_bounds_step_gaps() {
    // The trace is evidence that AWB₁ actually holds in simulated runs:
    // after τ₁ the timely process's step gaps never exceed σ.
    let tau1 = 2_000u64;
    let sigma = 5u64;
    let report = Simulation::builder(counters(3))
        .adversary(AwbEnvelope::new(
            SeededRandom::new(3, 1, 40),
            p(1),
            SimTime::from_ticks(tau1),
            sigma,
        ))
        .horizon(12_000)
        .trace(200_000)
        .run();
    let trace = report.trace.expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "capacity generous enough to keep all");

    let steps: Vec<SimTime> = trace
        .steps_of(p(1))
        .filter(|t| t.ticks() > tau1 + 40) // skip the last pre-clamp delay
        .collect();
    assert!(steps.len() > 100);
    for w in steps.windows(2) {
        assert!(
            w[1] - w[0] <= sigma,
            "AWB violated in-trace: gap {} > sigma {sigma}",
            w[1] - w[0]
        );
    }
    // An unclamped process, by contrast, must show gaps beyond sigma.
    let free: Vec<SimTime> = trace.steps_of(p(0)).collect();
    assert!(
        free.windows(2).any(|w| w[1] - w[0] > sigma),
        "the wrapped adversary should exceed sigma for non-timely processes"
    );
}

#[test]
fn trace_records_crashes_and_timer_fires() {
    use omega_sim::crash::CrashPlan;
    let report = Simulation::builder(counters(2))
        .crash_plan(CrashPlan::none().with_crash_at(SimTime::from_ticks(500), p(1)))
        .horizon(2_000)
        .trace(100_000)
        .run();
    let trace = report.trace.unwrap();
    let crashes: Vec<_> = trace
        .entries()
        .filter(|e| matches!(e.kind, EventKind::Crash(_)))
        .collect();
    assert_eq!(crashes.len(), 1);
    assert_eq!(crashes[0].time, SimTime::from_ticks(500));
    assert!(trace.timer_fires_of(p(0)).count() > 10);
    // p1 stops stepping after the crash.
    assert!(trace.steps_of(p(1)).all(|t| t <= SimTime::from_ticks(500)));
}

#[test]
fn partitioned_phases_still_elects_inside_awb() {
    use omega_core::OmegaVariant;
    let n = 4;
    let sys = OmegaVariant::Alg1.build(n);
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            PartitionedPhases::new(n, 2_000, 2, 500),
            p(0),
            SimTime::from_ticks(1_000),
            4,
        ))
        .horizon(80_000)
        .sample_every(100)
        .run();
    let stab = report
        .stabilization()
        .expect("alternating partitions inside AWB still elect");
    assert!(report.correct.contains(stab.leader));
}

/// The event queue is a stable priority queue: pops are sorted by time,
/// and FIFO among equal times.
#[test]
fn event_queue_pops_sorted_and_stable() {
    let mut g = SmallRng::seed_from_u64(0xE0E0);
    for case in 0..64 {
        let times: Vec<u64> = (0..g.gen_range(0..=200))
            .map(|_| g.gen_range(0..=999))
            .collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), EventKind::Step(p(i % 7)));
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, e.seq));
        }
        assert_eq!(popped.len(), times.len(), "case {case}");
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: FIFO among equal times");
            }
        }
    }
}

/// Reference queue semantics: the exact `(time, seq)` heap the timer
/// wheel replaced. The wheel must be observationally identical to this.
struct ReferenceQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: std::collections::BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, time: SimTime) {
        self.heap.push(std::cmp::Reverse((time, self.next_seq)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|r| r.0)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|r| r.0 .0)
    }
}

/// The timer wheel pops in exactly the `(time, seq)` order of the old
/// `BinaryHeap` queue, across random interleavings of pushes and pops —
/// including same-tick bursts, far-future events (beyond the wheel window,
/// so they exercise the heap fallback and migration), and pushes behind
/// the cursor after pops have advanced it.
#[test]
fn event_queue_matches_reference_heap_under_interleaving() {
    let mut g = SmallRng::seed_from_u64(0x77EE1);
    for case in 0..64 {
        let mut q = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        // A moving "now" so later pushes land near, before, or far beyond
        // the times already popped.
        let mut now = 0u64;
        for op in 0..g.gen_range(50..=400) {
            let push = q.is_empty() || g.gen_range(0..=99) < 60;
            if push {
                let time = match g.gen_range(0..=9) {
                    // Same-tick burst: several events on one time.
                    0..=2 => now + g.gen_range(0..=3),
                    // Near horizon: the wheel's fast path.
                    3..=6 => now + g.gen_range(0..=2_000),
                    // Behind the cursor (the heap-only queue allowed it).
                    7 => now.saturating_sub(g.gen_range(0..=500)),
                    // Far future: heap fallback + later migration.
                    _ => now + g.gen_range(5_000..=1_000_000),
                };
                let t = SimTime::from_ticks(time);
                q.schedule(t, EventKind::Step(p(op as usize % 5)));
                reference.schedule(t);
            } else {
                assert_eq!(
                    q.peek_time(),
                    reference.peek_time(),
                    "case {case} op {op}: peek diverged"
                );
                let got = q.pop().expect("non-empty");
                let want = reference.pop().expect("reference in sync");
                assert_eq!(
                    (got.time, got.seq),
                    want,
                    "case {case} op {op}: pop order diverged"
                );
                now = now.max(got.time.ticks());
            }
            assert_eq!(q.len(), reference.heap.len(), "case {case} op {op}");
        }
        // Drain: the tails must agree too.
        while let Some(want) = reference.pop() {
            let got = q.pop().expect("same length");
            assert_eq!((got.time, got.seq), want, "case {case}: drain diverged");
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

/// The AWB envelope never *increases* a delay, and always clamps the
/// timely process after τ₁.
#[test]
fn awb_envelope_clamp_invariants() {
    let mut g = SmallRng::seed_from_u64(0xAB1);
    for case in 0..64 {
        let seed = g.next_u64();
        let hi = g.gen_range(2..=99);
        let sigma = g.gen_range(1..=19);
        let tau1 = g.gen_range(0..=9_999);
        let mut inner = SeededRandom::new(seed, 1, hi);
        let mut wrapped = AwbEnvelope::new(
            SeededRandom::new(seed, 1, hi),
            p(2),
            SimTime::from_ticks(tau1),
            sigma,
        );
        for _ in 0..g.gen_range(1..=99) {
            let pid = p(g.gen_range(0..=3) as usize);
            let now = SimTime::from_ticks(g.gen_range(0..=19_999));
            let raw = inner.next_step_delay(pid, now);
            let clamped = wrapped.next_step_delay(pid, now);
            assert!(
                clamped <= raw,
                "case {case}: envelope may only shorten delays"
            );
            if pid == p(2) && now >= SimTime::from_ticks(tau1) {
                assert!(
                    clamped <= sigma,
                    "case {case}: timely process clamped after tau1"
                );
            } else {
                assert_eq!(clamped, raw, "case {case}: everyone else untouched");
            }
        }
    }
}

/// Simulated runs are a pure function of their configuration: same seeds,
/// same report counters.
#[test]
fn runs_are_deterministic() {
    let mut g = SmallRng::seed_from_u64(0xDE7);
    for _ in 0..64 {
        let seed = g.next_u64();
        let horizon = g.gen_range(500..=4_999);
        let run = || {
            Simulation::builder(counters(3))
                .adversary(SeededRandom::new(seed, 1, 9))
                .horizon(horizon)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.steps_taken, b.steps_taken);
        assert_eq!(a.timer_fires, b.timer_fires);
    }
}

/// Every process keeps taking steps (no starvation) under any seeded
/// random adversary: delays are finite, so the paper's "correct processes
/// execute infinitely many steps" holds in the harness.
#[test]
fn no_starvation() {
    let mut g = SmallRng::seed_from_u64(0x57A);
    for case in 0..64 {
        let seed = g.next_u64();
        let hi = g.gen_range(1..=49);
        let report = Simulation::builder(counters(4))
            .adversary(SeededRandom::new(seed, 1, hi))
            .horizon(20_000)
            .run();
        for (i, &steps) in report.steps_taken.iter().enumerate() {
            assert!(
                steps >= 20_000 / (hi + 1) / 2,
                "case {case}: process {i} starved: {steps} steps"
            );
        }
    }
}
