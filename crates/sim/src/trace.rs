//! Bounded event tracing for simulated runs.
//!
//! When enabled ([`SimulationBuilder::trace`]), the harness records every
//! processed event into a bounded ring buffer. Traces are how you debug a
//! surprising run: *who stepped when, which timers fired, when did the
//! crash land* — the raw material of the paper's run diagrams (Figures 3
//! and 4 are exactly such traces).
//!
//! [`SimulationBuilder::trace`]: crate::SimulationBuilder::trace

use std::collections::VecDeque;
use std::fmt;

use omega_registers::ProcessId;

use crate::event::EventKind;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event fired.
    pub time: SimTime,
    /// What fired.
    pub kind: EventKind,
}

/// A bounded ring buffer of processed events.
///
/// Keeps the **most recent** `capacity` events; older entries are evicted.
/// [`dropped`](EventTrace::dropped) reports how many were lost.
#[derive(Debug, Clone)]
pub struct EventTrace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventTrace {
    /// Creates a trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace needs capacity");
        EventTrace {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, time: SimTime, kind: EventKind) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { time, kind });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded (or everything evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained main-task steps of `pid`, oldest first.
    pub fn steps_of(&self, pid: ProcessId) -> impl Iterator<Item = SimTime> + '_ {
        self.entries.iter().filter_map(move |e| match e.kind {
            EventKind::Step(q) if q == pid => Some(e.time),
            _ => None,
        })
    }

    /// Retained timer expirations of `pid`, oldest first.
    pub fn timer_fires_of(&self, pid: ProcessId) -> impl Iterator<Item = SimTime> + '_ {
        self.entries.iter().filter_map(move |e| match e.kind {
            EventKind::TimerExpire(q, _) if q == pid => Some(e.time),
            _ => None,
        })
    }

    /// Retained entries in the half-open interval `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// The largest gap (in ticks) between consecutive retained steps of
    /// `pid` — the observable form of the paper's σ bound.
    #[must_use]
    pub fn max_step_gap(&self, pid: ProcessId) -> Option<u64> {
        let steps: Vec<SimTime> = self.steps_of(pid).collect();
        steps.windows(2).map(|w| w[1] - w[0]).max()
    }
}

impl fmt::Display for EventTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} entries retained, {} dropped",
            self.len(),
            self.dropped
        )?;
        for e in &self.entries {
            match e.kind {
                EventKind::Step(p) => writeln!(f, "  {:>10} step      {p}", e.time)?,
                EventKind::TimerExpire(p, epoch) => {
                    writeln!(f, "  {:>10} timer     {p} (epoch {epoch})", e.time)?
                }
                EventKind::Crash(p) => writeln!(f, "  {:>10} CRASH     {p}", e.time)?,
                EventKind::Sample => writeln!(f, "  {:>10} sample", e.time)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn at(t: u64) -> SimTime {
        SimTime::from_ticks(t)
    }

    #[test]
    fn records_in_order() {
        let mut trace = EventTrace::new(8);
        trace.record(at(1), EventKind::Step(p(0)));
        trace.record(at(2), EventKind::TimerExpire(p(1), 0));
        trace.record(at(3), EventKind::Crash(p(0)));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        let times: Vec<u64> = trace.entries().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut trace = EventTrace::new(2);
        for t in 0..5 {
            trace.record(at(t), EventKind::Sample);
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
        let times: Vec<u64> = trace.entries().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn filters_by_process_and_kind() {
        let mut trace = EventTrace::new(16);
        trace.record(at(1), EventKind::Step(p(0)));
        trace.record(at(2), EventKind::Step(p(1)));
        trace.record(at(5), EventKind::Step(p(0)));
        trace.record(at(6), EventKind::TimerExpire(p(0), 3));
        let steps: Vec<u64> = trace.steps_of(p(0)).map(SimTime::ticks).collect();
        assert_eq!(steps, vec![1, 5]);
        let fires: Vec<u64> = trace.timer_fires_of(p(0)).map(SimTime::ticks).collect();
        assert_eq!(fires, vec![6]);
    }

    #[test]
    fn window_query() {
        let mut trace = EventTrace::new(16);
        for t in [1u64, 4, 7, 9] {
            trace.record(at(t), EventKind::Sample);
        }
        let inside: Vec<u64> = trace
            .between(at(4), at(9))
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(inside, vec![4, 7]);
    }

    #[test]
    fn max_step_gap_measures_sigma() {
        let mut trace = EventTrace::new(16);
        for t in [10u64, 12, 20, 23] {
            trace.record(at(t), EventKind::Step(p(2)));
        }
        assert_eq!(trace.max_step_gap(p(2)), Some(8));
        assert_eq!(trace.max_step_gap(p(0)), None);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = EventTrace::new(0);
    }

    #[test]
    fn display_renders_entries() {
        let mut trace = EventTrace::new(4);
        trace.record(at(3), EventKind::Crash(p(1)));
        let out = trace.to_string();
        assert!(out.contains("CRASH"));
        assert!(out.contains("p1"));
    }
}
