//! Event tracing for simulated runs: a bounded debugging ring buffer and a
//! complete binary record/replay format.
//!
//! Two distinct consumers, two structures:
//!
//! * [`EventTrace`] — enabled by [`SimulationBuilder::trace`], a bounded
//!   ring buffer of the most recent events. Traces are how you debug a
//!   surprising run: *who stepped when, which timers fired, when did the
//!   crash land* — the raw material of the paper's run diagrams (Figures 3
//!   and 4 are exactly such traces).
//! * [`Trace`] — enabled by [`SimulationBuilder::record_trace`], the
//!   **complete** event sequence of a run in a compact binary encoding
//!   (varint-delta times, one tag byte per event — a few bytes per event).
//!   A recorded trace can be written to a file and fed back through
//!   [`SimulationBuilder::run_replay`], which re-executes the exact same
//!   event sequence against freshly built actors without consulting the
//!   adversary or timer models; because actors are deterministic, the
//!   replayed run is byte-identical to the live one. The trace carries a
//!   free-form `meta` string so a file can embed the scenario spec that
//!   produced it and be replayed self-contained.
//!
//! [`SimulationBuilder::trace`]: crate::SimulationBuilder::trace
//! [`SimulationBuilder::record_trace`]: crate::SimulationBuilder::record_trace
//! [`SimulationBuilder::run_replay`]: crate::SimulationBuilder::run_replay

use std::collections::VecDeque;
use std::fmt;

use omega_registers::ProcessId;

use crate::event::EventKind;
use crate::time::SimTime;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event fired.
    pub time: SimTime,
    /// What fired.
    pub kind: EventKind,
}

/// A bounded ring buffer of processed events.
///
/// Keeps the **most recent** `capacity` events; older entries are evicted.
/// [`dropped`](EventTrace::dropped) reports how many were lost.
#[derive(Debug, Clone)]
pub struct EventTrace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventTrace {
    /// Creates a trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace needs capacity");
        EventTrace {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, time: SimTime, kind: EventKind) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { time, kind });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded (or everything evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained main-task steps of `pid`, oldest first.
    pub fn steps_of(&self, pid: ProcessId) -> impl Iterator<Item = SimTime> + '_ {
        self.entries.iter().filter_map(move |e| match e.kind {
            EventKind::Step(q) if q == pid => Some(e.time),
            _ => None,
        })
    }

    /// Retained timer expirations of `pid`, oldest first.
    pub fn timer_fires_of(&self, pid: ProcessId) -> impl Iterator<Item = SimTime> + '_ {
        self.entries.iter().filter_map(move |e| match e.kind {
            EventKind::TimerExpire(q, _) if q == pid => Some(e.time),
            _ => None,
        })
    }

    /// Retained entries in the half-open interval `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.time >= from && e.time < to)
    }

    /// The largest gap (in ticks) between consecutive retained steps of
    /// `pid` — the observable form of the paper's σ bound.
    #[must_use]
    pub fn max_step_gap(&self, pid: ProcessId) -> Option<u64> {
        let steps: Vec<SimTime> = self.steps_of(pid).collect();
        steps.windows(2).map(|w| w[1] - w[0]).max()
    }
}

impl fmt::Display for EventTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} entries retained, {} dropped",
            self.len(),
            self.dropped
        )?;
        for e in &self.entries {
            match e.kind {
                EventKind::Step(p) => writeln!(f, "  {:>10} step      {p}", e.time)?,
                EventKind::TimerExpire(p, epoch) => {
                    writeln!(f, "  {:>10} timer     {p} (epoch {epoch})", e.time)?
                }
                EventKind::Crash(p) => writeln!(f, "  {:>10} CRASH     {p}", e.time)?,
                EventKind::Sample => writeln!(f, "  {:>10} sample", e.time)?,
                EventKind::ChaosStart(i) => writeln!(f, "  {:>10} chaos+    phase {i}", e.time)?,
                EventKind::ChaosEnd(i) => writeln!(f, "  {:>10} chaos-    phase {i}", e.time)?,
            }
        }
        Ok(())
    }
}

/// Magic prefix of the binary trace format.
const TRACE_MAGIC: &[u8; 4] = b"OMTR";
/// Current version of the binary trace format.
const TRACE_VERSION: u8 = 1;

/// Per-event tag bytes of the binary encoding.
const TAG_STEP: u8 = 0;
const TAG_TIMER: u8 = 1;
const TAG_CRASH: u8 = 2;
const TAG_SAMPLE: u8 = 3;
const TAG_CHAOS_START: u8 = 4;
const TAG_CHAOS_END: u8 = 5;

/// A decoding failure: the bytes are not a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace decode error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

fn err(msg: impl Into<String>) -> TraceError {
    TraceError(msg.into())
}

/// Appends `value` as a LEB128 varint.
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or_else(|| err("truncated varint"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(err("varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// The complete event sequence of one simulated run, in processing order —
/// the unit of record/replay.
///
/// Every event the live loop pops (including events it then filters as
/// stale or crashed — the filter is part of the deterministic semantics
/// and re-applies identically on replay) is appended via
/// [`record`](Trace::record). [`encode`](Trace::encode) /
/// [`decode`](Trace::decode) round-trip the whole trace through the
/// compact binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Number of processes in the recorded system.
    pub n: usize,
    /// Horizon of the recorded run, in ticks.
    pub horizon: u64,
    /// Free-form metadata — by convention the spec text of the scenario
    /// that produced the run, so a trace file is replayable on its own.
    pub meta: String,
    events: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace for an `n`-process run over `horizon` ticks.
    #[must_use]
    pub fn new(n: usize, horizon: u64) -> Self {
        Trace {
            n,
            horizon,
            meta: String::new(),
            events: Vec::new(),
        }
    }

    /// Appends one processed event. Times must be non-decreasing (the
    /// simulator pops in time order; the encoder stores deltas).
    pub fn record(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time <= time),
            "trace times must be non-decreasing"
        );
        self.events.push(TraceEntry { time, kind });
    }

    /// The recorded events, in processing order.
    #[must_use]
    pub fn events(&self) -> &[TraceEntry] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encodes the trace into the compact binary format: magic + version,
    /// varint header fields, the meta string, then one tag byte and
    /// varint-encoded delta time (plus pid/epoch where applicable) per
    /// event — typically 2–4 bytes each.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.meta.len() + self.events.len() * 3);
        out.extend_from_slice(TRACE_MAGIC);
        out.push(TRACE_VERSION);
        push_varint(&mut out, self.n as u64);
        push_varint(&mut out, self.horizon);
        push_varint(&mut out, self.meta.len() as u64);
        out.extend_from_slice(self.meta.as_bytes());
        push_varint(&mut out, self.events.len() as u64);
        let mut prev = 0u64;
        for e in &self.events {
            let ticks = e.time.ticks();
            let delta = ticks - prev;
            prev = ticks;
            match e.kind {
                EventKind::Step(pid) => {
                    out.push(TAG_STEP);
                    push_varint(&mut out, delta);
                    push_varint(&mut out, pid.index() as u64);
                }
                EventKind::TimerExpire(pid, epoch) => {
                    out.push(TAG_TIMER);
                    push_varint(&mut out, delta);
                    push_varint(&mut out, pid.index() as u64);
                    push_varint(&mut out, epoch);
                }
                EventKind::Crash(pid) => {
                    out.push(TAG_CRASH);
                    push_varint(&mut out, delta);
                    push_varint(&mut out, pid.index() as u64);
                }
                EventKind::Sample => {
                    out.push(TAG_SAMPLE);
                    push_varint(&mut out, delta);
                }
                EventKind::ChaosStart(phase) => {
                    out.push(TAG_CHAOS_START);
                    push_varint(&mut out, delta);
                    push_varint(&mut out, u64::from(phase));
                }
                EventKind::ChaosEnd(phase) => {
                    out.push(TAG_CHAOS_END);
                    push_varint(&mut out, delta);
                    push_varint(&mut out, u64::from(phase));
                }
            }
        }
        out
    }

    /// Decodes a trace previously produced by [`encode`](Trace::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the bytes are truncated, carry the
    /// wrong magic/version, or contain an unknown event tag.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < 5 || &bytes[..4] != TRACE_MAGIC {
            return Err(err("missing OMTR magic"));
        }
        if bytes[4] != TRACE_VERSION {
            return Err(err(format!(
                "unsupported trace version {} (expected {TRACE_VERSION})",
                bytes[4]
            )));
        }
        let mut pos = 5;
        let n = read_varint(bytes, &mut pos)? as usize;
        let horizon = read_varint(bytes, &mut pos)?;
        let meta_len = read_varint(bytes, &mut pos)? as usize;
        let meta_end = pos
            .checked_add(meta_len)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| err("truncated meta string"))?;
        let meta = std::str::from_utf8(&bytes[pos..meta_end])
            .map_err(|_| err("meta string is not UTF-8"))?
            .to_string();
        pos = meta_end;
        let count = read_varint(bytes, &mut pos)? as usize;
        let mut events = Vec::with_capacity(count.min(1 << 20));
        let mut now = 0u64;
        for _ in 0..count {
            let &tag = bytes.get(pos).ok_or_else(|| err("truncated event tag"))?;
            pos += 1;
            let delta = read_varint(bytes, &mut pos)?;
            now = now
                .checked_add(delta)
                .ok_or_else(|| err("time overflows u64"))?;
            let kind = match tag {
                TAG_STEP => EventKind::Step(ProcessId::new(read_varint(bytes, &mut pos)? as usize)),
                TAG_TIMER => {
                    let pid = ProcessId::new(read_varint(bytes, &mut pos)? as usize);
                    let epoch = read_varint(bytes, &mut pos)?;
                    EventKind::TimerExpire(pid, epoch)
                }
                TAG_CRASH => {
                    EventKind::Crash(ProcessId::new(read_varint(bytes, &mut pos)? as usize))
                }
                TAG_SAMPLE => EventKind::Sample,
                TAG_CHAOS_START => {
                    let phase = u32::try_from(read_varint(bytes, &mut pos)?)
                        .map_err(|_| err("chaos phase index overflows u32"))?;
                    EventKind::ChaosStart(phase)
                }
                TAG_CHAOS_END => {
                    let phase = u32::try_from(read_varint(bytes, &mut pos)?)
                        .map_err(|_| err("chaos phase index overflows u32"))?;
                    EventKind::ChaosEnd(phase)
                }
                other => return Err(err(format!("unknown event tag {other}"))),
            };
            events.push(TraceEntry {
                time: SimTime::from_ticks(now),
                kind,
            });
        }
        if pos != bytes.len() {
            return Err(err("trailing bytes after the last event"));
        }
        Ok(Trace {
            n,
            horizon,
            meta,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn at(t: u64) -> SimTime {
        SimTime::from_ticks(t)
    }

    #[test]
    fn records_in_order() {
        let mut trace = EventTrace::new(8);
        trace.record(at(1), EventKind::Step(p(0)));
        trace.record(at(2), EventKind::TimerExpire(p(1), 0));
        trace.record(at(3), EventKind::Crash(p(0)));
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        let times: Vec<u64> = trace.entries().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut trace = EventTrace::new(2);
        for t in 0..5 {
            trace.record(at(t), EventKind::Sample);
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
        let times: Vec<u64> = trace.entries().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn filters_by_process_and_kind() {
        let mut trace = EventTrace::new(16);
        trace.record(at(1), EventKind::Step(p(0)));
        trace.record(at(2), EventKind::Step(p(1)));
        trace.record(at(5), EventKind::Step(p(0)));
        trace.record(at(6), EventKind::TimerExpire(p(0), 3));
        let steps: Vec<u64> = trace.steps_of(p(0)).map(SimTime::ticks).collect();
        assert_eq!(steps, vec![1, 5]);
        let fires: Vec<u64> = trace.timer_fires_of(p(0)).map(SimTime::ticks).collect();
        assert_eq!(fires, vec![6]);
    }

    #[test]
    fn window_query() {
        let mut trace = EventTrace::new(16);
        for t in [1u64, 4, 7, 9] {
            trace.record(at(t), EventKind::Sample);
        }
        let inside: Vec<u64> = trace
            .between(at(4), at(9))
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(inside, vec![4, 7]);
    }

    #[test]
    fn max_step_gap_measures_sigma() {
        let mut trace = EventTrace::new(16);
        for t in [10u64, 12, 20, 23] {
            trace.record(at(t), EventKind::Step(p(2)));
        }
        assert_eq!(trace.max_step_gap(p(2)), Some(8));
        assert_eq!(trace.max_step_gap(p(0)), None);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = EventTrace::new(0);
    }

    #[test]
    fn display_renders_entries() {
        let mut trace = EventTrace::new(4);
        trace.record(at(3), EventKind::Crash(p(1)));
        let out = trace.to_string();
        assert!(out.contains("CRASH"));
        assert!(out.contains("p1"));
    }

    #[test]
    fn varints_round_trip() {
        for value in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), value);
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x80], &mut pos).is_err(), "truncated");
        let mut pos = 0;
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(read_varint(&overflow, &mut pos).is_err(), "overflow");
    }

    #[test]
    fn binary_trace_round_trips() {
        let mut trace = Trace::new(3, 10_000);
        trace.meta = "scenario x\nvariant alg1\nn 3\n".to_string();
        trace.record(at(1), EventKind::Step(p(0)));
        trace.record(at(1), EventKind::Sample);
        trace.record(at(5), EventKind::TimerExpire(p(2), 7));
        trace.record(at(9_999), EventKind::Crash(p(1)));
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded.meta, trace.meta);
    }

    #[test]
    fn chaos_events_round_trip() {
        let mut trace = Trace::new(5, 50_000);
        trace.record(at(10), EventKind::ChaosStart(0));
        trace.record(at(10), EventKind::Step(p(3)));
        trace.record(at(400), EventKind::ChaosEnd(0));
        trace.record(at(500), EventKind::ChaosStart(300));
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(decoded, trace);
        let mut ring = EventTrace::new(4);
        ring.record(at(10), EventKind::ChaosStart(2));
        ring.record(at(20), EventKind::ChaosEnd(2));
        let out = ring.to_string();
        assert!(out.contains("chaos+") && out.contains("chaos-"));
    }

    #[test]
    fn binary_encoding_is_compact() {
        // Dense step/timer traffic (small deltas, small pids) must cost a
        // few bytes per event, not a fixed-width record.
        let mut trace = Trace::new(4, 100_000);
        for t in 0..10_000u64 {
            trace.record(at(t), EventKind::Step(p((t % 4) as usize)));
        }
        let bytes = trace.encode();
        let per_event = bytes.len() as f64 / trace.len() as f64;
        assert!(per_event < 4.0, "{per_event} bytes/event");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(b"").is_err());
        assert!(Trace::decode(b"NOPE\x01\x02\x00\x00\x00").is_err());
        let mut ok = Trace::new(2, 100);
        ok.record(at(3), EventKind::Sample);
        let bytes = ok.encode();
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[4] = 99;
        assert!(Trace::decode(&wrong).is_err());
        // Truncation anywhere must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(Trace::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Trace::decode(&long).is_err());
    }

    #[test]
    fn empty_binary_trace_round_trips() {
        let trace = Trace::new(1, 0);
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded, trace);
    }
}
