//! The deterministic event queue driving a simulation.
//!
//! [`EventQueue`] is the simulator's instantiation of the generic
//! [`TimerWheel`] (near-horizon bucket wheel, far/overdue heap fallback):
//! keys are virtual ticks, payloads are [`EventKind`]s. The overwhelming majority of simulator events are
//! scheduled a handful of ticks ahead (step delays, timer re-arms), and
//! those enjoy O(1) push and pop; events beyond the wheel's window —
//! far-future crash scripts, long stalls, pre-scheduled sampling cadences
//! — fall back to the heap and migrate in as virtual time approaches
//! them. Pop order is **exactly** the `(time, seq)` order of the original
//! heap-only queue, so traces are tick-identical; the seeded property
//! tests in `harness_properties.rs` pit the wheel against a reference
//! heap to hold that line.

use std::cmp::Ordering;

use omega_registers::ProcessId;

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The process performs one step of its main task (task T2 of the
    /// paper's algorithms).
    Step(ProcessId),
    /// The process's local timer expires (task T3). The epoch guards
    /// against stale expirations after the timer was re-armed.
    TimerExpire(ProcessId, u64),
    /// The process crashes (stops executing steps forever).
    Crash(ProcessId),
    /// The harness samples leader estimates and statistics.
    Sample,
    /// Chaos-campaign phase `i` begins to act (partition cut, storm onset,
    /// wave, heal).
    ChaosStart(u32),
    /// Chaos-campaign phase `i` stops acting (partition heals, storm
    /// clears).
    ChaosEnd(u32),
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break sequence number; assigned by the queue in scheduling order
    /// so that runs are fully deterministic.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of events ordered by `(time, seq)`.
///
/// # Examples
///
/// ```
/// use omega_sim::event::{EventKind, EventQueue};
/// use omega_sim::SimTime;
/// use omega_registers::ProcessId;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), EventKind::Sample);
/// q.schedule(SimTime::from_ticks(2), EventKind::Step(ProcessId::new(0)));
/// let first = q.pop().unwrap();
/// assert_eq!(first.time, SimTime::from_ticks(2));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    wheel: TimerWheel<EventKind>,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
        }
    }

    /// Schedules `kind` to fire at `time`. Events scheduled earlier sort
    /// first among equal times, making runs deterministic.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.wheel.push(time.ticks(), kind);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.wheel.pop().map(|(ticks, seq, kind)| Event {
            time: SimTime::from_ticks(ticks),
            seq,
            kind,
        })
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_key().map(SimTime::from_ticks)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wheel::WHEEL_SLOTS;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), EventKind::Sample);
        q.schedule(SimTime::from_ticks(1), EventKind::Step(p(0)));
        q.schedule(SimTime::from_ticks(5), EventKind::Crash(p(1)));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(times, vec![1, 5, 10]);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(3);
        q.schedule(t, EventKind::Step(p(0)));
        q.schedule(t, EventKind::Step(p(1)));
        q.schedule(t, EventKind::Step(p(2)));
        let pids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Step(pid) => pid.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ticks(9), EventKind::Sample);
        q.schedule(SimTime::from_ticks(4), EventKind::Sample);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
    }

    #[test]
    fn timer_event_carries_epoch() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), EventKind::TimerExpire(p(0), 42));
        match q.pop().unwrap().kind {
            EventKind::TimerExpire(pid, epoch) => {
                assert_eq!(pid, p(0));
                assert_eq!(epoch, 42);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn far_events_take_the_heap_and_come_back_in_order() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.schedule(SimTime::from_ticks(far), EventKind::Sample);
        q.schedule(SimTime::from_ticks(far), EventKind::Step(p(1)));
        q.schedule(SimTime::from_ticks(2), EventKind::Step(p(0)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().time.ticks(), 2);
        // Same far tick: FIFO by scheduling order, across the migration.
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_eq!((a.time.ticks(), a.kind), (far, EventKind::Sample));
        assert_eq!((b.time.ticks(), b.kind), (far, EventKind::Step(p(1))));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_order_survives_migration_plus_direct_push() {
        // A far event and a later direct push to the same tick must pop in
        // scheduling order even though they travelled different paths.
        let mut q = EventQueue::new();
        let t = WHEEL_SLOTS as u64 + 5;
        q.schedule(SimTime::from_ticks(t), EventKind::Step(p(0))); // far
        q.schedule(SimTime::from_ticks(1), EventKind::Sample);
        assert_eq!(q.pop().unwrap().kind, EventKind::Sample);
        // Cursor advanced past 1; t is now inside the window: direct push.
        q.schedule(SimTime::from_ticks(t), EventKind::Step(p(1)));
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::Step(p(0)), "far push came first");
        assert_eq!(second.kind, EventKind::Step(p(1)));
    }

    #[test]
    fn overdue_schedule_pops_before_everything_near() {
        // The heap-only queue allowed scheduling behind the current pop
        // front; the wheel must honor that too.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(50), EventKind::Sample);
        assert_eq!(q.pop().unwrap().time.ticks(), 50);
        q.schedule(SimTime::from_ticks(60), EventKind::Step(p(1)));
        q.schedule(SimTime::from_ticks(3), EventKind::Step(p(0)));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(3)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Step(p(0)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Step(p(1)));
    }

    #[test]
    fn window_boundary_routes_to_heap_and_still_sorts() {
        let mut q = EventQueue::new();
        let edge = WHEEL_SLOTS as u64; // first time outside the window
        q.schedule(SimTime::from_ticks(edge), EventKind::Sample);
        q.schedule(SimTime::from_ticks(edge - 1), EventKind::Step(p(0)));
        assert_eq!(q.pop().unwrap().time.ticks(), edge - 1);
        assert_eq!(q.pop().unwrap().time.ticks(), edge);
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_wheel_jumps_to_far_events_without_scanning() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 1000;
        q.schedule(SimTime::from_ticks(far), EventKind::Sample);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(far)));
        assert_eq!(q.pop().unwrap().time.ticks(), far);
    }
}
