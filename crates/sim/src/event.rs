//! The deterministic event queue driving a simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use omega_registers::ProcessId;

use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The process performs one step of its main task (task T2 of the
    /// paper's algorithms).
    Step(ProcessId),
    /// The process's local timer expires (task T3). The epoch guards
    /// against stale expirations after the timer was re-armed.
    TimerExpire(ProcessId, u64),
    /// The process crashes (stops executing steps forever).
    Crash(ProcessId),
    /// The harness samples leader estimates and statistics.
    Sample,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break sequence number; assigned by the queue in scheduling order
    /// so that runs are fully deterministic.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of events ordered by `(time, seq)`.
///
/// # Examples
///
/// ```
/// use omega_sim::event::{EventKind, EventQueue};
/// use omega_sim::SimTime;
/// use omega_registers::ProcessId;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), EventKind::Sample);
/// q.schedule(SimTime::from_ticks(2), EventKind::Step(ProcessId::new(0)));
/// let first = q.pop().unwrap();
/// assert_eq!(first.time, SimTime::from_ticks(2));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`. Events scheduled earlier sort
    /// first among equal times, making runs deterministic.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), EventKind::Sample);
        q.schedule(SimTime::from_ticks(1), EventKind::Step(p(0)));
        q.schedule(SimTime::from_ticks(5), EventKind::Crash(p(1)));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.ticks())
            .collect();
        assert_eq!(times, vec![1, 5, 10]);
    }

    #[test]
    fn equal_times_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(3);
        q.schedule(t, EventKind::Step(p(0)));
        q.schedule(t, EventKind::Step(p(1)));
        q.schedule(t, EventKind::Step(p(2)));
        let pids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Step(pid) => pid.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ticks(9), EventKind::Sample);
        q.schedule(SimTime::from_ticks(4), EventKind::Sample);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
    }

    #[test]
    fn timer_event_carries_epoch() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), EventKind::TimerExpire(p(0), 42));
        match q.pop().unwrap().kind {
            EventKind::TimerExpire(pid, epoch) => {
                assert_eq!(pid, p(0));
                assert_eq!(epoch, 42);
            }
            _ => panic!("wrong kind"),
        }
    }
}
