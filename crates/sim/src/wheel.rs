//! The generic timer wheel behind every deadline-ordered queue.
//!
//! [`TimerWheel`] is a hierarchical bucket queue: a near-horizon wheel of
//! [`WHEEL_SLOTS`] one-key buckets with a binary-heap fallback for far and
//! overdue keys. Both of the repo's scheduling substrates instantiate it —
//! the simulator's [`EventQueue`](crate::event::EventQueue) (keys are
//! virtual ticks, payloads are simulation events) and the runtime's
//! cooperative scheduler (keys are quantized wall-clock microseconds,
//! payloads are task ids) — so the subtle invariants (overdue-first pop,
//! migrate-on-cursor-advance, FIFO order across migration) live exactly
//! once.
//!
//! Pop order is **exactly** ascending `(key, seq)`, where `seq` is the
//! push order: equal keys pop FIFO, and the order is identical to a
//! reference binary heap over `(key, seq)`. Seeded property tests on both
//! instantiations (`harness_properties.rs` in this crate, the coop module
//! in `omega-runtime`) pin that equivalence.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Number of wheel slots: one per key of the near-horizon window. Must be
/// a power of two (the slot index is `key & (WHEEL_SLOTS - 1)`). 4096
/// keys covers every step delay and timer duration the scenario suite
/// produces; anything longer takes the heap fallback.
pub const WHEEL_SLOTS: usize = 4096;

/// One queued entry: a payload due at `key`, tie-broken by push order.
struct Entry<T> {
    key: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.seq) == (other.key, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (key, seq) pops
        // first.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of payloads ordered by `(key, seq)`: O(1) push and pop
/// for keys inside the near-horizon window, heap fallback beyond it.
///
/// # Examples
///
/// ```
/// use omega_sim::wheel::TimerWheel;
///
/// let mut wheel: TimerWheel<&str> = TimerWheel::new();
/// wheel.push(5, "later");
/// wheel.push(2, "sooner");
/// let (key, _seq, payload) = wheel.pop().unwrap();
/// assert_eq!((key, payload), (2, "sooner"));
/// ```
///
/// # Ordering invariants
///
/// * Wheel slots only ever hold entries of a single key value (`cursor ≤
///   key < cursor + WHEEL_SLOTS` maps each admissible key to a distinct
///   slot), appended — and therefore popped — in `seq` order.
/// * The heap holds the *far* entries (`key ≥ cursor + WHEEL_SLOTS` at
///   push) and the *overdue* ones (`key < cursor` at push, which a plain
///   heap queue allowed and some callers exercise). Far entries migrate
///   into the wheel whenever `cursor` advances, **before** any later push
///   could target their slot directly, so same-key entries keep their
///   global `seq` order across the two structures.
pub struct TimerWheel<T> {
    /// Near-horizon buckets; slot `k & (WHEEL_SLOTS-1)` holds key `k`.
    slots: Box<[VecDeque<Entry<T>>]>,
    /// Lower bound of the wheel window; every wheel entry has `key ≥
    /// cursor`, every far-heap entry has `key ≥ cursor + WHEEL_SLOTS`
    /// (or is overdue).
    cursor: u64,
    /// Entries currently in the wheel.
    wheel_len: usize,
    /// Far and overdue entries (see type-level docs).
    far: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len())
            .field("cursor", &self.cursor)
            .field("wheel_len", &self.wheel_len)
            .field("far_len", &self.far.len())
            .finish()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            wheel_len: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    #[inline]
    fn slot_of(key: u64) -> usize {
        (key as usize) & (WHEEL_SLOTS - 1)
    }

    /// Queues `payload` at `key`, returning the assigned tie-break `seq`.
    /// Entries pushed earlier sort first among equal keys, making pop
    /// order fully deterministic.
    pub fn push(&mut self, key: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { key, seq, payload };
        if key >= self.cursor && key - self.cursor < WHEEL_SLOTS as u64 {
            self.slots[Self::slot_of(key)].push_back(entry);
            self.wheel_len += 1;
        } else {
            self.far.push(entry);
        }
        seq
    }

    /// Moves every far entry that now falls inside the wheel window into
    /// its slot. Heap pops come out in `(key, seq)` order, and any such
    /// entry was pushed before any same-key entry already pushed directly
    /// into the window (direct pushes require the window to cover the key,
    /// far pushes require it not to, and the window's lower edge only
    /// advances), so appending preserves global `seq` order per slot.
    fn migrate(&mut self) {
        let window_end = self.cursor.saturating_add(WHEEL_SLOTS as u64);
        while let Some(entry) = self.far.peek() {
            if entry.key < self.cursor || entry.key >= window_end {
                break;
            }
            let entry = self.far.pop().expect("peeked");
            self.slots[Self::slot_of(entry.key)].push_back(entry);
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the earliest `(key, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        // Overdue entries (pushed behind the cursor) are strictly earlier
        // than anything in the wheel, which holds only `key ≥ cursor`.
        if let Some(entry) = self.far.peek() {
            if entry.key < self.cursor {
                let entry = self.far.pop().expect("peeked");
                return Some((entry.key, entry.seq, entry.payload));
            }
        }
        if self.wheel_len == 0 {
            // Nothing near: jump straight to the earliest far entry.
            let earliest = self.far.peek()?.key;
            self.cursor = earliest;
            self.migrate();
        }
        loop {
            let slot = &mut self.slots[Self::slot_of(self.cursor)];
            if let Some(entry) = slot.pop_front() {
                debug_assert_eq!(entry.key, self.cursor);
                self.wheel_len -= 1;
                return Some((entry.key, entry.seq, entry.payload));
            }
            // Slot drained: advance the window one key and let any far
            // entry that just became near claim its slot before anyone can
            // push to it directly.
            self.cursor += 1;
            self.migrate();
        }
    }

    /// The key of the earliest pending entry.
    #[must_use]
    pub fn peek_key(&self) -> Option<u64> {
        let far = self.far.peek().map(|e| e.key);
        if let Some(k) = far {
            if k < self.cursor {
                return far;
            }
        }
        if self.wheel_len > 0 {
            for offset in 0..WHEEL_SLOTS as u64 {
                let k = self.cursor.saturating_add(offset);
                if let Some(entry) = self.slots[Self::slot_of(k)].front() {
                    if entry.key == k {
                        return Some(k);
                    }
                }
            }
        }
        far
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_with_fifo_ties_and_seqs() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.push(10, 'a'), 0);
        assert_eq!(wheel.push(1, 'b'), 1);
        assert_eq!(wheel.push(10, 'c'), 2);
        let order: Vec<(u64, u64, char)> = std::iter::from_fn(|| wheel.pop()).collect();
        assert_eq!(order, vec![(1, 1, 'b'), (10, 0, 'a'), (10, 2, 'c')]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn non_ord_payloads_are_accepted() {
        // The heap orders entries by (key, seq) alone, so payloads need no
        // Ord/Eq of their own.
        #[derive(Debug)]
        struct Opaque;
        let mut wheel = TimerWheel::new();
        wheel.push(WHEEL_SLOTS as u64 * 2, Opaque); // far: lives in the heap
        wheel.push(3, Opaque);
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.pop().unwrap().0, 3);
        assert_eq!(wheel.pop().unwrap().0, WHEEL_SLOTS as u64 * 2);
    }
}
