//! The simulation harness: wires actors, adversary, timers and crashes
//! together and runs the event loop to a horizon.

use omega_registers::{FootprintReport, MemorySpace, ProcessId, ProcessSet};

use crate::adversary::{Adversary, RunView, Synchronous};
use crate::chaos::{flap_spans, Campaign, ChaosPhase, ChaosStats};
use crate::crash::{CrashDirective, CrashPlan};
use crate::event::{EventKind, EventQueue};
use crate::metrics::{LeaderTimeline, StabilizationReport, WindowedStats};
use crate::process::{Actor, StepCtx};
use crate::time::SimTime;
use crate::timers::{ExactTimer, TimerModel};
use crate::trace::{EventTrace, Trace};

/// Configures and builds a [`Simulation`].
///
/// # Examples
///
/// ```
/// use omega_sim::{Simulation, SimTime, StepCtx};
/// use omega_sim::adversary::SeededRandom;
/// use omega_registers::ProcessId;
///
/// struct Idle;
/// impl omega_sim::Actor for Idle {
///     fn on_step(&mut self, _ctx: StepCtx) {}
///     fn on_timer(&mut self, _ctx: StepCtx) -> u64 { 10 }
///     fn current_leader(&self) -> Option<ProcessId> { Some(ProcessId::new(0)) }
/// }
///
/// let actors: Vec<Box<dyn omega_sim::Actor>> = vec![Box::new(Idle), Box::new(Idle)];
/// let report = Simulation::builder(actors)
///     .adversary(SeededRandom::new(1, 1, 4))
///     .horizon(1_000)
///     .run();
/// assert!(report.events_processed > 0);
/// ```
pub struct SimulationBuilder {
    actors: Vec<Box<dyn Actor>>,
    adversary: Box<dyn Adversary>,
    timers: Vec<Box<dyn TimerModel>>,
    crash_plan: CrashPlan,
    horizon: SimTime,
    sample_every: u64,
    stats_checkpoints: usize,
    memory: Option<MemorySpace>,
    trace_capacity: usize,
    record_trace: bool,
    campaign: Option<Campaign>,
}

impl SimulationBuilder {
    fn new(actors: Vec<Box<dyn Actor>>) -> Self {
        let n = actors.len();
        SimulationBuilder {
            actors,
            adversary: Box::new(Synchronous::new(1)),
            timers: (0..n)
                .map(|_| Box::new(ExactTimer) as Box<dyn TimerModel>)
                .collect(),
            crash_plan: CrashPlan::none(),
            horizon: SimTime::from_ticks(10_000),
            sample_every: 50,
            stats_checkpoints: 16,
            memory: None,
            trace_capacity: 0,
            record_trace: false,
            campaign: None,
        }
    }

    /// Sets the adversarial scheduler (default: [`Synchronous`] with period 1).
    #[must_use]
    pub fn adversary(mut self, adversary: impl Adversary + 'static) -> Self {
        self.adversary = Box::new(adversary);
        self
    }

    /// Sets every process's timer model from a per-process constructor
    /// (default: [`ExactTimer`] everywhere).
    #[must_use]
    pub fn timers_from(mut self, mut f: impl FnMut(ProcessId) -> Box<dyn TimerModel>) -> Self {
        self.timers = ProcessId::all(self.actors.len()).map(&mut f).collect();
        self
    }

    /// Sets the crash plan (default: fault-free).
    #[must_use]
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the run horizon in ticks (default: 10 000).
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = SimTime::from_ticks(ticks);
        self
    }

    /// Sets the sampling cadence in ticks (default: 50).
    ///
    /// # Panics
    ///
    /// Panics if `ticks == 0`.
    #[must_use]
    pub fn sample_every(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "sampling cadence must be positive");
        self.sample_every = ticks;
        self
    }

    /// Number of cumulative statistics/footprint checkpoints spread over the
    /// run (default: 16). Requires [`memory`](Self::memory).
    #[must_use]
    pub fn stats_checkpoints(mut self, count: usize) -> Self {
        self.stats_checkpoints = count;
        self
    }

    /// Attaches the memory space so access statistics and footprints are
    /// checkpointed during the run.
    #[must_use]
    pub fn memory(mut self, space: MemorySpace) -> Self {
        self.memory = Some(space);
        self
    }

    /// Enables event tracing, retaining the most recent `capacity` events
    /// in [`RunReport::trace`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace_capacity = capacity;
        self
    }

    /// Attaches a chaos [`Campaign`]: its phases fire as ordinary simulator
    /// events at their scheduled ticks (and are therefore recorded in
    /// traces and replayed byte-identically). Partition and heal phases
    /// require an attached [`memory`](Self::memory).
    ///
    /// # Panics
    ///
    /// Panics if the campaign fails [`Campaign::validate`] for the actor
    /// count.
    #[must_use]
    pub fn campaign(mut self, campaign: Campaign) -> Self {
        if let Err(msg) = campaign.validate(self.actors.len()) {
            panic!("{msg}");
        }
        self.campaign = Some(campaign);
        self
    }

    /// Records the **complete** event sequence of the run into
    /// [`RunReport::recording`] as a [`Trace`] — the record half of
    /// record/replay (see [`run_replay`](Self::run_replay)).
    #[must_use]
    pub fn record_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Runs the simulation to the horizon and returns the report.
    #[must_use]
    pub fn run(self) -> RunReport {
        Simulation::from_builder(self).run_to_horizon()
    }

    /// Replays a recorded [`Trace`] against this configuration instead of
    /// running the live event loop: events fire in exactly the recorded
    /// order and the adversary/timer models are never consulted, so the
    /// replayed run is byte-identical to the live one that produced the
    /// trace (same actors, same crash plan, same checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if the trace's process count does not match the actor count.
    #[must_use]
    pub fn run_replay(self, trace: &Trace) -> RunReport {
        Simulation::from_builder(self).replay_events(trace)
    }
}

/// Wall-clock timing of one simulated run: how long the event loop took and
/// how many events it retired per second. This is the throughput metric the
/// perf regression trail (`BENCH_scenarios.json`) tracks alongside the
/// model-level read/write counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock {
    /// Wall-clock duration of the event loop (excludes actor construction).
    pub elapsed: std::time::Duration,
}

impl WallClock {
    /// Elapsed wall-clock milliseconds (fractional).
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }

    /// Events per wall-clock second, given the number of events retired
    /// (0.0 when the elapsed time is too small to measure).
    #[must_use]
    pub fn events_per_sec(&self, events: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        }
    }
}

/// A configured simulation ready to run.
pub struct Simulation {
    actors: Vec<Box<dyn Actor>>,
    adversary: Box<dyn Adversary>,
    timers: Vec<Box<dyn TimerModel>>,
    crash_plan: CrashPlan,
    horizon: SimTime,
    sample_every: u64,
    stats_checkpoints: usize,
    memory: Option<MemorySpace>,
    trace: Option<EventTrace>,
    recording: Option<Trace>,

    queue: EventQueue,
    crashed: ProcessSet,
    timer_epochs: Vec<u64>,
    pending_leader_crashes: Vec<SimTime>,
    campaign: Option<Campaign>,
    /// Active storm envelope `(factor, jitter)`; stretches live-scheduled
    /// step delays.
    storm: Option<(u64, u64)>,
    partition_since: Option<SimTime>,
    storm_since: Option<SimTime>,
    report: RunReport,
}

impl Simulation {
    /// Starts configuring a simulation over the given actors; actor `i`
    /// plays process `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty.
    #[must_use]
    pub fn builder(actors: Vec<Box<dyn Actor>>) -> SimulationBuilder {
        assert!(!actors.is_empty(), "a simulation needs at least one actor");
        SimulationBuilder::new(actors)
    }

    fn from_builder(b: SimulationBuilder) -> Self {
        let n = b.actors.len();
        assert_eq!(
            b.timers.len(),
            n,
            "need exactly one timer model per process"
        );
        let pending_leader_crashes = b
            .crash_plan
            .directives()
            .iter()
            .filter_map(|d| match *d {
                CrashDirective::LeaderAt { time } => Some(time),
                CrashDirective::At { .. } => None,
            })
            .collect();
        Simulation {
            queue: EventQueue::new(),
            crashed: ProcessSet::new(n),
            timer_epochs: vec![0; n],
            pending_leader_crashes,
            campaign: b.campaign,
            storm: None,
            partition_since: None,
            storm_since: None,
            report: RunReport::new(n, b.horizon),
            actors: b.actors,
            adversary: b.adversary,
            timers: b.timers,
            crash_plan: b.crash_plan,
            horizon: b.horizon,
            sample_every: b.sample_every,
            stats_checkpoints: b.stats_checkpoints,
            memory: b.memory,
            trace: if b.trace_capacity > 0 {
                Some(EventTrace::new(b.trace_capacity))
            } else {
                None
            },
            recording: if b.record_trace {
                Some(Trace::new(n, b.horizon.ticks()))
            } else {
                None
            },
        }
    }

    fn n(&self) -> usize {
        self.actors.len()
    }

    fn leaders(&self) -> Vec<Option<ProcessId>> {
        (0..self.n())
            .map(|i| {
                if self.crashed.contains(ProcessId::new(i)) {
                    None
                } else {
                    self.actors[i].current_leader()
                }
            })
            .collect()
    }

    fn crash(&mut self, pid: ProcessId) {
        self.crashed.insert(pid);
    }

    fn sample(&mut self, now: SimTime) {
        // Resolve due leader-relative crash directives.
        let leaders = self.leaders();
        let mut resolved = Vec::new();
        for (i, &when) in self.pending_leader_crashes.iter().enumerate() {
            if now >= when {
                if let Some(target) = plurality(&leaders) {
                    resolved.push((i, target));
                }
            }
        }
        for &(i, target) in resolved.iter().rev() {
            self.pending_leader_crashes.remove(i);
            self.crash(target);
        }
        let leaders = self.leaders();
        self.adversary.observe(&RunView {
            now,
            leaders: &leaders,
            crashed: &self.crashed,
        });
        self.report
            .timeline
            .push_with_steps(now, leaders, self.report.steps_taken.clone());
    }

    fn checkpoint(&mut self, now: SimTime) {
        if let Some(space) = &self.memory {
            self.report.windowed.push(now, space.stats());
            self.report.footprints.push((now, space.footprint()));
        }
    }

    fn run_to_horizon(mut self) -> RunReport {
        let started = std::time::Instant::now();
        let n = self.n();
        // Schedule initial steps and timers.
        for pid in ProcessId::all(n) {
            let delay = self.adversary.next_step_delay(pid, SimTime::ZERO).max(1);
            self.queue
                .schedule(SimTime::ZERO + delay, EventKind::Step(pid));
            let x = self.actors[pid.index()].initial_timeout();
            let d = self.timers[pid.index()].duration(SimTime::ZERO, x).max(1);
            self.queue
                .schedule(SimTime::ZERO + d, EventKind::TimerExpire(pid, 0));
        }
        // Scripted crashes.
        for (time, pid) in self.crash_plan.fixed_crashes() {
            self.queue.schedule(time, EventKind::Crash(pid));
        }
        // Chaos-campaign phase boundaries. An `until` beyond the horizon
        // simply never fires: the phase stays active to the end and
        // `finish` closes its accounting.
        if let Some(campaign) = &self.campaign {
            for (i, phase) in campaign.phases.iter().enumerate() {
                let i = u32::try_from(i).expect("phase count fits u32");
                // A flap is one phase realized as many install/heal pairs:
                // the same ChaosStart/ChaosEnd events fire once per
                // half-cycle, so traces record and replay it natively.
                if let ChaosPhase::Flap {
                    period,
                    from,
                    until,
                    ..
                } = *phase
                {
                    for (install, heal) in flap_spans(period, from, until) {
                        self.queue
                            .schedule(SimTime::from_ticks(install), EventKind::ChaosStart(i));
                        self.queue
                            .schedule(SimTime::from_ticks(heal), EventKind::ChaosEnd(i));
                    }
                    continue;
                }
                self.queue
                    .schedule(SimTime::from_ticks(phase.start()), EventKind::ChaosStart(i));
                if let Some(end) = phase.end() {
                    self.queue
                        .schedule(SimTime::from_ticks(end), EventKind::ChaosEnd(i));
                }
            }
        }
        // Sampling cadence.
        let mut t = SimTime::ZERO;
        while t <= self.horizon {
            self.queue.schedule(t, EventKind::Sample);
            t += self.sample_every;
        }

        // Stats checkpoints (cheap enough to interleave with samples).
        let checkpoint_every = if self.stats_checkpoints > 0 {
            (self.horizon.ticks() / self.stats_checkpoints as u64).max(1)
        } else {
            0
        };

        self.checkpoint(SimTime::ZERO);
        let mut next_checkpoint = checkpoint_every;

        while let Some(event) = self.queue.pop() {
            if event.time > self.horizon {
                break;
            }
            let now = event.time;
            if checkpoint_every > 0 && now.ticks() >= next_checkpoint {
                self.checkpoint(now);
                next_checkpoint += checkpoint_every;
            }
            self.apply_event(now, event.kind, true);
        }

        self.finish(started)
    }

    /// Re-executes a recorded event sequence. No events are generated: the
    /// trace drives the run, the filters (crash set, timer epochs) evolve
    /// exactly as they did live, and the adversary/timer models are never
    /// consulted for delays.
    fn replay_events(mut self, trace: &Trace) -> RunReport {
        let started = std::time::Instant::now();
        assert_eq!(
            trace.n,
            self.n(),
            "trace records {} processes but the simulation has {}",
            trace.n,
            self.n()
        );
        assert_eq!(
            trace.horizon,
            self.horizon.ticks(),
            "trace horizon {} does not match the configured horizon {}",
            trace.horizon,
            self.horizon.ticks()
        );
        let checkpoint_every = if self.stats_checkpoints > 0 {
            (self.horizon.ticks() / self.stats_checkpoints as u64).max(1)
        } else {
            0
        };
        self.checkpoint(SimTime::ZERO);
        let mut next_checkpoint = checkpoint_every;
        for entry in trace.events() {
            let now = entry.time;
            if checkpoint_every > 0 && now.ticks() >= next_checkpoint {
                self.checkpoint(now);
                next_checkpoint += checkpoint_every;
            }
            self.apply_event(now, entry.kind, false);
        }
        self.finish(started)
    }

    /// Applies one popped event: counting, tracing, the stale/crashed
    /// filters, and the actor callbacks. `live` additionally schedules the
    /// follow-up event (next step / re-armed timer); replay passes `false`
    /// because the recorded sequence already contains every follow-up.
    fn apply_event(&mut self, now: SimTime, kind: EventKind, live: bool) {
        self.report.events_processed += 1;
        if let Some(trace) = &mut self.trace {
            trace.record(now, kind);
        }
        if let Some(rec) = &mut self.recording {
            rec.record(now, kind);
        }
        match kind {
            EventKind::Step(pid) => {
                if self.crashed.contains(pid) {
                    return;
                }
                let ctx = StepCtx { pid, now };
                self.actors[pid.index()].on_step(ctx);
                self.report.steps_taken[pid.index()] += 1;
                if live {
                    let mut delay = self.adversary.next_step_delay(pid, now).max(1);
                    if let Some((factor, jitter)) = self.storm {
                        // Deterministic stretch: the storm multiplies the
                        // adversary's delay and smears it with a jitter
                        // derived from the event count, so storms replay
                        // exactly (replays take times from the trace).
                        delay = delay.saturating_mul(factor.max(1));
                        if jitter > 0 {
                            delay += self.report.events_processed % (jitter + 1);
                        }
                    }
                    self.queue.schedule(now + delay, EventKind::Step(pid));
                }
            }
            EventKind::TimerExpire(pid, epoch) => {
                if self.crashed.contains(pid) || self.timer_epochs[pid.index()] != epoch {
                    return;
                }
                let ctx = StepCtx { pid, now };
                let x = self.actors[pid.index()].on_timer(ctx);
                self.report.timer_fires[pid.index()] += 1;
                let epoch = epoch + 1;
                self.timer_epochs[pid.index()] = epoch;
                if live {
                    let d = self.timers[pid.index()].duration(now, x).max(1);
                    self.queue
                        .schedule(now + d, EventKind::TimerExpire(pid, epoch));
                }
            }
            EventKind::Crash(pid) => {
                self.crash(pid);
            }
            EventKind::Sample => {
                self.sample(now);
            }
            EventKind::ChaosStart(i) => {
                self.chaos_start(i as usize, now, live);
            }
            EventKind::ChaosEnd(i) => {
                self.chaos_end(i as usize, now);
            }
        }
    }

    fn chaos_memory(&self) -> &MemorySpace {
        self.memory
            .as_ref()
            .expect("campaign partitions require an attached memory space")
    }

    /// Begins phase `i` of the campaign. Mutates simulator state the same
    /// way live and on replay; only the *scheduling* of a recovered
    /// process's next step/timer is live-only (replay already carries those
    /// events in the trace).
    fn chaos_start(&mut self, i: usize, now: SimTime, live: bool) {
        let phase = self
            .campaign
            .as_ref()
            .expect("chaos event without a campaign")
            .phases[i]
            .clone();
        match phase {
            ChaosPhase::Partition { groups, .. } => {
                self.chaos_memory().install_partition(&groups);
                self.report.chaos.partitions += 1;
                self.partition_since = Some(now);
            }
            ChaosPhase::Storm { factor, jitter, .. } => {
                self.storm = Some((factor, jitter));
                self.storm_since = Some(now);
            }
            ChaosPhase::Wave { crash, recover, .. } => {
                for pid in crash {
                    if !self.crashed.contains(pid) {
                        self.crash(pid);
                        self.report.chaos.wave_crashes += 1;
                    }
                }
                for pid in recover {
                    if !self.crashed.contains(pid) {
                        continue;
                    }
                    self.crashed.remove(pid);
                    // Invalidate any stale pre-crash timer still in flight.
                    let epoch = self.timer_epochs[pid.index()] + 1;
                    self.timer_epochs[pid.index()] = epoch;
                    self.report.chaos.wave_recoveries += 1;
                    if live {
                        let delay = self.adversary.next_step_delay(pid, now).max(1);
                        self.queue.schedule(now + delay, EventKind::Step(pid));
                        let x = self.actors[pid.index()].initial_timeout();
                        let d = self.timers[pid.index()].duration(now, x).max(1);
                        self.queue
                            .schedule(now + d, EventKind::TimerExpire(pid, epoch));
                    }
                }
            }
            ChaosPhase::Heal { .. } => {
                self.heal_partition(now);
            }
            ChaosPhase::Cut {
                blinded, hidden, ..
            } => {
                self.chaos_memory().install_cut(&blinded, &hidden);
                self.report.chaos.partitions += 1;
                self.partition_since = Some(now);
            }
            ChaosPhase::Flap { groups, .. } => {
                // Fires once per cut half-cycle (see `run_to_horizon`).
                self.chaos_memory().install_partition(&groups);
                self.report.chaos.partitions += 1;
                self.partition_since = Some(now);
            }
        }
    }

    /// Ends phase `i` (partition heals, storm clears).
    fn chaos_end(&mut self, i: usize, now: SimTime) {
        let phase = &self
            .campaign
            .as_ref()
            .expect("chaos event without a campaign")
            .phases[i];
        match phase {
            ChaosPhase::Partition { .. } | ChaosPhase::Cut { .. } | ChaosPhase::Flap { .. } => {
                self.heal_partition(now);
            }
            ChaosPhase::Storm { .. } => {
                self.storm = None;
                if let Some(since) = self.storm_since.take() {
                    self.report.chaos.storm_ticks += now.since(since);
                }
            }
            ChaosPhase::Wave { .. } | ChaosPhase::Heal { .. } => {}
        }
    }

    fn heal_partition(&mut self, now: SimTime) {
        if let Some(since) = self.partition_since.take() {
            self.chaos_memory().heal_partition();
            self.report.chaos.partition_ticks += now.since(since);
            self.report.chaos.last_heal_at = Some(now.ticks());
        }
    }

    fn finish(mut self, started: std::time::Instant) -> RunReport {
        let n = self.n();
        // Close the accounting of phases still active at the horizon (the
        // partition itself stays installed: the run is over).
        if let Some(since) = self.partition_since.take() {
            self.report.chaos.partition_ticks += self.horizon.since(since);
        }
        if let Some(since) = self.storm_since.take() {
            self.report.chaos.storm_ticks += self.horizon.since(since);
        }
        self.checkpoint(self.horizon);
        self.report.wall.elapsed = started.elapsed();
        self.report.trace = self.trace.take();
        self.report.recording = self.recording.take();
        self.report.crashed = self.crashed.clone();
        let mut correct = ProcessSet::full(n);
        for pid in self.crashed.iter() {
            correct.remove(pid);
        }
        self.report.correct = correct;
        self.report
    }
}

/// The identity most frequently reported as leader, ties broken towards the
/// smaller identity.
fn plurality(leaders: &[Option<ProcessId>]) -> Option<ProcessId> {
    let mut counts: Vec<(ProcessId, usize)> = Vec::new();
    for leader in leaders.iter().flatten() {
        match counts.iter_mut().find(|(p, _)| p == leader) {
            Some((_, c)) => *c += 1,
            None => counts.push((*leader, 1)),
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
        .map(|(p, _)| p)
}

/// Everything measured during one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// Configured horizon of the run.
    pub horizon: SimTime,
    /// Sampled leader estimates.
    pub timeline: LeaderTimeline,
    /// Cumulative statistics checkpoints (empty without an attached memory).
    pub windowed: WindowedStats,
    /// Footprint checkpoints (empty without an attached memory).
    pub footprints: Vec<(SimTime, FootprintReport)>,
    /// Event trace (only with [`SimulationBuilder::trace`] enabled).
    pub trace: Option<EventTrace>,
    /// Complete binary-encodable event recording (only with
    /// [`SimulationBuilder::record_trace`] enabled).
    pub recording: Option<Trace>,
    /// Processes that crashed during the run.
    pub crashed: ProcessSet,
    /// Processes that survived the whole run.
    pub correct: ProcessSet,
    /// Total events processed.
    pub events_processed: u64,
    /// Wall-clock timing of the event loop.
    pub wall: WallClock,
    /// Main-task steps executed, per process.
    pub steps_taken: Vec<u64>,
    /// Timer expirations handled, per process.
    pub timer_fires: Vec<u64>,
    /// What the chaos campaign did (all-zero without a campaign).
    pub chaos: ChaosStats,
}

impl RunReport {
    fn new(n: usize, horizon: SimTime) -> Self {
        RunReport {
            horizon,
            timeline: LeaderTimeline::new(),
            windowed: WindowedStats::new(),
            footprints: Vec::new(),
            trace: None,
            recording: None,
            crashed: ProcessSet::new(n),
            correct: ProcessSet::full(n),
            events_processed: 0,
            wall: WallClock::default(),
            steps_taken: vec![0; n],
            timer_fires: vec![0; n],
            chaos: ChaosStats::default(),
        }
    }

    /// Stabilization report over the correct processes, if the run settled.
    #[must_use]
    pub fn stabilization(&self) -> Option<StabilizationReport> {
        self.timeline.stabilization(&self.correct)
    }

    /// The leader the run stabilized on, if any.
    #[must_use]
    pub fn elected_leader(&self) -> Option<ProcessId> {
        self.stabilization().map(|r| r.leader)
    }

    /// Whether the run stabilized and stayed stable for at least
    /// `min_fraction` of the horizon.
    #[must_use]
    pub fn stabilized_for(&self, min_fraction: f64) -> bool {
        self.stabilization().is_some_and(|r| {
            let stable_ticks = self.horizon.since(r.stable_from);
            (stable_ticks as f64) >= min_fraction * self.horizon.ticks() as f64
        })
    }

    /// Events retired per wall-clock second of the event loop.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.wall.events_per_sec(self.events_processed)
    }

    /// A one-screen human-readable summary of the run.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "horizon          : {} ticks", self.horizon.ticks());
        let _ = writeln!(out, "events processed : {}", self.events_processed);
        let _ = writeln!(
            out,
            "wall clock       : {:.1} ms ({:.0} events/sec)",
            self.wall.elapsed_ms(),
            self.events_per_sec()
        );
        let _ = writeln!(
            out,
            "crashed          : {:?}  (correct: {:?})",
            self.crashed, self.correct
        );
        if self.chaos.any() {
            let _ = writeln!(out, "chaos            : {:?}", self.chaos);
        }
        match self.stabilization() {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "stabilized       : leader {} from {} ({} samples)",
                    s.leader,
                    s.stable_from.ticks(),
                    s.stable_samples
                );
            }
            None => {
                let _ = writeln!(out, "stabilized       : NO");
            }
        }
        for pid in ProcessId::all(self.steps_taken.len()) {
            let _ = writeln!(
                out,
                "  {pid}: {} steps, {} timer fires, {} estimate changes",
                self.steps_taken[pid.index()],
                self.timer_fires[pid.index()],
                self.timeline.changes_of(pid)
            );
        }
        if let Some(tail) = self.windowed.tail(0.25) {
            let writers: Vec<String> = tail.writer_set().iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "tail (last 25%)  : writers [{}], {} writes, {} reads",
                writers.join(","),
                tail.stats.total_writes(),
                tail.stats.total_reads()
            );
        }
        if let Some((_, last)) = self.windowed.snapshots().last() {
            let scan = last.scan();
            if scan.reads_skipped > 0 || scan.shard_passes > 0 {
                let _ = writeln!(
                    out,
                    "scan savings     : {} reads skipped ({} rows), {} shard passes",
                    scan.reads_skipped, scan.rows_skipped, scan.shard_passes
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SeededRandom;
    use crate::timers::AffineTimer;

    /// Actor that elects the smallest non-crashed id it has "heard from";
    /// purely local, used to exercise the harness plumbing.
    struct FixedLeader {
        leader: ProcessId,
        steps: u64,
    }

    impl Actor for FixedLeader {
        fn on_step(&mut self, _ctx: StepCtx) {
            self.steps += 1;
        }

        fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
            5
        }

        fn current_leader(&self) -> Option<ProcessId> {
            Some(self.leader)
        }
    }

    fn fixed_actors(n: usize, leader: usize) -> Vec<Box<dyn Actor>> {
        (0..n)
            .map(|_| {
                Box::new(FixedLeader {
                    leader: ProcessId::new(leader),
                    steps: 0,
                }) as Box<dyn Actor>
            })
            .collect()
    }

    #[test]
    fn runs_to_horizon_and_reports() {
        let report = Simulation::builder(fixed_actors(3, 1))
            .horizon(500)
            .sample_every(10)
            .run();
        assert!(report.events_processed > 0);
        assert!(report.steps_taken.iter().all(|&s| s > 0));
        assert!(report.timer_fires.iter().all(|&f| f > 0));
        assert_eq!(report.correct.len(), 3);
        let stab = report.stabilization().unwrap();
        assert_eq!(stab.leader, ProcessId::new(1));
        assert!(report.stabilized_for(0.9));
        assert_eq!(report.elected_leader(), Some(ProcessId::new(1)));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            Simulation::builder(fixed_actors(4, 0))
                .adversary(SeededRandom::new(seed, 1, 7))
                .timers_from(|_| Box::new(AffineTimer::new(2, 1)))
                .horizon(2_000)
                .run()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.steps_taken, b.steps_taken);
        assert_eq!(a.timer_fires, b.timer_fires);
        // A different seed almost surely changes the counts.
        assert_ne!(a.steps_taken, c.steps_taken);
    }

    #[test]
    fn fixed_crash_stops_a_process() {
        let report = Simulation::builder(fixed_actors(3, 0))
            .crash_plan(
                CrashPlan::none().with_crash_at(SimTime::from_ticks(100), ProcessId::new(2)),
            )
            .horizon(1_000)
            .run();
        assert!(report.crashed.contains(ProcessId::new(2)));
        assert_eq!(report.correct.len(), 2);
        // p2 stepped only before the crash: far fewer steps than p0.
        assert!(report.steps_taken[2] < report.steps_taken[0] / 2);
    }

    #[test]
    fn leader_crash_directive_kills_plurality_leader() {
        let report = Simulation::builder(fixed_actors(3, 1))
            .crash_plan(CrashPlan::none().with_leader_crash_at(SimTime::from_ticks(200)))
            .horizon(1_000)
            .sample_every(10)
            .run();
        assert!(report.crashed.contains(ProcessId::new(1)));
        // The fixed actors keep trusting p1 though it crashed: no valid
        // stabilization over the correct set.
        assert!(report.stabilization().is_none());
    }

    #[test]
    fn checkpoints_collected_with_memory() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let _reg = space.nat_register("R", ProcessId::new(0), 0);
        let report = Simulation::builder(fixed_actors(2, 0))
            .memory(space)
            .stats_checkpoints(4)
            .horizon(400)
            .run();
        assert!(report.windowed.snapshots().len() >= 4);
        assert_eq!(report.windowed.snapshots().len(), report.footprints.len());
    }

    #[test]
    #[should_panic(expected = "at least one actor")]
    fn empty_actor_set_rejected() {
        let _ = Simulation::builder(Vec::new());
    }

    #[test]
    fn summary_renders_key_facts() {
        let report = Simulation::builder(fixed_actors(2, 1))
            .horizon(300)
            .sample_every(10)
            .run();
        let out = report.summary();
        assert!(out.contains("horizon          : 300"));
        assert!(out.contains("stabilized       : leader p1"));
        assert!(out.contains("p0:"));
        let no_stab = Simulation::builder(fixed_actors(1, 0))
            .crash_plan(CrashPlan::none().with_crash_at(SimTime::from_ticks(1), ProcessId::new(0)))
            .horizon(100)
            .run();
        assert!(no_stab.summary().contains("stabilized       : NO"));
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let config = || {
            Simulation::builder(fixed_actors(4, 2))
                .adversary(SeededRandom::new(7, 1, 5))
                .timers_from(|_| Box::new(AffineTimer::new(3, 2)))
                .crash_plan(
                    CrashPlan::none().with_crash_at(SimTime::from_ticks(900), ProcessId::new(3)),
                )
                .horizon(2_000)
                .sample_every(25)
                .record_trace()
        };
        let live = config().run();
        let trace = live.recording.as_ref().expect("recording enabled");
        assert_eq!(trace.n, 4);
        assert_eq!(trace.horizon, 2_000);
        assert_eq!(trace.len(), live.events_processed as usize);

        // Round-trip the trace through the binary format, then replay it.
        let decoded = Trace::decode(&trace.encode()).unwrap();
        let replayed = config().run_replay(&decoded);

        assert_eq!(replayed.events_processed, live.events_processed);
        assert_eq!(replayed.steps_taken, live.steps_taken);
        assert_eq!(replayed.timer_fires, live.timer_fires);
        assert_eq!(
            replayed.timeline.samples(),
            live.timeline.samples(),
            "replayed timeline must match the live run sample-for-sample"
        );
        assert_eq!(replayed.crashed, live.crashed);
        assert_eq!(replayed.correct, live.correct);
        // Re-recording during replay reproduces the trace byte-for-byte.
        let re_recorded = replayed.recording.expect("recording enabled on replay");
        assert_eq!(re_recorded.encode(), decoded.encode());
    }

    #[test]
    fn replay_handles_leader_relative_crashes() {
        let config = || {
            Simulation::builder(fixed_actors(3, 1))
                .crash_plan(CrashPlan::none().with_leader_crash_at(SimTime::from_ticks(200)))
                .horizon(1_000)
                .sample_every(10)
                .record_trace()
        };
        let live = config().run();
        assert!(live.crashed.contains(ProcessId::new(1)));
        let trace = live.recording.clone().unwrap();
        let replayed = config().run_replay(&trace);
        // The leader-relative crash resolves to the same victim because the
        // actor states evolve identically up to the resolving sample.
        assert!(replayed.crashed.contains(ProcessId::new(1)));
        assert_eq!(replayed.steps_taken, live.steps_taken);
        assert_eq!(replayed.timeline.samples(), live.timeline.samples());
    }

    #[test]
    #[should_panic(expected = "trace records 2 processes")]
    fn replay_rejects_mismatched_process_count() {
        let trace = Trace::new(2, 1_000);
        let _ = Simulation::builder(fixed_actors(3, 0))
            .horizon(1_000)
            .run_replay(&trace);
    }

    #[test]
    fn storm_stretches_step_service_time() {
        let run = |campaign: Option<Campaign>| {
            let mut b = Simulation::builder(fixed_actors(3, 0)).horizon(4_000);
            if let Some(c) = campaign {
                b = b.campaign(c);
            }
            b.run()
        };
        let calm = run(None);
        let stormy = run(Some(Campaign::new().phase(ChaosPhase::Storm {
            factor: 8,
            jitter: 3,
            from: 500,
            until: 3_500,
        })));
        assert!(
            stormy.steps_taken[0] < calm.steps_taken[0] / 2,
            "storm must slow steps: {} vs {}",
            stormy.steps_taken[0],
            calm.steps_taken[0]
        );
        assert_eq!(stormy.chaos.storm_ticks, 3_000);
        assert!(!calm.chaos.any());
    }

    #[test]
    fn partition_phase_installs_and_heals_the_memory() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(3);
        let _reg = space.nat_register("R", ProcessId::new(0), 0);
        let campaign = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![
                vec![ProcessId::new(0)],
                vec![ProcessId::new(1), ProcessId::new(2)],
            ],
            from: 100,
            until: 700,
        });
        let report = Simulation::builder(fixed_actors(3, 0))
            .memory(space.clone())
            .campaign(campaign)
            .horizon(1_000)
            .run();
        assert_eq!(report.chaos.partitions, 1);
        assert_eq!(report.chaos.partition_ticks, 600);
        assert_eq!(report.chaos.last_heal_at, Some(700));
        assert!(!space.partition_active(), "healed by the end");
    }

    #[test]
    fn unhealed_partition_accounts_to_the_horizon() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let campaign = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            from: 400,
            until: 5_000, // beyond the horizon: never heals
        });
        let report = Simulation::builder(fixed_actors(2, 0))
            .memory(space.clone())
            .campaign(campaign)
            .horizon(1_000)
            .run();
        assert_eq!(report.chaos.partition_ticks, 600);
        assert_eq!(report.chaos.last_heal_at, None);
        assert!(space.partition_active(), "still cut at the horizon");
    }

    #[test]
    fn flap_phase_oscillates_and_matches_planned_stats() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let campaign = Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![ProcessId::new(0)], vec![ProcessId::new(1)]],
            period: 150,
            from: 100,
            until: 700,
        });
        let report = Simulation::builder(fixed_actors(2, 0))
            .memory(space.clone())
            .campaign(campaign.clone())
            .horizon(1_000)
            .run();
        assert_eq!(report.chaos.partitions, 2, "one install per half-cycle");
        assert_eq!(report.chaos.partition_ticks, 300);
        assert_eq!(report.chaos.last_heal_at, Some(550));
        assert!(!space.partition_active(), "flaps end healed");
        assert_eq!(
            report.chaos,
            campaign.planned_stats(1_000),
            "sim accounting and the planned mirror agree"
        );
    }

    #[test]
    fn cut_phase_blinds_one_side_and_heals() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let campaign = Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![ProcessId::new(0)],
            hidden: vec![ProcessId::new(1)],
            from: 100,
            until: 700,
        });
        let report = Simulation::builder(fixed_actors(2, 0))
            .memory(space.clone())
            .campaign(campaign.clone())
            .horizon(1_000)
            .run();
        assert_eq!(report.chaos.partitions, 1);
        assert_eq!(report.chaos.partition_ticks, 600);
        assert_eq!(report.chaos.last_heal_at, Some(700));
        assert!(!space.partition_active(), "healed by the end");
        assert_eq!(report.chaos, campaign.planned_stats(1_000));
    }

    #[test]
    fn hostile_campaign_run_replays_identically() {
        use omega_registers::MemorySpace;
        let campaign = Campaign::new()
            .phase(ChaosPhase::Cut {
                blinded: vec![ProcessId::new(0), ProcessId::new(1)],
                hidden: vec![ProcessId::new(2), ProcessId::new(3)],
                from: 200,
                until: 800,
            })
            .phase(ChaosPhase::Flap {
                groups: vec![
                    vec![ProcessId::new(0), ProcessId::new(2)],
                    vec![ProcessId::new(1), ProcessId::new(3)],
                ],
                period: 250,
                from: 1_000,
                until: 2_300,
            });
        let config = |space: &MemorySpace| {
            Simulation::builder(fixed_actors(4, 1))
                .adversary(SeededRandom::new(13, 1, 6))
                .memory(space.clone())
                .campaign(campaign.clone())
                .horizon(2_500)
                .sample_every(25)
                .record_trace()
        };
        let live_space = MemorySpace::new(4);
        let live = config(&live_space).run();
        assert_eq!(live.chaos, campaign.planned_stats(2_500));
        let trace = Trace::decode(&live.recording.as_ref().unwrap().encode()).unwrap();

        let replay_space = MemorySpace::new(4);
        let replayed = config(&replay_space).run_replay(&trace);
        assert_eq!(replayed.steps_taken, live.steps_taken);
        assert_eq!(replayed.timeline.samples(), live.timeline.samples());
        assert_eq!(replayed.chaos, live.chaos, "chaos counters replay too");
        let re_recorded = replayed.recording.expect("recording enabled on replay");
        assert_eq!(re_recorded.encode(), trace.encode());
    }

    #[test]
    fn wave_recovery_resumes_a_crashed_process() {
        let campaign = Campaign::new()
            .phase(ChaosPhase::Wave {
                crash: vec![ProcessId::new(2)],
                recover: vec![],
                at: 200,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![],
                recover: vec![ProcessId::new(2)],
                at: 600,
            });
        let report = Simulation::builder(fixed_actors(3, 0))
            .campaign(campaign)
            .horizon(1_000)
            .run();
        assert_eq!(report.chaos.wave_crashes, 1);
        assert_eq!(report.chaos.wave_recoveries, 1);
        assert!(!report.crashed.contains(ProcessId::new(2)), "recovered");
        assert_eq!(report.correct.len(), 3);
        // It missed the middle of the run but stepped before and after.
        assert!(report.steps_taken[2] > 0);
        assert!(report.steps_taken[2] < report.steps_taken[0]);
    }

    #[test]
    fn campaign_run_replays_identically() {
        use omega_registers::MemorySpace;
        let campaign = Campaign::new()
            .phase(ChaosPhase::Partition {
                groups: vec![
                    vec![ProcessId::new(0), ProcessId::new(1)],
                    vec![ProcessId::new(2), ProcessId::new(3)],
                ],
                from: 300,
                until: 1_200,
            })
            .phase(ChaosPhase::Storm {
                factor: 3,
                jitter: 2,
                from: 1_300,
                until: 1_700,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![ProcessId::new(3)],
                recover: vec![],
                at: 1_400,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![],
                recover: vec![ProcessId::new(3)],
                at: 1_800,
            });
        let config = |space: &MemorySpace| {
            Simulation::builder(fixed_actors(4, 1))
                .adversary(SeededRandom::new(11, 1, 6))
                .memory(space.clone())
                .campaign(campaign.clone())
                .horizon(2_500)
                .sample_every(25)
                .record_trace()
        };
        let live_space = MemorySpace::new(4);
        let _ = live_space.nat_register("R", ProcessId::new(0), 0);
        let live = config(&live_space).run();
        assert!(live.chaos.any());
        let trace = Trace::decode(&live.recording.as_ref().unwrap().encode()).unwrap();

        let replay_space = MemorySpace::new(4);
        let _ = replay_space.nat_register("R", ProcessId::new(0), 0);
        let replayed = config(&replay_space).run_replay(&trace);
        assert_eq!(replayed.steps_taken, live.steps_taken);
        assert_eq!(replayed.timer_fires, live.timer_fires);
        assert_eq!(replayed.timeline.samples(), live.timeline.samples());
        assert_eq!(replayed.chaos, live.chaos, "chaos counters replay too");
        let re_recorded = replayed.recording.expect("recording enabled on replay");
        assert_eq!(re_recorded.encode(), trace.encode());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn campaign_validation_happens_at_build() {
        let campaign = Campaign::new().phase(ChaosPhase::Wave {
            crash: vec![ProcessId::new(9)],
            recover: vec![],
            at: 1,
        });
        let _ = Simulation::builder(fixed_actors(2, 0)).campaign(campaign);
    }

    #[test]
    fn timeline_samples_carry_cumulative_steps() {
        let report = Simulation::builder(fixed_actors(2, 0))
            .horizon(500)
            .sample_every(50)
            .run();
        let samples = report.timeline.samples();
        assert!(samples.iter().all(|s| s.steps.len() == 2));
        // Cumulative counts are non-decreasing and end at the totals.
        for w in samples.windows(2) {
            assert!(w[0].steps.iter().zip(&w[1].steps).all(|(a, b)| a <= b));
        }
        let last = samples.last().unwrap();
        assert!(last
            .steps
            .iter()
            .zip(&report.steps_taken)
            .all(|(s, total)| s <= total));
    }

    #[test]
    fn plurality_prefers_smaller_id_on_ties() {
        let p = |i| Some(ProcessId::new(i));
        assert_eq!(plurality(&[p(2), p(1)]), Some(ProcessId::new(1)));
        assert_eq!(plurality(&[p(2), p(2), p(1)]), Some(ProcessId::new(2)));
        assert_eq!(plurality(&[None, None]), None);
    }
}
