//! Crash plans: when processes fail.
//!
//! Processes in the paper's model fail by *crashing* — halting permanently.
//! There is no bound on how many may crash (`t ≤ n − 1`). A [`CrashPlan`]
//! scripts the failures of a run; the directive
//! [`CrashDirective::LeaderAt`] crashes whichever process the correct
//! majority currently trusts, which is how failover experiments exercise
//! re-election without knowing the elected identity in advance.

use omega_registers::ProcessId;

use crate::time::SimTime;

/// One scripted failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashDirective {
    /// Crash a specific process at a specific time.
    At {
        /// When the crash happens.
        time: SimTime,
        /// The process that crashes.
        pid: ProcessId,
    },
    /// At `time`, crash whichever process most processes currently report
    /// as their leader (resolved by the harness at that sampling point).
    LeaderAt {
        /// When the crash happens.
        time: SimTime,
    },
}

impl CrashDirective {
    /// The scheduled time of the directive.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match *self {
            CrashDirective::At { time, .. } | CrashDirective::LeaderAt { time } => time,
        }
    }
}

/// The failures scripted for one run.
///
/// # Examples
///
/// ```
/// use omega_sim::crash::CrashPlan;
/// use omega_sim::SimTime;
/// use omega_registers::ProcessId;
///
/// let plan = CrashPlan::none()
///     .with_crash_at(SimTime::from_ticks(100), ProcessId::new(2))
///     .with_leader_crash_at(SimTime::from_ticks(5_000));
/// assert_eq!(plan.directives().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    directives: Vec<CrashDirective>,
}

impl CrashPlan {
    /// A fault-free run.
    #[must_use]
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Adds a crash of `pid` at `time`.
    #[must_use]
    pub fn with_crash_at(mut self, time: SimTime, pid: ProcessId) -> Self {
        self.directives.push(CrashDirective::At { time, pid });
        self
    }

    /// Adds a crash of the then-current plurality leader at `time`.
    #[must_use]
    pub fn with_leader_crash_at(mut self, time: SimTime) -> Self {
        self.directives.push(CrashDirective::LeaderAt { time });
        self
    }

    /// The scripted directives, in insertion order.
    #[must_use]
    pub fn directives(&self) -> &[CrashDirective] {
        &self.directives
    }

    /// Crashes of specific processes, ignoring leader-relative directives.
    #[must_use]
    pub fn fixed_crashes(&self) -> Vec<(SimTime, ProcessId)> {
        self.directives
            .iter()
            .filter_map(|d| match *d {
                CrashDirective::At { time, pid } => Some((time, pid)),
                CrashDirective::LeaderAt { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_accumulates_directives() {
        let plan = CrashPlan::none()
            .with_crash_at(SimTime::from_ticks(5), p(0))
            .with_leader_crash_at(SimTime::from_ticks(9));
        assert_eq!(plan.directives().len(), 2);
        assert_eq!(plan.directives()[0].time(), SimTime::from_ticks(5));
        assert_eq!(plan.directives()[1].time(), SimTime::from_ticks(9));
    }

    #[test]
    fn fixed_crashes_filters_leader_directives() {
        let plan = CrashPlan::none()
            .with_leader_crash_at(SimTime::from_ticks(1))
            .with_crash_at(SimTime::from_ticks(2), p(3));
        assert_eq!(plan.fixed_crashes(), vec![(SimTime::from_ticks(2), p(3))]);
    }

    #[test]
    fn none_is_empty() {
        assert!(CrashPlan::none().directives().is_empty());
        assert_eq!(CrashPlan::none(), CrashPlan::default());
    }
}
