//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in abstract ticks since the start of
/// the run.
///
/// The paper's proofs use a global real-time axis that processes cannot
/// observe; `SimTime` plays that role. Durations are plain `u64` tick
/// counts.
///
/// # Examples
///
/// ```
/// use omega_sim::SimTime;
///
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert_eq!(t + 3, SimTime::from_ticks(8));
/// assert_eq!((t + 3) - t, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time `ticks` ticks after the start of the run.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Ticks elapsed since the start of the run.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Ticks from `earlier` to `self`, saturating at zero.
    #[must_use]
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(t + 5 - t, 5);
        assert_eq!(t - (t + 5), 0, "subtraction saturates");
        assert_eq!(t.since(SimTime::ZERO), 10);
        assert_eq!(SimTime::ZERO.since(t), 0);
    }

    #[test]
    fn add_assign_and_saturation() {
        let mut t = SimTime::from_ticks(u64::MAX - 1);
        t += 10;
        assert_eq!(t.ticks(), u64::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(7).to_string(), "t=7");
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
