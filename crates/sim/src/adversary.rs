//! Adversarial schedulers: who steps when.
//!
//! The paper's base model `AS_n[∅]` places *no* bound on the time between
//! two steps of a process; an adversary chooses the interleaving. The AWB₁
//! assumption then carves out one exception: after an unknown time `τ₁`, a
//! designated correct process `p_ℓ` completes consecutive accesses to its
//! critical registers within an unknown bound `σ`.
//!
//! Each [`Adversary`] implementation is one family of interleavings. The
//! [`AwbEnvelope`] wrapper imposes the AWB₁ clamp on any underlying
//! adversary, which is exactly how the experiments separate "runs where the
//! assumption holds" from "runs where it does not" (experiment E13).

use crate::rng::SmallRng;
use omega_registers::{ProcessId, ProcessSet};

use crate::time::SimTime;

/// What an adversary may observe about the run so far.
///
/// The lower-bound constructions of the paper (Figure 4) let the adversary
/// react to the protocol's visible behavior — in particular to which leader
/// the processes currently trust. [`Adversary::observe`] delivers this view
/// at every sampling point.
#[derive(Debug, Clone, Copy)]
pub struct RunView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Leader estimate of each process (`None` for actors without one, and
    /// for crashed processes).
    pub leaders: &'a [Option<ProcessId>],
    /// Processes that have crashed so far.
    pub crashed: &'a ProcessSet,
}

/// Decides the delay until each process's next main-task step.
pub trait Adversary: Send {
    /// Delay (in ticks, ≥ 1 enforced by the harness) before `pid`'s next
    /// step, chosen when the previous step completed at `now`.
    fn next_step_delay(&mut self, pid: ProcessId, now: SimTime) -> u64;

    /// Receives a view of the run at each sampling point. Default: ignore.
    fn observe(&mut self, _view: &RunView<'_>) {}
}

impl Adversary for Box<dyn Adversary> {
    fn next_step_delay(&mut self, pid: ProcessId, now: SimTime) -> u64 {
        (**self).next_step_delay(pid, now)
    }

    fn observe(&mut self, view: &RunView<'_>) {
        (**self).observe(view);
    }
}

/// Every process steps once per `period` ticks — the fully synchronous run.
#[derive(Debug, Clone)]
pub struct Synchronous {
    period: u64,
}

impl Synchronous {
    /// Creates a synchronous schedule with the given step period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Synchronous { period }
    }
}

impl Adversary for Synchronous {
    fn next_step_delay(&mut self, _pid: ProcessId, _now: SimTime) -> u64 {
        self.period
    }
}

/// Processes step in a fixed rotation, one slot apart.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    slot: u64,
    started: ProcessSet,
}

impl RoundRobin {
    /// Creates a rotation over `n` processes with `slot` ticks per turn.
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0` or `n == 0`.
    #[must_use]
    pub fn new(n: usize, slot: u64) -> Self {
        assert!(slot > 0 && n > 0);
        RoundRobin {
            n,
            slot,
            started: ProcessSet::new(n),
        }
    }
}

impl Adversary for RoundRobin {
    fn next_step_delay(&mut self, pid: ProcessId, _now: SimTime) -> u64 {
        if self.started.insert(pid) {
            // First step: offset into the rotation.
            pid.index() as u64 * self.slot + 1
        } else {
            self.n as u64 * self.slot
        }
    }
}

/// Independent uniform random delays in `[min, max]`, seeded.
#[derive(Debug, Clone)]
pub struct SeededRandom {
    rng: SmallRng,
    min: u64,
    max: u64,
}

impl SeededRandom {
    /// Creates a random schedule drawing delays uniformly from `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    #[must_use]
    pub fn new(seed: u64, min: u64, max: u64) -> Self {
        assert!(min > 0 && min <= max);
        SeededRandom {
            rng: SmallRng::seed_from_u64(seed),
            min,
            max,
        }
    }
}

impl Adversary for SeededRandom {
    fn next_step_delay(&mut self, _pid: ProcessId, _now: SimTime) -> u64 {
        self.rng.gen_range(self.min..=self.max)
    }
}

/// Alternates per-process bursts of fast steps with long stalls.
///
/// Models the "arbitrarily long but finite periods of arbitrary behavior"
/// the paper allows every process except `p_ℓ`.
#[derive(Debug, Clone)]
pub struct Bursty {
    rng: SmallRng,
    fast_delay: u64,
    stall_delay: u64,
    burst_len: u64,
    counters: Vec<u64>,
}

impl Bursty {
    /// Creates a bursty schedule: `burst_len` steps of `fast_delay` ticks,
    /// then one stall of `stall_delay` ticks, per process, with ±25% jitter.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(n: usize, seed: u64, fast_delay: u64, stall_delay: u64, burst_len: u64) -> Self {
        assert!(fast_delay > 0 && stall_delay > 0 && burst_len > 0);
        Bursty {
            rng: SmallRng::seed_from_u64(seed),
            fast_delay,
            stall_delay,
            burst_len,
            counters: vec![0; n],
        }
    }

    fn jitter(&mut self, base: u64) -> u64 {
        let spread = (base / 4).max(1);
        self.rng
            .gen_range(base.saturating_sub(spread)..=base + spread)
            .max(1)
    }
}

impl Adversary for Bursty {
    fn next_step_delay(&mut self, pid: ProcessId, _now: SimTime) -> u64 {
        let c = &mut self.counters[pid.index()];
        *c += 1;
        if (*c).is_multiple_of(self.burst_len + 1) {
            let d = self.stall_delay;
            self.jitter(d)
        } else {
            let d = self.fast_delay;
            self.jitter(d)
        }
    }
}

/// Imposes the AWB₁ assumption on top of any adversary: after `tau1`, the
/// designated `timely` process's step delay is clamped to at most `sigma`.
///
/// Everything else — including the timely process before `tau1` — behaves
/// exactly as the wrapped adversary dictates.
#[derive(Debug, Clone)]
pub struct AwbEnvelope<A> {
    inner: A,
    timely: ProcessId,
    tau1: SimTime,
    sigma: u64,
}

impl<A: Adversary> AwbEnvelope<A> {
    /// Wraps `inner`, making `timely` satisfy AWB₁ with bound `sigma` after
    /// time `tau1`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma == 0`.
    #[must_use]
    pub fn new(inner: A, timely: ProcessId, tau1: SimTime, sigma: u64) -> Self {
        assert!(sigma > 0, "sigma must be positive");
        AwbEnvelope {
            inner,
            timely,
            tau1,
            sigma,
        }
    }

    /// The process constrained by AWB₁.
    #[must_use]
    pub fn timely(&self) -> ProcessId {
        self.timely
    }

    /// The bound `σ` applied after `τ₁`.
    #[must_use]
    pub fn sigma(&self) -> u64 {
        self.sigma
    }
}

impl<A: Adversary> Adversary for AwbEnvelope<A> {
    fn next_step_delay(&mut self, pid: ProcessId, now: SimTime) -> u64 {
        let d = self.inner.next_step_delay(pid, now);
        if pid == self.timely && now >= self.tau1 {
            d.min(self.sigma)
        } else {
            d
        }
    }

    fn observe(&mut self, view: &RunView<'_>) {
        self.inner.observe(view);
    }
}

/// Alternating partition phases: in even phases the lower half of the
/// processes runs fast while the upper half is stalled; odd phases swap.
///
/// Models the "arbitrarily long but finite" degraded periods the paper
/// allows: every process is stalled infinitely often, but also runs fast
/// infinitely often, so combined with an [`AwbEnvelope`] the run still
/// satisfies AWB.
#[derive(Debug, Clone)]
pub struct PartitionedPhases {
    n: usize,
    phase_len: u64,
    fast_delay: u64,
    stall_delay: u64,
}

impl PartitionedPhases {
    /// Creates alternating-partition scheduling over `n` processes with
    /// phases of `phase_len` ticks.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `stall_delay <= fast_delay`.
    #[must_use]
    pub fn new(n: usize, phase_len: u64, fast_delay: u64, stall_delay: u64) -> Self {
        assert!(n > 0 && phase_len > 0 && fast_delay > 0);
        assert!(stall_delay > fast_delay);
        PartitionedPhases {
            n,
            phase_len,
            fast_delay,
            stall_delay,
        }
    }

    fn stalled(&self, pid: ProcessId, now: SimTime) -> bool {
        let phase = now.ticks() / self.phase_len;
        let upper_half = pid.index() >= self.n / 2;
        phase.is_multiple_of(2) == upper_half
    }
}

impl Adversary for PartitionedPhases {
    fn next_step_delay(&mut self, pid: ProcessId, now: SimTime) -> u64 {
        if self.stalled(pid, now) {
            // Don't overshoot the phase boundary by too much: stall either
            // the configured delay or until shortly after the phase flips.
            let into_phase = now.ticks() % self.phase_len;
            let to_boundary = self.phase_len - into_phase + 1;
            self.stall_delay.min(to_boundary.max(self.fast_delay))
        } else {
            self.fast_delay
        }
    }
}

/// One designated process suffers stalls whose lengths grow geometrically;
/// everyone else steps at a constant fast cadence.
///
/// The victim is **correct** — every stall is finite — but it is *not*
/// eventually synchronous: its step delays are unbounded over the run.
/// This is the separating schedule between the AWB assumption of this
/// paper and the eventually-synchronous model of prior work (\[13\] in the
/// paper): AWB tolerates such a process (it merely accumulates suspicions
/// and loses the election), while timeout-adaptive min-id algorithms flap
/// forever — every doubled timeout is eventually beaten by a longer stall.
#[derive(Debug, Clone)]
pub struct GrowingBursts {
    victim: ProcessId,
    fast_delay: u64,
    /// Steps of fast running between stalls.
    burst_len: u64,
    /// Length of the next stall; multiplied by `factor` each time.
    next_stall: u64,
    factor: u64,
    step_count: u64,
}

impl GrowingBursts {
    /// Creates the schedule: `victim` runs `burst_len` fast steps
    /// (`fast_delay` ticks apart), then stalls; the first stall lasts
    /// `initial_stall` ticks, each later one `factor` times longer.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `factor < 2`.
    #[must_use]
    pub fn new(
        victim: ProcessId,
        fast_delay: u64,
        burst_len: u64,
        initial_stall: u64,
        factor: u64,
    ) -> Self {
        assert!(fast_delay > 0 && burst_len > 0 && initial_stall > 0);
        assert!(factor >= 2, "stalls must grow");
        GrowingBursts {
            victim,
            fast_delay,
            burst_len,
            next_stall: initial_stall,
            factor,
            step_count: 0,
        }
    }
}

impl Adversary for GrowingBursts {
    fn next_step_delay(&mut self, pid: ProcessId, _now: SimTime) -> u64 {
        if pid != self.victim {
            return self.fast_delay;
        }
        self.step_count += 1;
        if self.step_count.is_multiple_of(self.burst_len) {
            let stall = self.next_stall;
            self.next_stall = self.next_stall.saturating_mul(self.factor);
            stall
        } else {
            self.fast_delay
        }
    }
}

/// Stalls whichever process the (plurality of) correct processes currently
/// trust as leader, forever.
///
/// Against a pure asynchronous system (no [`AwbEnvelope`]), this adversary
/// realizes the impossibility folklore: every emerging leader is starved
/// until it is suspected, so no election ever stabilizes. It is the engine
/// of experiment E13 and of the Figure-4 style constructions.
#[derive(Debug, Clone)]
pub struct LeaderStaller {
    base_delay: u64,
    stall_delay: u64,
    target: Option<ProcessId>,
}

impl LeaderStaller {
    /// Creates a staller: non-targets step every `base_delay` ticks, the
    /// current plurality leader steps only every `stall_delay` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `base_delay == 0` or `stall_delay <= base_delay`.
    #[must_use]
    pub fn new(base_delay: u64, stall_delay: u64) -> Self {
        assert!(base_delay > 0 && stall_delay > base_delay);
        LeaderStaller {
            base_delay,
            stall_delay,
            target: None,
        }
    }

    /// The process currently being starved, if any.
    #[must_use]
    pub fn target(&self) -> Option<ProcessId> {
        self.target
    }
}

impl Adversary for LeaderStaller {
    fn next_step_delay(&mut self, pid: ProcessId, _now: SimTime) -> u64 {
        if Some(pid) == self.target {
            self.stall_delay
        } else {
            self.base_delay
        }
    }

    fn observe(&mut self, view: &RunView<'_>) {
        // Plurality vote among alive processes' estimates.
        let mut counts: Vec<(ProcessId, usize)> = Vec::new();
        for leader in view.leaders.iter().flatten() {
            match counts.iter_mut().find(|(p, _)| p == leader) {
                Some((_, c)) => *c += 1,
                None => counts.push((*leader, 1)),
            }
        }
        self.target = counts
            .into_iter()
            .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
            .map(|(p, _)| p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn synchronous_is_constant() {
        let mut a = Synchronous::new(3);
        for _ in 0..5 {
            assert_eq!(a.next_step_delay(p(0), SimTime::ZERO), 3);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn synchronous_rejects_zero() {
        let _ = Synchronous::new(0);
    }

    #[test]
    fn round_robin_offsets_then_rotates() {
        let mut a = RoundRobin::new(3, 2);
        assert_eq!(a.next_step_delay(p(0), SimTime::ZERO), 1);
        assert_eq!(a.next_step_delay(p(1), SimTime::ZERO), 3);
        assert_eq!(a.next_step_delay(p(2), SimTime::ZERO), 5);
        // Subsequent turns: full rotation.
        assert_eq!(a.next_step_delay(p(0), SimTime::ZERO), 6);
        assert_eq!(a.next_step_delay(p(1), SimTime::ZERO), 6);
    }

    #[test]
    fn seeded_random_is_deterministic_and_in_range() {
        let mut a = SeededRandom::new(7, 2, 9);
        let mut b = SeededRandom::new(7, 2, 9);
        for _ in 0..100 {
            let da = a.next_step_delay(p(0), SimTime::ZERO);
            let db = b.next_step_delay(p(0), SimTime::ZERO);
            assert_eq!(da, db);
            assert!((2..=9).contains(&da));
        }
    }

    #[test]
    fn bursty_inserts_stalls() {
        let mut a = Bursty::new(1, 3, 2, 100, 4);
        let delays: Vec<u64> = (0..10)
            .map(|_| a.next_step_delay(p(0), SimTime::ZERO))
            .collect();
        assert!(
            delays.iter().any(|&d| d >= 75),
            "must contain a stall: {delays:?}"
        );
        assert!(
            delays.iter().any(|&d| d <= 3),
            "must contain fast steps: {delays:?}"
        );
    }

    #[test]
    fn awb_envelope_clamps_only_timely_after_tau1() {
        let inner = Synchronous::new(50);
        let mut a = AwbEnvelope::new(inner, p(1), SimTime::from_ticks(100), 5);
        assert_eq!(a.timely(), p(1));
        assert_eq!(a.sigma(), 5);
        // Before tau1: unclamped.
        assert_eq!(a.next_step_delay(p(1), SimTime::from_ticks(10)), 50);
        // After tau1: clamped for the timely process only.
        assert_eq!(a.next_step_delay(p(1), SimTime::from_ticks(100)), 5);
        assert_eq!(a.next_step_delay(p(0), SimTime::from_ticks(100)), 50);
    }

    #[test]
    fn growing_bursts_escalate_only_for_victim() {
        let mut a = GrowingBursts::new(p(0), 2, 3, 10, 3);
        // Non-victims: constant.
        assert_eq!(a.next_step_delay(p(1), SimTime::ZERO), 2);
        // Victim: two fast steps, then a stall, escalating ×3.
        let delays: Vec<u64> = (0..9)
            .map(|_| a.next_step_delay(p(0), SimTime::ZERO))
            .collect();
        assert_eq!(delays, vec![2, 2, 10, 2, 2, 30, 2, 2, 90]);
    }

    #[test]
    fn partitioned_phases_alternate() {
        let mut a = PartitionedPhases::new(4, 100, 2, 50);
        // Phase 0: upper half (p2, p3) stalled.
        assert_eq!(a.next_step_delay(p(0), SimTime::from_ticks(10)), 2);
        assert!(a.next_step_delay(p(3), SimTime::from_ticks(10)) > 2);
        // Phase 1: lower half stalled.
        assert!(a.next_step_delay(p(0), SimTime::from_ticks(150)) > 2);
        assert_eq!(a.next_step_delay(p(3), SimTime::from_ticks(150)), 2);
    }

    #[test]
    fn partitioned_stall_does_not_overshoot_phase() {
        let mut a = PartitionedPhases::new(2, 100, 2, 10_000);
        // p1 stalled in phase 0 at t=90: the stall must end near t=191 at
        // the latest, not t=10_090.
        let d = a.next_step_delay(p(1), SimTime::from_ticks(90));
        assert!(d <= 11 + 2, "stall clipped to the phase boundary, got {d}");
    }

    #[test]
    fn leader_staller_tracks_plurality() {
        let mut a = LeaderStaller::new(2, 1000);
        assert_eq!(a.target(), None);
        assert_eq!(a.next_step_delay(p(0), SimTime::ZERO), 2);
        let crashed = ProcessSet::new(3);
        let leaders = [Some(p(2)), Some(p(2)), Some(p(0))];
        a.observe(&RunView {
            now: SimTime::ZERO,
            leaders: &leaders,
            crashed: &crashed,
        });
        assert_eq!(a.target(), Some(p(2)));
        assert_eq!(a.next_step_delay(p(2), SimTime::ZERO), 1000);
        assert_eq!(a.next_step_delay(p(1), SimTime::ZERO), 2);
    }

    #[test]
    fn leader_staller_ignores_none_estimates() {
        let mut a = LeaderStaller::new(1, 10);
        let crashed = ProcessSet::new(2);
        a.observe(&RunView {
            now: SimTime::ZERO,
            leaders: &[None, None],
            crashed: &crashed,
        });
        assert_eq!(a.target(), None);
    }
}
