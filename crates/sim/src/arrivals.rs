//! Open-loop client arrival processes in virtual time.
//!
//! A workload generator is *open-loop* when arrivals are driven by the
//! clients' own clocks, independent of how fast the service completes
//! requests — the regime under which failover cost is visible as queued
//! and expired requests rather than as a politely slowed-down load. This
//! module generates such schedules deterministically: every client draws
//! its inter-arrival gaps (and its request payloads) from its **own**
//! [`crate::rng::SmallRng`], seeded from the scenario seed and
//! the client index, so
//!
//! * the merged schedule is a pure function of `(spec, seed)` — byte-equal
//!   across runs and hosts, and
//! * client `c`'s stream never depends on how many other clients exist or
//!   on the order streams are sampled in (no shared RNG state to race on
//!   or to perturb — the same per-identity seeding discipline the timer
//!   models use).

use crate::rng::SmallRng;

/// One generated request arrival: when, who, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival<P> {
    /// Arrival time in virtual ticks.
    pub at: u64,
    /// Index of the issuing client.
    pub client: u64,
    /// The request payload the client drew.
    pub payload: P,
}

/// An open-loop arrival spec: `clients` independent sources, each issuing
/// requests with uniform inter-arrival gaps of mean `mean_interarrival`
/// ticks, from `start` (exclusive of ramp-in jitter) until `stop`.
///
/// # Examples
///
/// ```
/// use omega_sim::arrivals::OpenLoop;
///
/// let spec = OpenLoop {
///     clients: 3,
///     mean_interarrival: 100,
///     start: 1_000,
///     stop: 2_000,
/// };
/// let a = spec.generate(42, |client, _rng| client);
/// let b = spec.generate(42, |client, _rng| client);
/// assert_eq!(a, b, "schedules are pure functions of (spec, seed)");
/// assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "time-sorted");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoop {
    /// Number of independent clients.
    pub clients: u64,
    /// Mean gap between one client's consecutive requests, in ticks
    /// (gaps are uniform on `[1, 2·mean − 1]`; a mean of 1 is exact).
    pub mean_interarrival: u64,
    /// First tick of the arrival window.
    pub start: u64,
    /// End of the arrival window (exclusive): no arrivals at or past it.
    pub stop: u64,
}

impl OpenLoop {
    /// The RNG seed for one client's stream — the same derivation the
    /// scenario spec uses for per-process timer jitter, so a workload and
    /// a timer model sharing a scenario seed still draw from disjoint,
    /// identity-separated streams.
    #[must_use]
    pub fn client_seed(seed: u64, client: u64) -> u64 {
        seed.wrapping_mul(0x0100_0000_01b3)
            .wrapping_add(client.wrapping_mul(2) + 1)
    }

    /// Generates the merged, time-sorted schedule. `payload` is called
    /// once per arrival with the issuing client and that client's own
    /// generator (so payload draws stay inside the per-client stream).
    ///
    /// Ties in arrival time are ordered by client index — a deterministic
    /// merge, not an artifact of sampling order.
    pub fn generate<P>(
        &self,
        seed: u64,
        mut payload: impl FnMut(u64, &mut SmallRng) -> P,
    ) -> Vec<Arrival<P>> {
        let mean = self.mean_interarrival.max(1);
        let mut schedule = Vec::new();
        for client in 0..self.clients {
            let mut rng = SmallRng::seed_from_u64(Self::client_seed(seed, client));
            // Ramp in over one mean gap so the sources do not thunder in
            // lock-step at `start`.
            let mut at = self.start + rng.gen_range(1..=mean) - 1;
            while at < self.stop {
                let payload = payload(client, &mut rng);
                schedule.push(Arrival {
                    at,
                    client,
                    payload,
                });
                at = at.saturating_add(rng.gen_range(1..=2 * mean - 1));
            }
        }
        schedule.sort_by_key(|a| (a.at, a.client));
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(clients: u64) -> OpenLoop {
        OpenLoop {
            clients,
            mean_interarrival: 50,
            start: 100,
            stop: 5_000,
        }
    }

    #[test]
    fn deterministic_per_seed_and_sorted() {
        let a = spec(8).generate(7, |c, rng| (c, rng.gen_range(0..=9)));
        let b = spec(8).generate(7, |c, rng| (c, rng.gen_range(0..=9)));
        let c = spec(8).generate(8, |c, rng| (c, rng.gen_range(0..=9)));
        assert_eq!(a, b);
        assert_ne!(a, c, "a different seed reshapes the schedule");
        assert!(a
            .windows(2)
            .all(|w| (w[0].at, w[0].client) <= (w[1].at, w[1].client)));
        assert!(a.iter().all(|r| (100..5_000).contains(&r.at)));
    }

    #[test]
    fn client_streams_are_independent_of_the_population() {
        // The regression the per-client seeding exists for: adding clients
        // must not shift anyone else's stream (a shared RNG would).
        let small = spec(3).generate(42, |c, rng| (c, rng.next_u64()));
        let large = spec(9).generate(42, |c, rng| (c, rng.next_u64()));
        for client in 0..3 {
            let of = |s: &[Arrival<(u64, u64)>]| {
                s.iter()
                    .filter(|a| a.client == client)
                    .cloned()
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                of(&small),
                of(&large),
                "client {client}'s stream depends only on its own seed"
            );
        }
    }

    #[test]
    fn mean_gap_is_roughly_the_spec_mean() {
        let one = OpenLoop {
            clients: 1,
            mean_interarrival: 50,
            start: 0,
            stop: 500_000,
        };
        let schedule = one.generate(3, |_, _| ());
        let gaps: Vec<u64> = schedule.windows(2).map(|w| w[1].at - w[0].at).collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!((35.0..=65.0).contains(&mean), "observed mean {mean}");
        assert!(gaps.iter().all(|&g| (1..=99).contains(&g)));
    }

    #[test]
    fn degenerate_specs_stay_sane() {
        let empty = OpenLoop {
            clients: 0,
            mean_interarrival: 10,
            start: 0,
            stop: 100,
        };
        assert!(empty.generate(1, |_, _| ()).is_empty());
        let closed = OpenLoop {
            clients: 4,
            mean_interarrival: 10,
            start: 100,
            stop: 100,
        };
        assert!(closed.generate(1, |_, _| ()).is_empty());
        let unit_mean = OpenLoop {
            clients: 1,
            mean_interarrival: 1,
            start: 0,
            stop: 10,
        };
        let schedule = unit_mean.generate(1, |_, _| ());
        assert_eq!(schedule.len(), 10, "mean 1 ticks every tick");
    }
}
