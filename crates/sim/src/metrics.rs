//! Run metrics: leader timelines, stabilization detection, windowed stats.
//!
//! The Eventual Leadership property is a statement about an infinite suffix
//! of the run: *there is a time after which every `leader()` invocation
//! returns the same correct identity*. A finite experiment can only witness
//! it, so the harness samples every process's leader estimate on a fixed
//! cadence and [`LeaderTimeline::stabilization`] reports the suffix over
//! which all correct processes agreed on one correct leader.

use omega_registers::{ProcessId, ProcessSet, StatsSnapshot};

use crate::time::SimTime;

/// One sampling point: every process's current leader estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSample {
    /// When the sample was taken.
    pub time: SimTime,
    /// Estimate of each process, indexed by process. `None` for actors
    /// without an estimate yet and for crashed processes.
    pub leaders: Vec<Option<ProcessId>>,
    /// Cumulative main-task steps of each process at sampling time. Empty
    /// when the producer does not track steps (e.g. hand-built timelines);
    /// consumers needing activity (the fuzz safety oracle asks whether a
    /// self-believed leader is still *stepping*) must treat empty as
    /// unknown.
    pub steps: Vec<u64>,
}

/// The stabilized suffix of a run, if one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizationReport {
    /// The leader every correct process settled on.
    pub leader: ProcessId,
    /// Time of the first sample of the agreeing suffix.
    pub stable_from: SimTime,
    /// Number of consecutive samples in the agreeing suffix.
    pub stable_samples: usize,
}

/// Sampled leader estimates over a whole run.
#[derive(Debug, Clone, Default)]
pub struct LeaderTimeline {
    samples: Vec<TimelineSample>,
}

impl LeaderTimeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        LeaderTimeline::default()
    }

    /// Appends a sample without step counts.
    pub fn push(&mut self, time: SimTime, leaders: Vec<Option<ProcessId>>) {
        self.samples.push(TimelineSample {
            time,
            leaders,
            steps: Vec::new(),
        });
    }

    /// Appends a sample carrying cumulative per-process step counts.
    pub fn push_with_steps(
        &mut self,
        time: SimTime,
        leaders: Vec<Option<ProcessId>>,
        steps: Vec<u64>,
    ) {
        self.samples.push(TimelineSample {
            time,
            leaders,
            steps,
        });
    }

    /// All samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Whether a sample shows all `correct` processes agreeing on `leader`.
    fn agrees(sample: &TimelineSample, correct: &ProcessSet, leader: ProcessId) -> bool {
        correct
            .iter()
            .all(|p| sample.leaders.get(p.index()).copied().flatten() == Some(leader))
    }

    /// Detects the stabilized suffix: the maximal run of trailing samples in
    /// which every process in `correct` reports the same leader, and that
    /// leader is itself in `correct`.
    ///
    /// Returns `None` if the final sample already shows disagreement, a
    /// missing estimate, or a crashed leader.
    #[must_use]
    pub fn stabilization(&self, correct: &ProcessSet) -> Option<StabilizationReport> {
        let last = self.samples.last()?;
        let mut estimates = correct
            .iter()
            .map(|p| last.leaders.get(p.index()).copied().flatten());
        let leader = estimates.next().flatten()?;
        if !estimates.all(|e| e == Some(leader)) || !correct.contains(leader) {
            return None;
        }
        let suffix_start = self
            .samples
            .iter()
            .rposition(|s| !Self::agrees(s, correct, leader))
            .map_or(0, |i| i + 1);
        let stable_samples = self.samples.len() - suffix_start;
        Some(StabilizationReport {
            leader,
            stable_from: self.samples[suffix_start].time,
            stable_samples,
        })
    }

    /// Number of times `pid`'s estimate changed between consecutive samples.
    #[must_use]
    pub fn changes_of(&self, pid: ProcessId) -> usize {
        self.samples
            .windows(2)
            .filter(|w| {
                w[0].leaders.get(pid.index()).copied().flatten()
                    != w[1].leaders.get(pid.index()).copied().flatten()
            })
            .count()
    }

    /// The estimate most recently sampled for `pid`.
    #[must_use]
    pub fn last_estimate_of(&self, pid: ProcessId) -> Option<ProcessId> {
        self.samples
            .last()
            .and_then(|s| s.leaders.get(pid.index()).copied().flatten())
    }
}

/// One reporting window with the access statistics accumulated inside it.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Accesses performed inside the window.
    pub stats: StatsSnapshot,
}

impl Window {
    /// Processes that wrote shared memory during this window.
    #[must_use]
    pub fn writer_set(&self) -> ProcessSet {
        self.stats.writer_set()
    }
}

/// Cumulative statistics snapshots taken on the sampling cadence, sliceable
/// into per-window deltas.
#[derive(Debug, Clone, Default)]
pub struct WindowedStats {
    snapshots: Vec<(SimTime, StatsSnapshot)>,
}

impl WindowedStats {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        WindowedStats::default()
    }

    /// Appends a cumulative snapshot taken at `time`.
    pub fn push(&mut self, time: SimTime, snapshot: StatsSnapshot) {
        self.snapshots.push((time, snapshot));
    }

    /// Raw cumulative snapshots.
    #[must_use]
    pub fn snapshots(&self) -> &[(SimTime, StatsSnapshot)] {
        &self.snapshots
    }

    /// Splits the run into `buckets` equal windows of snapshots and returns
    /// the per-window access deltas.
    ///
    /// Returns an empty vector if fewer than two snapshots were taken.
    #[must_use]
    pub fn windows(&self, buckets: usize) -> Vec<Window> {
        if self.snapshots.len() < 2 || buckets == 0 {
            return Vec::new();
        }
        let span = self.snapshots.len() - 1;
        let per = span.div_ceil(buckets).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < span {
            let j = (i + per).min(span);
            let (start, ref base) = self.snapshots[i];
            let (end, ref late) = self.snapshots[j];
            out.push(Window {
                start,
                end,
                stats: late.delta_since(base),
            });
            i = j;
        }
        out
    }

    /// The delta over the trailing `fraction` of the run (e.g. `0.25` for
    /// the final quarter) — the "post-stabilization" view used by the
    /// write-optimality experiments.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn tail(&self, fraction: f64) -> Option<Window> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        if self.snapshots.len() < 2 {
            return None;
        }
        let last = self.snapshots.len() - 1;
        let from = ((last as f64) * (1.0 - fraction)).floor() as usize;
        let (start, ref base) = self.snapshots[from];
        let (end, ref late) = self.snapshots[last];
        Some(Window {
            start,
            end,
            stats: late.delta_since(base),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn t(v: u64) -> SimTime {
        SimTime::from_ticks(v)
    }

    #[test]
    fn empty_timeline_has_no_stabilization() {
        let tl = LeaderTimeline::new();
        assert!(tl.stabilization(&ProcessSet::full(2)).is_none());
    }

    #[test]
    fn stabilization_detects_agreeing_suffix() {
        let mut tl = LeaderTimeline::new();
        tl.push(t(0), vec![Some(p(0)), Some(p(1))]); // disagreement
        tl.push(t(10), vec![Some(p(1)), Some(p(1))]);
        tl.push(t(20), vec![Some(p(1)), Some(p(1))]);
        let report = tl.stabilization(&ProcessSet::full(2)).unwrap();
        assert_eq!(report.leader, p(1));
        assert_eq!(report.stable_from, t(10));
        assert_eq!(report.stable_samples, 2);
    }

    #[test]
    fn stabilization_requires_correct_leader() {
        let mut tl = LeaderTimeline::new();
        // Both correct processes trust p2, but p2 crashed (not in correct).
        tl.push(t(0), vec![Some(p(2)), Some(p(2)), None]);
        let mut correct = ProcessSet::full(3);
        correct.remove(p(2));
        assert!(tl.stabilization(&correct).is_none());
    }

    #[test]
    fn stabilization_ignores_crashed_estimates() {
        let mut tl = LeaderTimeline::new();
        // p2 crashed (None); correct = {p0, p1} agree on p0.
        tl.push(t(0), vec![Some(p(0)), Some(p(0)), None]);
        let mut correct = ProcessSet::full(3);
        correct.remove(p(2));
        let report = tl.stabilization(&correct).unwrap();
        assert_eq!(report.leader, p(0));
        assert_eq!(report.stable_samples, 1);
    }

    #[test]
    fn missing_estimate_blocks_stabilization() {
        let mut tl = LeaderTimeline::new();
        tl.push(t(0), vec![Some(p(0)), None]);
        assert!(tl.stabilization(&ProcessSet::full(2)).is_none());
    }

    #[test]
    fn changes_and_last_estimate() {
        let mut tl = LeaderTimeline::new();
        tl.push(t(0), vec![Some(p(0))]);
        tl.push(t(1), vec![Some(p(1))]);
        tl.push(t(2), vec![Some(p(1))]);
        tl.push(t(3), vec![None]);
        assert_eq!(tl.changes_of(p(0)), 2);
        assert_eq!(tl.last_estimate_of(p(0)), None);
        assert_eq!(tl.samples().len(), 4);
    }

    #[test]
    fn windowed_stats_slices_deltas() {
        use omega_registers::MemorySpace;
        let space = MemorySpace::new(2);
        let reg = space.nat_register("R", p(0), 0);
        let mut ws = WindowedStats::new();
        ws.push(t(0), space.stats());
        reg.write(p(0), 1);
        ws.push(t(10), space.stats());
        reg.write(p(0), 2);
        reg.write(p(0), 3);
        ws.push(t(20), space.stats());

        let windows = ws.windows(2);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].stats.total_writes(), 1);
        assert_eq!(windows[1].stats.total_writes(), 2);
        assert_eq!(windows[0].start, t(0));
        assert_eq!(windows[1].end, t(20));
        assert_eq!(windows[1].writer_set().len(), 1);

        let tail = ws.tail(0.5).unwrap();
        assert_eq!(tail.stats.total_writes(), 2);
        assert_eq!(ws.snapshots().len(), 3);
    }

    #[test]
    fn windowed_stats_handles_tiny_series() {
        let ws = WindowedStats::new();
        assert!(ws.windows(4).is_empty());
        assert!(ws.tail(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1]")]
    fn tail_rejects_bad_fraction() {
        let _ = WindowedStats::new().tail(0.0);
    }
}
