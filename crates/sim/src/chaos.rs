//! Chaos campaigns: declarative, deterministic fault schedules.
//!
//! A [`Campaign`] is an ordered list of [`ChaosPhase`]s — register-space
//! partitions, latency storms, crash/recovery waves, and heals — pinned to
//! virtual ticks. The simulator realizes each phase *literally*: partitions
//! sever cross-group reads via the memory space's visibility mask, storms
//! stretch simulated step service time, waves reuse the crash machinery
//! (and undo it, for recovery). Phase boundaries are ordinary simulator
//! events ([`EventKind::ChaosStart`] / [`EventKind::ChaosEnd`]), so they
//! land in recorded traces and campaigns replay byte-identically.
//!
//! Wall-clock drivers realize a subset best-effort (see the scenario
//! crate's admission rules); the phase predicates here —
//! [`Campaign::has_storm`], [`Campaign::has_recovery`] — are what admission
//! decisions are made from.
//!
//! [`EventKind::ChaosStart`]: crate::event::EventKind::ChaosStart
//! [`EventKind::ChaosEnd`]: crate::event::EventKind::ChaosEnd

use omega_registers::ProcessId;

/// One phase of a chaos campaign, pinned to virtual ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosPhase {
    /// Sever cross-group register visibility over `[from, until)`.
    ///
    /// Processes in different groups read each other's rows as frozen at
    /// `from`; processes in no group stay connected to everyone. The cut
    /// heals at `until` (or at an earlier explicit [`ChaosPhase::Heal`]).
    Partition {
        /// Disjoint groups of processes; ids absent from every group are
        /// unaffected.
        groups: Vec<Vec<ProcessId>>,
        /// First tick of the cut.
        from: u64,
        /// Tick the cut heals (exclusive).
        until: u64,
    },
    /// Stretch simulated step service time over `[from, until)`.
    ///
    /// Every live-scheduled step delay is multiplied by `factor` and
    /// smeared by a deterministic jitter in `0..=jitter` ticks — a latency
    /// storm on the shared medium.
    Storm {
        /// Multiplier applied to step delays (≥ 1).
        factor: u64,
        /// Bound of the deterministic per-step jitter, in ticks.
        jitter: u64,
        /// First tick of the storm.
        from: u64,
        /// Tick the storm clears (exclusive).
        until: u64,
    },
    /// Crash `crash` and/or resurrect `recover` at tick `at`.
    ///
    /// Recovery un-crashes a process: it resumes taking steps with its
    /// register state as it last left it (a stopped node rejoining).
    Wave {
        /// Processes that crash at `at`.
        crash: Vec<ProcessId>,
        /// Processes that recover at `at`.
        recover: Vec<ProcessId>,
        /// The tick the wave fires.
        at: u64,
    },
    /// Heal any active partition at tick `at`.
    Heal {
        /// The tick the heal fires.
        at: u64,
    },
    /// Sever register visibility **one way** over `[from, until)`: the
    /// `blinded` processes read the `hidden` processes' rows frozen at
    /// `from`, while the hidden side (and everyone else) keeps reading
    /// live in every direction.
    ///
    /// This is the asymmetric-fabric regime of the López–Rajsbaum–Raynal
    /// weak-connectivity results: election survives a directed cut exactly
    /// when a strongly-connected timely core stays visible to everyone.
    Cut {
        /// Processes whose reads of `hidden` are severed.
        blinded: Vec<ProcessId>,
        /// Processes the blinded side stops seeing (their own view stays
        /// live).
        hidden: Vec<ProcessId>,
        /// First tick of the cut.
        from: u64,
        /// Tick the cut heals (exclusive).
        until: u64,
    },
    /// Oscillate a partition over `[from, until)`: installed for `period`
    /// ticks, healed for `period` ticks, and so on — always healed by
    /// `until`.
    ///
    /// A flap whose period outpaces the AWB timeout growth keeps every
    /// cross-group suspicion alive for the whole window: the membrane
    /// never stays quiet long enough for timeouts to catch up.
    Flap {
        /// Disjoint groups of processes; ids absent from every group are
        /// unaffected.
        groups: Vec<Vec<ProcessId>>,
        /// Ticks per half-cycle: partitioned for `period`, healed for
        /// `period`.
        period: u64,
        /// First tick of the first cut.
        from: u64,
        /// Tick the oscillation stops, healed (exclusive).
        until: u64,
    },
}

/// The `(install, heal)` tick pairs a flap phase with the given `period`
/// over `[from, until)` produces: partitioned during even half-cycles,
/// healed during odd ones, with the final cut clamped to heal at `until`.
///
/// This is the single source of truth for flap boundaries — the simulator
/// schedules its [`ChaosStart`](crate::event::EventKind::ChaosStart) /
/// [`ChaosEnd`](crate::event::EventKind::ChaosEnd) events from it,
/// [`Campaign::planned_stats`] mirrors it, and wall-clock drivers expand
/// their install/heal actions from it, so all three stay consistent.
#[must_use]
pub fn flap_spans(period: u64, from: u64, until: u64) -> Vec<(u64, u64)> {
    let mut spans = Vec::new();
    if period == 0 {
        return spans;
    }
    let mut install = from;
    while install < until {
        spans.push((install, (install + period).min(until)));
        install += 2 * period;
    }
    spans
}

impl ChaosPhase {
    /// The tick this phase begins to act.
    #[must_use]
    pub fn start(&self) -> u64 {
        match *self {
            ChaosPhase::Partition { from, .. }
            | ChaosPhase::Storm { from, .. }
            | ChaosPhase::Cut { from, .. }
            | ChaosPhase::Flap { from, .. } => from,
            ChaosPhase::Wave { at, .. } | ChaosPhase::Heal { at } => at,
        }
    }

    /// The tick this phase stops acting on its own (`None` for
    /// instantaneous phases).
    #[must_use]
    pub fn end(&self) -> Option<u64> {
        match *self {
            ChaosPhase::Partition { until, .. }
            | ChaosPhase::Storm { until, .. }
            | ChaosPhase::Cut { until, .. }
            | ChaosPhase::Flap { until, .. } => Some(until),
            ChaosPhase::Wave { .. } | ChaosPhase::Heal { .. } => None,
        }
    }
}

/// A declarative fault schedule: ordered phases over virtual ticks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Campaign {
    /// The phases, in declaration order.
    pub phases: Vec<ChaosPhase>,
}

impl Campaign {
    /// A campaign with no phases.
    #[must_use]
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Appends a phase.
    #[must_use]
    pub fn phase(mut self, phase: ChaosPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Whether the campaign has no phases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Whether any phase is a latency storm (only sim and the SAN backend
    /// can stretch service time).
    #[must_use]
    pub fn has_storm(&self) -> bool {
        self.phases
            .iter()
            .any(|p| matches!(p, ChaosPhase::Storm { .. }))
    }

    /// Whether any wave resurrects a process (only the simulator can
    /// un-crash: wall-clock clusters park crashed nodes for good).
    #[must_use]
    pub fn has_recovery(&self) -> bool {
        self.phases
            .iter()
            .any(|p| matches!(p, ChaosPhase::Wave { recover, .. } if !recover.is_empty()))
    }

    /// Whether any phase is a directed cut (every driver realizes it via
    /// the memory space's directed mask).
    #[must_use]
    pub fn has_cut(&self) -> bool {
        self.phases
            .iter()
            .any(|p| matches!(p, ChaosPhase::Cut { .. }))
    }

    /// Whether any phase is a flap (realized everywhere as a schedule of
    /// install/heal pairs from [`flap_spans`]).
    #[must_use]
    pub fn has_flap(&self) -> bool {
        self.phases
            .iter()
            .any(|p| matches!(p, ChaosPhase::Flap { .. }))
    }

    /// The tick window the campaign disrupts, clamped to `horizon`:
    /// earliest phase start to latest phase end (instantaneous phases
    /// count their firing tick; unhealed phases extend to the horizon).
    /// `None` for an empty campaign.
    #[must_use]
    pub fn disruption_window(&self, horizon: u64) -> Option<(u64, u64)> {
        let mut window: Option<(u64, u64)> = None;
        for phase in &self.phases {
            let start = phase.start().min(horizon);
            let end = phase.end().unwrap_or(phase.start()).min(horizon);
            window = Some(match window {
                None => (start, end),
                Some((from, until)) => (from.min(start), until.max(end)),
            });
        }
        window
    }

    /// The stats this schedule yields by construction on a run of `horizon`
    /// ticks, mirroring the simulator's accounting exactly (phase events
    /// fire at `tick <= horizon`, in `(tick, declaration order)`; phases
    /// still active at the horizon are closed there without counting as
    /// healed).
    ///
    /// Wall-clock drivers inject phases on the wall clock and cannot
    /// measure ticks, so they report this planned view instead.
    #[must_use]
    pub fn planned_stats(&self, horizon: u64) -> ChaosStats {
        enum Action {
            PartitionStart,
            StormStart,
            Wave(u32, u32),
            Heal,
        }
        let mut actions: Vec<(u64, usize, Action)> = Vec::new();
        for (seq, phase) in self.phases.iter().enumerate() {
            // A flap is a schedule of install/heal pairs, not one span.
            if let ChaosPhase::Flap {
                period,
                from,
                until,
                ..
            } = *phase
            {
                for (install, heal) in flap_spans(period, from, until) {
                    if install <= horizon {
                        actions.push((install, seq, Action::PartitionStart));
                    }
                    if heal <= horizon {
                        actions.push((heal, seq, Action::Heal));
                    }
                }
                continue;
            }
            let (start, end) = (phase.start(), phase.end());
            let act = match phase {
                ChaosPhase::Partition { .. } | ChaosPhase::Cut { .. } => Action::PartitionStart,
                ChaosPhase::Storm { .. } => Action::StormStart,
                ChaosPhase::Wave { crash, recover, .. } => {
                    Action::Wave(crash.len() as u32, recover.len() as u32)
                }
                ChaosPhase::Heal { .. } => Action::Heal,
                ChaosPhase::Flap { .. } => unreachable!("handled above"),
            };
            if start <= horizon {
                actions.push((start, seq, act));
            }
            if let Some(end) = end.filter(|&end| end <= horizon) {
                actions.push((end, seq, Action::Heal));
            }
        }
        actions.sort_by_key(|&(tick, seq, _)| (tick, seq));

        let mut stats = ChaosStats::default();
        let mut partition_since: Option<u64> = None;
        let mut storm_since: Option<u64> = None;
        for (now, seq, action) in actions {
            match action {
                Action::PartitionStart => {
                    stats.partitions += 1;
                    partition_since = Some(now);
                }
                Action::StormStart => {
                    storm_since = Some(now);
                }
                Action::Wave(crashes, recoveries) => {
                    stats.wave_crashes += crashes;
                    stats.wave_recoveries += recoveries;
                }
                Action::Heal => {
                    // A Storm's own end clears the storm; every other heal
                    // (explicit or a Partition's `until`) clears the cut.
                    if matches!(self.phases[seq], ChaosPhase::Storm { .. }) {
                        if let Some(since) = storm_since.take() {
                            stats.storm_ticks += now - since;
                        }
                    } else if let Some(since) = partition_since.take() {
                        stats.partition_ticks += now - since;
                        stats.last_heal_at = Some(now);
                    }
                }
            }
        }
        if let Some(since) = partition_since {
            stats.partition_ticks += horizon - since;
        }
        if let Some(since) = storm_since {
            stats.storm_ticks += horizon - since;
        }
        stats
    }

    /// Checks the campaign is well-formed for an `n`-process system.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation: an out-of-range
    /// process id, overlapping partition groups, an empty interval, or a
    /// zero storm factor.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for (i, phase) in self.phases.iter().enumerate() {
            let ctx = |msg: String| format!("campaign phase {i}: {msg}");
            let check_pid = |pid: ProcessId| {
                if pid.index() >= n {
                    Err(ctx(format!("process {pid} out of range for n={n}")))
                } else {
                    Ok(())
                }
            };
            match phase {
                ChaosPhase::Partition {
                    groups,
                    from,
                    until,
                } => {
                    if until <= from {
                        return Err(ctx(format!("empty interval {from}..{until}")));
                    }
                    let mut seen = vec![false; n];
                    for group in groups {
                        for &pid in group {
                            check_pid(pid)?;
                            if std::mem::replace(&mut seen[pid.index()], true) {
                                return Err(ctx(format!("process {pid} in two groups")));
                            }
                        }
                    }
                }
                ChaosPhase::Storm {
                    factor,
                    from,
                    until,
                    ..
                } => {
                    if until <= from {
                        return Err(ctx(format!("empty interval {from}..{until}")));
                    }
                    if *factor == 0 {
                        return Err(ctx("storm factor must be >= 1".to_string()));
                    }
                }
                ChaosPhase::Wave { crash, recover, .. } => {
                    for &pid in crash.iter().chain(recover) {
                        check_pid(pid)?;
                    }
                }
                ChaosPhase::Heal { .. } => {}
                ChaosPhase::Cut {
                    blinded,
                    hidden,
                    from,
                    until,
                } => {
                    if until <= from {
                        return Err(ctx(format!("empty interval {from}..{until}")));
                    }
                    if blinded.is_empty() || hidden.is_empty() {
                        return Err(ctx("cut needs both a blinded and a hidden side".to_string()));
                    }
                    let mut seen = vec![false; n];
                    for &pid in blinded.iter().chain(hidden) {
                        check_pid(pid)?;
                        if std::mem::replace(&mut seen[pid.index()], true) {
                            return Err(ctx(format!("process {pid} on both sides of the cut")));
                        }
                    }
                }
                ChaosPhase::Flap {
                    groups,
                    period,
                    from,
                    until,
                } => {
                    if until <= from {
                        return Err(ctx(format!("empty interval {from}..{until}")));
                    }
                    if *period == 0 {
                        return Err(ctx("flap period must be >= 1".to_string()));
                    }
                    let mut seen = vec![false; n];
                    for group in groups {
                        for &pid in group {
                            check_pid(pid)?;
                            if std::mem::replace(&mut seen[pid.index()], true) {
                                return Err(ctx(format!("process {pid} in two groups")));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// What a campaign did to one run — the counters that make chaos outcomes
/// comparable (and, via the fingerprint, replay-witnessed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Partitions installed.
    pub partitions: u32,
    /// Total ticks some partition was active.
    pub partition_ticks: u64,
    /// Total ticks some storm was active.
    pub storm_ticks: u64,
    /// Processes crashed by waves.
    pub wave_crashes: u32,
    /// Processes resurrected by waves.
    pub wave_recoveries: u32,
    /// Tick of the last partition heal, if any partition healed.
    pub last_heal_at: Option<u64>,
}

impl ChaosStats {
    /// Whether the run saw any chaos at all.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != ChaosStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn predicates_see_storms_and_recoveries() {
        let quiet = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![vec![p(0)], vec![p(1)]],
            from: 10,
            until: 20,
        });
        assert!(!quiet.has_storm());
        assert!(!quiet.has_recovery());
        let stormy = quiet.clone().phase(ChaosPhase::Storm {
            factor: 4,
            jitter: 2,
            from: 5,
            until: 9,
        });
        assert!(stormy.has_storm());
        let wavy = quiet.phase(ChaosPhase::Wave {
            crash: vec![p(0)],
            recover: vec![p(1)],
            at: 30,
        });
        assert!(wavy.has_recovery());
        let crash_only = Campaign::new().phase(ChaosPhase::Wave {
            crash: vec![p(0)],
            recover: vec![],
            at: 30,
        });
        assert!(!crash_only.has_recovery());
    }

    #[test]
    fn validate_catches_malformed_phases() {
        let n = 3;
        assert!(Campaign::new().validate(n).is_ok());
        let oob = Campaign::new().phase(ChaosPhase::Wave {
            crash: vec![p(7)],
            recover: vec![],
            at: 1,
        });
        assert!(oob.validate(n).unwrap_err().contains("out of range"));
        let overlap = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![vec![p(0)], vec![p(0)]],
            from: 1,
            until: 2,
        });
        assert!(overlap.validate(n).unwrap_err().contains("two groups"));
        let empty = Campaign::new().phase(ChaosPhase::Partition {
            groups: vec![],
            from: 5,
            until: 5,
        });
        assert!(empty.validate(n).unwrap_err().contains("empty interval"));
        let dead_storm = Campaign::new().phase(ChaosPhase::Storm {
            factor: 0,
            jitter: 0,
            from: 1,
            until: 2,
        });
        assert!(dead_storm.validate(n).unwrap_err().contains("factor"));
    }

    #[test]
    fn phase_extents() {
        let part = ChaosPhase::Partition {
            groups: vec![],
            from: 3,
            until: 9,
        };
        assert_eq!((part.start(), part.end()), (3, Some(9)));
        let heal = ChaosPhase::Heal { at: 7 };
        assert_eq!((heal.start(), heal.end()), (7, None));
    }

    #[test]
    fn planned_stats_mirror_the_schedule() {
        let campaign = Campaign::new()
            .phase(ChaosPhase::Partition {
                groups: vec![vec![p(0)], vec![p(1)]],
                from: 100,
                until: 700,
            })
            .phase(ChaosPhase::Storm {
                factor: 3,
                jitter: 0,
                from: 1_000,
                until: 4_000,
            })
            .phase(ChaosPhase::Wave {
                crash: vec![p(0)],
                recover: vec![p(0)],
                at: 5_000,
            });
        let stats = campaign.planned_stats(10_000);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.partition_ticks, 600);
        assert_eq!(stats.storm_ticks, 3_000);
        assert_eq!(stats.wave_crashes, 1);
        assert_eq!(stats.wave_recoveries, 1);
        assert_eq!(stats.last_heal_at, Some(700));
        // Phases still active at the horizon close there, unhealed; later
        // phases never fire.
        let cut_short = campaign.planned_stats(2_000);
        assert_eq!(cut_short.partition_ticks, 600);
        assert_eq!(cut_short.storm_ticks, 1_000);
        assert_eq!(cut_short.wave_crashes, 0);
    }

    #[test]
    fn flap_spans_cover_the_window_and_clamp_the_tail() {
        // 100..700 with period 150: cut 100..250, healed 250..400,
        // cut 400..550, healed 550..700.
        assert_eq!(flap_spans(150, 100, 700), vec![(100, 250), (400, 550)]);
        // The final cut clamps to heal at `until`.
        assert_eq!(flap_spans(300, 0, 500), vec![(0, 300)]);
        assert_eq!(flap_spans(200, 0, 700), vec![(0, 200), (400, 600)]);
        assert!(flap_spans(0, 0, 100).is_empty(), "degenerate period");
        assert!(flap_spans(10, 50, 50).is_empty(), "empty window");
    }

    #[test]
    fn validate_rejects_zero_period_and_overlapping_flap_groups() {
        let zero_period = Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![p(0)], vec![p(1)]],
            period: 0,
            from: 10,
            until: 100,
        });
        assert!(zero_period.validate(3).unwrap_err().contains("period"));
        let overlap = Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![p(0), p(1)], vec![p(1)]],
            period: 10,
            from: 10,
            until: 100,
        });
        assert!(overlap.validate(3).unwrap_err().contains("two groups"));
        let ok = Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![p(0)], vec![p(1), p(2)]],
            period: 10,
            from: 10,
            until: 100,
        });
        assert!(ok.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_malformed_cuts() {
        let both_sides = Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![p(0)],
            hidden: vec![p(0)],
            from: 1,
            until: 9,
        });
        assert!(both_sides.validate(2).unwrap_err().contains("both sides"));
        let one_sided = Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![p(0)],
            hidden: vec![],
            from: 1,
            until: 9,
        });
        assert!(one_sided.validate(2).unwrap_err().contains("hidden"));
        let empty = Campaign::new().phase(ChaosPhase::Cut {
            blinded: vec![p(0)],
            hidden: vec![p(1)],
            from: 9,
            until: 9,
        });
        assert!(empty.validate(2).unwrap_err().contains("empty interval"));
    }

    #[test]
    fn flap_planned_stats_count_every_half_cycle() {
        let campaign = Campaign::new().phase(ChaosPhase::Flap {
            groups: vec![vec![p(0)], vec![p(1)]],
            period: 150,
            from: 100,
            until: 700,
        });
        let stats = campaign.planned_stats(10_000);
        assert_eq!(stats.partitions, 2, "one install per cut half-cycle");
        assert_eq!(stats.partition_ticks, 300);
        assert_eq!(stats.last_heal_at, Some(550));
        // A horizon inside a cut half-cycle leaves it open, unhealed.
        let cut_short = campaign.planned_stats(450);
        assert_eq!(cut_short.partitions, 2);
        assert_eq!(cut_short.partition_ticks, 150 + 50);
        assert_eq!(cut_short.last_heal_at, Some(250));
    }

    #[test]
    fn cut_predicates_and_window() {
        let campaign = Campaign::new()
            .phase(ChaosPhase::Cut {
                blinded: vec![p(0)],
                hidden: vec![p(1)],
                from: 2_000,
                until: 8_000,
            })
            .phase(ChaosPhase::Flap {
                groups: vec![vec![p(0)], vec![p(1)]],
                period: 500,
                from: 9_000,
                until: 12_000,
            });
        assert!(campaign.has_cut());
        assert!(campaign.has_flap());
        assert!(!campaign.has_storm());
        assert_eq!(campaign.disruption_window(60_000), Some((2_000, 12_000)));
        assert_eq!(campaign.disruption_window(10_000), Some((2_000, 10_000)));
        assert_eq!(Campaign::new().disruption_window(10_000), None);
    }

    #[test]
    fn stats_any_detects_activity() {
        assert!(!ChaosStats::default().any());
        let active = ChaosStats {
            partitions: 1,
            ..ChaosStats::default()
        };
        assert!(active.any());
    }
}
