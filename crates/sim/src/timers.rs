//! Timer behavior models — the AWB₂ assumption made executable.
//!
//! The paper equips every process with a local timer and asks only that the
//! timer be **asymptotically well-behaved** (Section 2.3): writing
//! `T_R(τ, x)` for the real duration a timer set at time `τ` to value `x`
//! takes to expire, there must exist a function `f_R` with
//!
//! * **(f1)** `f_R` non-decreasing in both arguments past some `(τ_f, x_f)`,
//! * **(f2)** `lim_{x→∞} f_R(τ_f, x) = ∞`,
//! * **(f3)** `T_R(τ, x) ≥ f_R(τ, x)` for all `τ ≥ τ_f`, `x ≥ x_f`.
//!
//! Crucially, `T_R` itself may oscillate arbitrarily (Figure 1) and may be
//! completely arbitrary for any finite prefix of the run. The models below
//! realize these shapes, plus an AWB₂-*violating* model used to demonstrate
//! the assumption's necessity.

use crate::rng::SmallRng;

use crate::time::SimTime;

/// Maps a timeout value to an actual expiry duration: `T_R(τ, x)`.
pub trait TimerModel: Send {
    /// Duration (in ticks) until a timer set at `now` to value `x` expires.
    ///
    /// The harness clamps the result to at least 1 tick so timers always
    /// eventually fire (the paper's timers always expire).
    fn duration(&mut self, now: SimTime, x: u64) -> u64;
}

/// The faithful timer: `T(τ, x) = x`.
#[derive(Debug, Clone, Default)]
pub struct ExactTimer;

impl TimerModel for ExactTimer {
    fn duration(&mut self, _now: SimTime, x: u64) -> u64 {
        x
    }
}

/// An affine timer: `T(τ, x) = scale·x + offset`.
///
/// Models clocks that run at the wrong rate (`scale`) with constant
/// processing overhead (`offset`). Satisfies AWB₂ with
/// `f(τ, x) = scale·x + offset` whenever `scale ≥ 1`.
#[derive(Debug, Clone)]
pub struct AffineTimer {
    scale: u64,
    offset: u64,
}

impl AffineTimer {
    /// Creates a timer expiring after `scale·x + offset` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    #[must_use]
    pub fn new(scale: u64, offset: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        AffineTimer { scale, offset }
    }
}

impl TimerModel for AffineTimer {
    fn duration(&mut self, _now: SimTime, x: u64) -> u64 {
        self.scale.saturating_mul(x).saturating_add(self.offset)
    }
}

/// A timer with bounded oscillation above the faithful line:
/// `T(τ, x) = x + U[0, jitter]`.
///
/// This is the Figure-1 shape: `T_R` wobbles but always dominates
/// `f(τ, x) = x`.
#[derive(Debug, Clone)]
pub struct JitteredTimer {
    rng: SmallRng,
    jitter: u64,
}

impl JitteredTimer {
    /// Creates a jittered timer with uniform extra delay in `[0, jitter]`.
    #[must_use]
    pub fn new(seed: u64, jitter: u64) -> Self {
        JitteredTimer {
            rng: SmallRng::seed_from_u64(seed),
            jitter,
        }
    }
}

impl TimerModel for JitteredTimer {
    fn duration(&mut self, _now: SimTime, x: u64) -> u64 {
        x + self.rng.gen_range(0..=self.jitter)
    }
}

/// Arbitrary behavior until `chaos_until`, then delegates to an inner model.
///
/// This realizes the *asymptotic* nature of AWB₂: for any finite prefix the
/// timer may expire after completely arbitrary durations in
/// `[1, chaos_max]`, ignoring `x` entirely; only after `chaos_until` does
/// the domination requirement bite (with `τ_f = chaos_until`).
#[derive(Debug, Clone)]
pub struct ChaoticThen<M> {
    chaos_until: SimTime,
    chaos_max: u64,
    rng: SmallRng,
    then: M,
}

impl<M: TimerModel> ChaoticThen<M> {
    /// Creates a timer that is chaotic before `chaos_until` (durations drawn
    /// uniformly from `[1, chaos_max]`) and behaves like `then` afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `chaos_max == 0`.
    #[must_use]
    pub fn new(chaos_until: SimTime, chaos_max: u64, seed: u64, then: M) -> Self {
        assert!(chaos_max > 0);
        ChaoticThen {
            chaos_until,
            chaos_max,
            rng: SmallRng::seed_from_u64(seed),
            then,
        }
    }

    /// The end of the chaotic prefix (`τ_f`).
    #[must_use]
    pub fn chaos_until(&self) -> SimTime {
        self.chaos_until
    }
}

impl<M: TimerModel> TimerModel for ChaoticThen<M> {
    fn duration(&mut self, now: SimTime, x: u64) -> u64 {
        if now < self.chaos_until {
            self.rng.gen_range(1..=self.chaos_max)
        } else {
            self.then.duration(now, x)
        }
    }
}

/// An AWB₂-**violating** timer: `T(τ, x) = min(x, cap)`.
///
/// Because `T` is bounded, no unbounded `f_R` can be dominated — property
/// (f2)+(f3) fail. The algorithms' timeout values grow with suspicions, but
/// this timer keeps firing early forever. Used by experiment E13 to show
/// elections can fail to stabilize when AWB₂ is dropped.
#[derive(Debug, Clone)]
pub struct StuckLowTimer {
    cap: u64,
}

impl StuckLowTimer {
    /// Creates a timer whose duration never exceeds `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: u64) -> Self {
        assert!(cap > 0);
        StuckLowTimer { cap }
    }
}

impl TimerModel for StuckLowTimer {
    fn duration(&mut self, _now: SimTime, x: u64) -> u64 {
        x.min(self.cap)
    }
}

/// Outcome of checking a timer model against a candidate `f_R` on a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominationReport {
    /// Points `(τ, x, T, f)` where `T < f` — violations of (f3).
    pub violations: Vec<(u64, u64, u64, u64)>,
    /// Number of grid points checked.
    pub checked: usize,
}

impl DominationReport {
    /// Whether the model dominated `f` on every checked point.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks property (f3) — `T_R(τ, x) ≥ f_R(τ, x)` — over a grid of set
/// times `taus` and timeout values `xs`, all taken past `(τ_f, x_f)`.
///
/// This is the executable form of Figure 1: the experiment harness sweeps a
/// grid and verifies the timer curve stays above the candidate `f_R`.
///
/// # Examples
///
/// ```
/// use omega_sim::timers::{check_domination, ExactTimer};
/// use omega_sim::SimTime;
///
/// let report = check_domination(
///     &mut ExactTimer,
///     |_tau, x| x / 2,           // f_R(τ, x) = x/2
///     &[0, 100, 10_000],
///     &[1, 10, 1_000],
/// );
/// assert!(report.holds());
/// ```
pub fn check_domination(
    model: &mut dyn TimerModel,
    f: impl Fn(u64, u64) -> u64,
    taus: &[u64],
    xs: &[u64],
) -> DominationReport {
    let mut violations = Vec::new();
    let mut checked = 0;
    for &tau in taus {
        for &x in xs {
            let t = model.duration(SimTime::from_ticks(tau), x);
            let fv = f(tau, x);
            checked += 1;
            if t < fv {
                violations.push((tau, x, t, fv));
            }
        }
    }
    DominationReport {
        violations,
        checked,
    }
}

/// Checks monotonicity (f1) and unboundedness (f2) of a candidate `f_R` on
/// sample grids. Returns `true` when both sampled properties hold.
#[must_use]
pub fn check_f_properties(
    f: impl Fn(u64, u64) -> u64,
    taus: &[u64],
    xs: &[u64],
    unbounded_probe: u64,
) -> bool {
    // (f1) sampled: f non-decreasing along both axes.
    for w in taus.windows(2) {
        for &x in xs {
            if f(w[0], x) > f(w[1], x) {
                return false;
            }
        }
    }
    for &tau in taus {
        for w in xs.windows(2) {
            if f(tau, w[0]) > f(tau, w[1]) {
                return false;
            }
        }
    }
    // (f2) sampled: f exceeds any probe for large enough x.
    let tau = *taus.first().unwrap_or(&0);
    let mut x = *xs.last().unwrap_or(&1);
    for _ in 0..64 {
        if f(tau, x) >= unbounded_probe {
            return true;
        }
        match x.checked_mul(2) {
            Some(next) => x = next,
            None => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: u64) -> SimTime {
        SimTime::from_ticks(t)
    }

    #[test]
    fn exact_timer_is_identity() {
        let mut m = ExactTimer;
        assert_eq!(m.duration(at(0), 17), 17);
    }

    #[test]
    fn affine_timer_scales() {
        let mut m = AffineTimer::new(3, 5);
        assert_eq!(m.duration(at(0), 10), 35);
        assert_eq!(m.duration(at(99), 0), 5);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn affine_rejects_zero_scale() {
        let _ = AffineTimer::new(0, 1);
    }

    #[test]
    fn jittered_stays_in_band_and_is_deterministic() {
        let mut a = JitteredTimer::new(11, 4);
        let mut b = JitteredTimer::new(11, 4);
        for x in [0u64, 1, 10, 1000] {
            let da = a.duration(at(0), x);
            assert_eq!(da, b.duration(at(0), x));
            assert!(da >= x && da <= x + 4);
        }
    }

    #[test]
    fn chaotic_ignores_x_then_obeys() {
        let mut m = ChaoticThen::new(at(100), 7, 3, ExactTimer);
        assert_eq!(m.chaos_until(), at(100));
        for _ in 0..20 {
            let d = m.duration(at(10), 1_000_000);
            assert!((1..=7).contains(&d), "chaotic phase ignores x");
        }
        assert_eq!(m.duration(at(100), 42), 42, "post-chaos is exact");
    }

    #[test]
    fn stuck_low_caps() {
        let mut m = StuckLowTimer::new(5);
        assert_eq!(m.duration(at(0), 3), 3);
        assert_eq!(m.duration(at(0), 1_000), 5);
    }

    #[test]
    fn domination_holds_for_awb_models() {
        let f = |_tau: u64, x: u64| x / 2;
        let taus = [0u64, 10, 100, 10_000];
        let xs = [1u64, 2, 8, 64, 4096];
        assert!(check_domination(&mut ExactTimer, f, &taus, &xs).holds());
        assert!(check_domination(&mut AffineTimer::new(2, 3), f, &taus, &xs).holds());
        assert!(check_domination(&mut JitteredTimer::new(1, 9), f, &taus, &xs).holds());
    }

    #[test]
    fn domination_holds_for_chaotic_past_tau_f() {
        // Past τ_f = 50, the chaotic model is exact, so it dominates x/2 on
        // any grid entirely past τ_f.
        let mut m = ChaoticThen::new(at(50), 3, 5, ExactTimer);
        let report = check_domination(&mut m, |_t, x| x / 2, &[50, 60, 1000], &[1, 10, 100]);
        assert!(report.holds());
        assert_eq!(report.checked, 9);
    }

    #[test]
    fn domination_fails_for_stuck_low() {
        let mut m = StuckLowTimer::new(4);
        let report = check_domination(&mut m, |_t, x| x / 2, &[0, 10], &[100, 1000]);
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 4);
        let (_, x, t, f) = report.violations[0];
        assert!(t < f);
        assert_eq!(x, 100);
    }

    #[test]
    fn f_property_checker_accepts_good_f() {
        assert!(check_f_properties(
            |_t, x| x / 2,
            &[0, 1, 10],
            &[1, 2, 4],
            1 << 40
        ));
        assert!(check_f_properties(
            |t, x| t / 1000 + x,
            &[0, 1000],
            &[1, 2],
            1 << 40
        ));
    }

    #[test]
    fn f_property_checker_rejects_bad_f() {
        // Decreasing in x: violates (f1).
        assert!(!check_f_properties(
            |_t, x| 1_000_000 - x.min(1_000_000),
            &[0],
            &[1, 2, 4],
            10
        ));
        // Bounded: violates (f2).
        assert!(!check_f_properties(
            |_t, x| x.min(10),
            &[0],
            &[1, 2],
            1 << 40
        ));
    }
}
