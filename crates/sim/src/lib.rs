//! Deterministic discrete-event simulation of asynchronous shared-memory
//! systems, with adversarial schedulers and AWB timer models.
//!
//! The paper proves its algorithms correct against *every* run in which the
//! behavioral assumption AWB holds; this crate makes those runs executable:
//!
//! * [`adversary`] — step-interleaving policies, from fully synchronous to
//!   seeded-random, bursty, and actively leader-stalling schedules, plus the
//!   [`AwbEnvelope`](adversary::AwbEnvelope) wrapper that imposes AWB₁
//!   (an eventually timely writer) on any of them.
//! * [`timers`] — `T_R(τ, x)` families realizing the asymptotically
//!   well-behaved timer definition of AWB₂ (and violations of it), plus the
//!   Figure-1 domination checker.
//! * [`crash`] — scripted crash-stop failures, including "crash whoever is
//!   leader at time t".
//! * [`Simulation`] — the deterministic event loop driving [`Actor`]s on
//!   virtual time, sampling leader estimates and shared-memory statistics.
//!
//! Determinism: all randomness is seeded and the event queue breaks ties by
//! scheduling order, so every run is exactly reproducible.
//!
//! # Performance: the event loop and the two instrumentation modes
//!
//! The simulator is measured in wall-clock events per second
//! ([`RunReport::events_per_sec`]) as well as in model-level reads and
//! writes, and two design choices keep the former high without touching
//! the latter:
//!
//! * **Timer-wheel event queue** — [`event::EventQueue`] buckets
//!   near-horizon events (step delays, timer re-arms — the overwhelming
//!   majority) into O(1) slots and falls back to a binary heap for
//!   far-future events, while popping in exactly the `(time, seq)` order
//!   of a plain heap. Traces are tick-identical either way.
//! * **Instrumentation modes** — a
//!   [`MemorySpace`](omega_registers::MemorySpace) counts register
//!   accesses either *eagerly* (an atomic read-modify-write per access;
//!   correct under any concurrency, used by the OS-thread runtime) or
//!   *deferred* (`omega_registers::Instrumentation::Deferred`: plain
//!   unsynchronized scratch updates, flushed into the shared counters at
//!   every `stats()`/`footprint()` snapshot). The simulation loop is
//!   single-threaded, so the deferred mode is exact here — checkpointed
//!   snapshots are equal tick-for-tick to eager ones (asserted by the
//!   `deferred_instrumentation` parity tests) — and
//!   `OmegaVariant::build` therefore defaults to it for simulator actors,
//!   while `build_processes` (the thread-runtime path) stays eager.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod arrivals;
pub mod chaos;
pub mod crash;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod timers;
pub mod trace;
pub mod wheel;

mod harness;
mod process;
mod time;

pub use chaos::{Campaign, ChaosPhase, ChaosStats};
pub use harness::{RunReport, Simulation, SimulationBuilder, WallClock};
pub use process::{Actor, StepCtx};
pub use time::SimTime;
pub use trace::{Trace, TraceError};

/// Commonly used items for downstream crates and examples.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AwbEnvelope, Bursty, GrowingBursts, LeaderStaller, PartitionedPhases,
        RoundRobin, SeededRandom, Synchronous,
    };
    pub use crate::crash::CrashPlan;
    pub use crate::metrics::StabilizationReport;
    pub use crate::timers::{
        AffineTimer, ChaoticThen, ExactTimer, JitteredTimer, StuckLowTimer, TimerModel,
    };
    pub use crate::{Actor, RunReport, SimTime, Simulation, StepCtx};
}
