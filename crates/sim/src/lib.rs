//! Deterministic discrete-event simulation of asynchronous shared-memory
//! systems, with adversarial schedulers and AWB timer models.
//!
//! The paper proves its algorithms correct against *every* run in which the
//! behavioral assumption AWB holds; this crate makes those runs executable:
//!
//! * [`adversary`] — step-interleaving policies, from fully synchronous to
//!   seeded-random, bursty, and actively leader-stalling schedules, plus the
//!   [`AwbEnvelope`](adversary::AwbEnvelope) wrapper that imposes AWB₁
//!   (an eventually timely writer) on any of them.
//! * [`timers`] — `T_R(τ, x)` families realizing the asymptotically
//!   well-behaved timer definition of AWB₂ (and violations of it), plus the
//!   Figure-1 domination checker.
//! * [`crash`] — scripted crash-stop failures, including "crash whoever is
//!   leader at time t".
//! * [`Simulation`] — the deterministic event loop driving [`Actor`]s on
//!   virtual time, sampling leader estimates and shared-memory statistics.
//!
//! Determinism: all randomness is seeded and the event queue breaks ties by
//! scheduling order, so every run is exactly reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod crash;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod timers;
pub mod trace;

mod harness;
mod process;
mod time;

pub use harness::{RunReport, Simulation, SimulationBuilder};
pub use process::{Actor, StepCtx};
pub use time::SimTime;

/// Commonly used items for downstream crates and examples.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AwbEnvelope, Bursty, GrowingBursts, LeaderStaller, PartitionedPhases,
        RoundRobin, SeededRandom, Synchronous,
    };
    pub use crate::crash::CrashPlan;
    pub use crate::metrics::StabilizationReport;
    pub use crate::timers::{
        AffineTimer, ChaoticThen, ExactTimer, JitteredTimer, StuckLowTimer, TimerModel,
    };
    pub use crate::{Actor, RunReport, SimTime, Simulation, StepCtx};
}
