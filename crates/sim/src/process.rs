//! The interface between simulated processes and the simulator.

use omega_registers::ProcessId;

use crate::time::SimTime;

/// Context handed to an actor on every step or timer expiration.
#[derive(Debug, Clone, Copy)]
pub struct StepCtx {
    /// The actor's own identity.
    pub pid: ProcessId,
    /// Current virtual time. The paper's processes cannot read the global
    /// clock; well-behaved actors use `now` only for tracing, never for
    /// decisions.
    pub now: SimTime,
}

/// A process driven by the simulator.
///
/// The paper's algorithms are structured as three tasks; the simulator owns
/// the scheduling of two of them:
///
/// * **`on_step`** — one iteration of the main loop (task `T2`). The
///   adversary decides the delay between consecutive steps of each process,
///   which is exactly where asynchrony (and the AWB₁ clamp for the timely
///   process) lives.
/// * **`on_timer`** — the body of the timer-expiry task (`T3`). It returns
///   the next timeout value `x` (line 27 of Figure 2:
///   `max_k SUSPICIONS[i][k] + 1`); the simulator converts `x` into an
///   actual expiry delay through the process's
///   [`TimerModel`](crate::timers::TimerModel), which is where the AWB₂
///   timer behavior lives.
///
/// Task `T1` (the `leader()` query) is the actor's client API; the
/// simulator only reads the *cached* estimate via
/// [`current_leader`](Actor::current_leader) so that harness sampling does
/// not inject extra shared-memory reads into the instrumentation.
pub trait Actor: Send {
    /// Executes one step of the main task.
    fn on_step(&mut self, ctx: StepCtx);

    /// Handles a timer expiration and returns the next timeout value to arm
    /// the timer with (in abstract timeout units, not ticks).
    fn on_timer(&mut self, ctx: StepCtx) -> u64;

    /// Timeout value the timer is armed with at start-up.
    fn initial_timeout(&self) -> u64 {
        1
    }

    /// The actor's current leader estimate, if it maintains one.
    ///
    /// Must be a pure accessor (no shared-memory accesses): the harness
    /// polls it at sampling points.
    fn current_leader(&self) -> Option<ProcessId>;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// Minimal actor recording how it was driven; used by harness tests.
    #[derive(Debug, Default)]
    pub struct ProbeActor {
        pub steps: Vec<SimTime>,
        pub timers: Vec<SimTime>,
        pub timeout: u64,
        pub leader: Option<ProcessId>,
    }

    impl ProbeActor {
        pub fn with_timeout(timeout: u64) -> Self {
            ProbeActor {
                timeout,
                ..ProbeActor::default()
            }
        }
    }

    impl Actor for ProbeActor {
        fn on_step(&mut self, ctx: StepCtx) {
            self.steps.push(ctx.now);
        }

        fn on_timer(&mut self, ctx: StepCtx) -> u64 {
            self.timers.push(ctx.now);
            self.timeout
        }

        fn initial_timeout(&self) -> u64 {
            self.timeout
        }

        fn current_leader(&self) -> Option<ProcessId> {
            self.leader
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::ProbeActor;
    use super::*;

    #[test]
    fn probe_actor_records_invocations() {
        let mut a = ProbeActor::with_timeout(4);
        let ctx = StepCtx {
            pid: ProcessId::new(0),
            now: SimTime::from_ticks(3),
        };
        a.on_step(ctx);
        assert_eq!(a.on_timer(ctx), 4);
        assert_eq!(a.initial_timeout(), 4);
        assert_eq!(a.steps, vec![SimTime::from_ticks(3)]);
        assert_eq!(a.timers, vec![SimTime::from_ticks(3)]);
        assert_eq!(a.current_leader(), None);
    }

    #[test]
    fn default_initial_timeout_is_one() {
        struct Noop;
        impl Actor for Noop {
            fn on_step(&mut self, _ctx: StepCtx) {}
            fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
                1
            }
            fn current_leader(&self) -> Option<ProcessId> {
                None
            }
        }
        assert_eq!(Noop.initial_timeout(), 1);
    }
}
