//! Small deterministic pseudo-random number generator.
//!
//! Every random choice in the simulator must be seeded and reproducible —
//! determinism is a harness invariant, not a convenience — so the generator
//! is deliberately self-contained: SplitMix64 seeding into xorshift64*,
//! which passes the statistical bar these schedules need (uniform delays,
//! jitter) with no dependency footprint.

use std::ops::RangeInclusive;

/// A seeded 64-bit generator (xorshift64* with SplitMix64 initialization).
///
/// # Examples
///
/// ```
/// use omega_sim::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// let x = a.gen_range(1..=6);
/// assert_eq!(x, b.gen_range(1..=6));
/// assert!((1..=6).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 finalizer: spreads low-entropy seeds (0, 1, 2, …)
        // across the whole state space and never yields the all-zero state
        // xorshift cannot leave.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SmallRng { state: z | 1 }
    }

    /// The next raw 64-bit value.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform draw from the inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn gen_range(&mut self, range: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range needs a non-empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Multiply-shift rejection-free mapping is overkill here; modulo
        // bias over a 64-bit stream is ≤ span/2^64, far below what any
        // schedule statistic can observe.
        lo + self.next_u64() % (span + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..600 {
            let v = r.gen_range(1..=6);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces drawn: {seen:?}");
        assert_eq!(r.gen_range(9..=9), 9, "degenerate range");
    }

    #[test]
    fn low_entropy_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_rejected() {
        #[allow(clippy::reversed_empty_ranges)]
        let _ = SmallRng::seed_from_u64(0).gen_range(5..=4);
    }
}
