//! Native multi-threaded runtime for the Ω election algorithms.
//!
//! The simulator (`omega-sim`) checks the algorithms against adversarial
//! schedules on virtual time; this crate runs the *same process code* on
//! real operating-system threads and wall-clock timers — the deployment a
//! downstream user would actually run:
//!
//! * [`Node`] — one election process: a `T2` heartbeat thread, a `T3` timer
//!   thread, and the thread-safe `leader()` query.
//! * [`Cluster`] — `n` nodes over one shared memory, with crash injection
//!   and stable-leader polling.
//! * [`coop`] — the cooperative substrate: the same task bodies multiplexed
//!   onto one worker (or a small pool) over a wall-clock deadline wheel,
//!   so real-time elections scale past the `2n`-OS-threads wall
//!   ([`Cluster::start_coop`]).
//! * [`san`] — a simulated storage-area-network disk with atomic block
//!   registers, the deployment substrate the paper's introduction motivates
//!   (network-attached disks as shared memory).
//!
//! Real time plays the role of the AWB assumption here: OS schedulers are
//! (almost always) fair enough that the current leader's heartbeat cadence
//! is eventually bounded (AWB₁), and `thread::sleep(x · tick)` is a timer
//! that trivially dominates `f(τ, x) = x · tick` (AWB₂). Unlike the
//! simulator, none of this is adversarial — which is exactly why both
//! drivers exist.
//!
//! ```no_run
//! use omega_core::OmegaVariant;
//! use omega_runtime::{Cluster, NodeConfig};
//! use std::time::Duration;
//!
//! let cluster = Cluster::start(OmegaVariant::Alg2, 5, NodeConfig::default());
//! let leader = cluster
//!     .await_stable_leader(Duration::from_millis(50), Duration::from_secs(5))
//!     .expect("stable leader");
//! cluster.crash(leader);
//! let next = cluster
//!     .await_stable_leader(Duration::from_millis(50), Duration::from_secs(5))
//!     .expect("failover");
//! assert_ne!(next, leader);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coop;
pub mod san;

mod cluster;
mod node;
mod watch;

pub use cluster::Cluster;
pub use coop::{CoopConfig, CoopRuntime, CoopTask};
pub use node::{LeaderProbe, Node, NodeConfig};
pub use watch::{LeaderEvent, LeaderEvents, LeaderWatch};
