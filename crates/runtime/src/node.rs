//! One Ω process running on real operating-system threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use omega_core::OmegaProcess;
use omega_registers::sync::Mutex;
use omega_registers::ProcessId;

use crate::san::SanLatency;

/// Real-time pacing of a node's two background tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Pause between consecutive `T2` iterations. This is the node's
    /// heartbeat cadence; the OS scheduler's fairness plays the role of the
    /// AWB₁ assumption.
    pub step_interval: Duration,
    /// Real-time length of one abstract timeout unit: a timeout value `x`
    /// from the algorithm sleeps `x × tick`. A faithful (hence trivially
    /// asymptotically well-behaved) timer.
    pub tick: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            step_interval: Duration::from_micros(300),
            tick: Duration::from_micros(500),
        }
    }
}

impl NodeConfig {
    /// Pacing that mimics registers on a storage-area network: accesses are
    /// orders of magnitude slower than local memory, so both the heartbeat
    /// cadence and the timeout unit stretch accordingly.
    ///
    /// This is the **canonical** SAN pacing profile (the scenario crate's
    /// `ThreadDriver::san_like` and `SanDriver` both derive from it), and
    /// it is exactly [`san_paced`](Self::san_paced) at
    /// [`SanLatency::commodity`] — the anchor the stretch is calibrated on.
    #[must_use]
    pub fn san_like() -> Self {
        NodeConfig {
            step_interval: Duration::from_millis(3),
            tick: Duration::from_millis(5),
        }
    }

    /// Pacing stretched to a specific disk latency model: heartbeat
    /// cadence and timeout unit scale linearly with the model's expected
    /// access time, anchored so that [`SanLatency::commodity`] yields
    /// exactly [`san_like`](Self::san_like), and floored at
    /// [`NodeConfig::default`] so fast disks (or
    /// [`SanLatency::instant`], the test profile) never pace *tighter*
    /// than local memory.
    ///
    /// Stretching both knobs by the same factor is what keeps the
    /// election correct on slow media: the algorithms' assumptions (AWB)
    /// only relate step cadence to timeout units, never to absolute time.
    #[must_use]
    pub fn san_paced(latency: SanLatency) -> Self {
        let anchor = SanLatency::commodity().expected();
        let ratio = latency.expected().as_secs_f64() / anchor.as_secs_f64();
        let stretched = NodeConfig::san_like();
        let floor = NodeConfig::default();
        NodeConfig {
            step_interval: stretched
                .step_interval
                .mul_f64(ratio)
                .max(floor.step_interval),
            tick: stretched.tick.mul_f64(ratio).max(floor.tick),
        }
    }
}

struct NodeShared {
    process: Mutex<Box<dyn OmegaProcess>>,
    crashed: AtomicBool,
    stop: AtomicBool,
    steps: AtomicU64,
    timer_fires: AtomicU64,
}

/// A process of the election algorithm hosted on dedicated threads: one for
/// the `T2` heartbeat loop, one for the `T3` timer loop.
///
/// The Ω query [`leader`](Node::leader) can be called from any thread at
/// any time — it is the client-facing primitive. Crashing a node
/// ([`crash`](Node::crash)) halts both task threads permanently, exactly
/// the paper's crash-stop fault model.
pub struct Node {
    pid: ProcessId,
    shared: Arc<NodeShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Node {
    /// Spawns the task threads for `process`.
    #[must_use]
    pub fn spawn(process: Box<dyn OmegaProcess>, config: NodeConfig) -> Self {
        let pid = process.pid();
        let shared = Arc::new(NodeShared {
            process: Mutex::new(process),
            crashed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            steps: AtomicU64::new(0),
            timer_fires: AtomicU64::new(0),
        });

        // Task T2: heartbeat loop.
        let t2 = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{pid}-t2"))
                .spawn(move || loop {
                    if shared.stop.load(Ordering::Acquire) || shared.crashed.load(Ordering::Acquire)
                    {
                        return;
                    }
                    shared.process.lock().t2_step();
                    shared.steps.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(config.step_interval);
                })
                .expect("spawn T2 thread")
        };

        // Task T3: timer loop.
        let t3 = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{pid}-t3"))
                .spawn(move || {
                    let mut timeout = shared.process.lock().initial_timeout();
                    loop {
                        // Sleep in small slices so crash/stop are honored
                        // promptly even when timeouts grow long.
                        let deadline =
                            std::time::Instant::now() + config.tick.saturating_mul(timeout as u32);
                        while std::time::Instant::now() < deadline {
                            if shared.stop.load(Ordering::Acquire)
                                || shared.crashed.load(Ordering::Acquire)
                            {
                                return;
                            }
                            std::thread::sleep(config.tick.min(Duration::from_millis(5)));
                        }
                        if shared.stop.load(Ordering::Acquire)
                            || shared.crashed.load(Ordering::Acquire)
                        {
                            return;
                        }
                        timeout = shared.process.lock().on_timer_expire().max(1);
                        shared.timer_fires.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn T3 thread")
        };

        Node {
            pid,
            shared,
            threads: vec![t2, t3],
        }
    }

    /// This node's process identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The Ω query (task `T1`): the node's current leader estimate.
    ///
    /// Returns `None` if the node has crashed — a crashed process answers
    /// nothing.
    #[must_use]
    pub fn leader(&self) -> Option<ProcessId> {
        if self.is_crashed() {
            return None;
        }
        Some(self.shared.process.lock().leader())
    }

    /// The estimate cached by the last `T2` iteration (cheap; no shared
    /// memory reads).
    #[must_use]
    pub fn cached_leader(&self) -> Option<ProcessId> {
        if self.is_crashed() {
            return None;
        }
        self.shared.process.lock().cached_leader()
    }

    /// Number of `T2` heartbeat iterations executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.shared.steps.load(Ordering::Relaxed)
    }

    /// Number of `T3` timer expirations handled so far.
    #[must_use]
    pub fn timer_fires(&self) -> u64 {
        self.shared.timer_fires.load(Ordering::Relaxed)
    }

    /// Crash-stops the node: both task threads halt permanently.
    pub fn crash(&self) {
        self.shared.crashed.store(true, Ordering::Release);
    }

    /// Whether the node has crashed.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::Acquire)
    }

    /// Stops the task threads and waits for them to exit.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("pid", &self.pid)
            .field("crashed", &self.is_crashed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::{Alg1Memory, Alg1Process};
    use omega_registers::MemorySpace;

    fn single_node() -> (MemorySpace, Node) {
        let space = MemorySpace::new(1);
        let mem = Alg1Memory::new(&space);
        let process = Box::new(Alg1Process::new(mem, ProcessId::new(0)));
        let node = Node::spawn(process, NodeConfig::default());
        (space, node)
    }

    #[test]
    fn san_pacing_factors_are_pinned() {
        // The canonical profile: 3 ms heartbeat, 5 ms timeout unit. The
        // scenario crate re-exports this via `ThreadDriver::san_like`;
        // there must be exactly one definition of these numbers.
        let like = NodeConfig::san_like();
        assert_eq!(like.step_interval, Duration::from_millis(3));
        assert_eq!(like.tick, Duration::from_millis(5));

        // The stretch is anchored at the commodity profile...
        assert_eq!(NodeConfig::san_paced(SanLatency::commodity()), like);
        // ...scales linearly with expected access time...
        let double = SanLatency {
            base: Duration::from_millis(1),
            jitter: Duration::from_millis(1),
        };
        assert_eq!(
            NodeConfig::san_paced(double),
            NodeConfig {
                step_interval: Duration::from_millis(6),
                tick: Duration::from_millis(10),
            }
        );
        // ...and floors at the default pacing for instant disks.
        assert_eq!(
            NodeConfig::san_paced(SanLatency::instant()),
            NodeConfig::default()
        );
    }

    #[test]
    fn node_runs_and_answers_queries() {
        let (space, mut node) = single_node();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(node.leader(), Some(ProcessId::new(0)));
        assert_eq!(node.pid(), ProcessId::new(0));
        node.shutdown();
        // The single process heartbeated: its PROGRESS register was written.
        assert!(space.stats().total_writes() > 0);
    }

    #[test]
    fn crash_halts_progress() {
        let (space, node) = single_node();
        std::thread::sleep(Duration::from_millis(20));
        node.crash();
        assert!(node.is_crashed());
        assert_eq!(node.leader(), None, "crashed nodes answer nothing");
        // Give threads a moment to observe the flag, then measure quiescence.
        std::thread::sleep(Duration::from_millis(20));
        let before = space.stats().total_writes();
        std::thread::sleep(Duration::from_millis(40));
        let after = space.stats().total_writes();
        assert_eq!(before, after, "a crashed process takes no more steps");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let (_space, mut node) = single_node();
        node.shutdown();
        node.shutdown();
        drop(node);
    }

    #[test]
    fn debug_shows_state() {
        let (_space, node) = single_node();
        let out = format!("{node:?}");
        assert!(out.contains("p0"));
    }
}
