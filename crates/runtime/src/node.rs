//! One Ω process running on real operating-system threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_core::OmegaProcess;
use omega_registers::sync::Mutex;
use omega_registers::ProcessId;

use crate::san::SanLatency;

/// Real-time pacing of a node's two background tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Pause between consecutive `T2` iterations. This is the node's
    /// heartbeat cadence; the OS scheduler's fairness plays the role of the
    /// AWB₁ assumption.
    pub step_interval: Duration,
    /// Real-time length of one abstract timeout unit: a timeout value `x`
    /// from the algorithm sleeps `x × tick`. A faithful (hence trivially
    /// asymptotically well-behaved) timer.
    pub tick: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            step_interval: Duration::from_micros(300),
            tick: Duration::from_micros(500),
        }
    }
}

impl NodeConfig {
    /// Pacing that mimics registers on a storage-area network: accesses are
    /// orders of magnitude slower than local memory, so both the heartbeat
    /// cadence and the timeout unit stretch accordingly.
    ///
    /// This is the **canonical** SAN pacing profile (the scenario crate's
    /// `ThreadDriver::san_like` and `SanDriver` both derive from it), and
    /// it is exactly [`san_paced`](Self::san_paced) at
    /// [`SanLatency::commodity`] — the anchor the stretch is calibrated on.
    #[must_use]
    pub fn san_like() -> Self {
        NodeConfig {
            step_interval: Duration::from_millis(3),
            tick: Duration::from_millis(5),
        }
    }

    /// Pacing stretched to a specific disk latency model: heartbeat
    /// cadence and timeout unit scale linearly with the model's expected
    /// access time, anchored so that [`SanLatency::commodity`] yields
    /// exactly [`san_like`](Self::san_like), and floored at
    /// [`NodeConfig::default`] so fast disks (or
    /// [`SanLatency::instant`], the test profile) never pace *tighter*
    /// than local memory.
    ///
    /// Stretching both knobs by the same factor is what keeps the
    /// election correct on slow media: the algorithms' assumptions (AWB)
    /// only relate step cadence to timeout units, never to absolute time.
    #[must_use]
    pub fn san_paced(latency: SanLatency) -> Self {
        let anchor = SanLatency::commodity().expected();
        let ratio = latency.expected().as_secs_f64() / anchor.as_secs_f64();
        let stretched = NodeConfig::san_like();
        let floor = NodeConfig::default();
        NodeConfig {
            step_interval: stretched
                .step_interval
                .mul_f64(ratio)
                .max(floor.step_interval),
            tick: stretched.tick.mul_f64(ratio).max(floor.tick),
        }
    }

    /// Wall-clock length of an abstract timeout value: `timeout × tick`,
    /// saturating. Saturation matters for the step-clock variant, which
    /// arms its real timer once with `NEVER_TIMEOUT` — that must clamp to
    /// a far-future deadline, not truncate to a near one.
    #[must_use]
    pub fn timer_span(&self, timeout: u64) -> Duration {
        self.tick
            .saturating_mul(u32::try_from(timeout).unwrap_or(u32::MAX))
    }
}

/// The substrate-independent half of a node: the Ω process behind a lock,
/// the crash/stop flags, the task counters, and a parker for timed waits.
///
/// Both hosting substrates drive the paper's tasks through the same two
/// re-entrant entry points — [`poll_step`](NodeCore::poll_step) (one `T2`
/// iteration) and [`poll_scan`](NodeCore::poll_scan) (one `T3` expiry) — so
/// the dedicated-thread host ([`Node::spawn`]) and the cooperative
/// scheduler ([`coop`](crate::coop)) execute byte-identical task bodies and
/// differ only in *when* they call them.
pub(crate) struct NodeCore {
    pid: ProcessId,
    process: Mutex<Box<dyn OmegaProcess>>,
    crashed: AtomicBool,
    stop: AtomicBool,
    steps: AtomicU64,
    timer_fires: AtomicU64,
    /// Parker for the `T3` thread's timed wait: `crash`/`halt` notify it so
    /// a node with a long-armed timer reacts immediately instead of at the
    /// next slice of a busy-sleep.
    wake_lock: std::sync::Mutex<()>,
    wake_cv: std::sync::Condvar,
}

impl NodeCore {
    pub(crate) fn new(process: Box<dyn OmegaProcess>) -> Arc<Self> {
        Arc::new(NodeCore {
            pid: process.pid(),
            process: Mutex::new(process),
            crashed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            steps: AtomicU64::new(0),
            timer_fires: AtomicU64::new(0),
            wake_lock: std::sync::Mutex::new(()),
            wake_cv: std::sync::Condvar::new(),
        })
    }

    pub(crate) fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Whether the node must take no further steps (crash-stopped or shut
    /// down).
    pub(crate) fn halted(&self) -> bool {
        self.stop.load(Ordering::Acquire) || self.crashed.load(Ordering::Acquire)
    }

    /// One `T2` heartbeat iteration. Returns `false` — without stepping —
    /// once the node has halted; the host then retires the task.
    pub(crate) fn poll_step(&self) -> bool {
        if self.halted() {
            return false;
        }
        self.process.lock().t2_step();
        self.steps.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// One `T3` timer expiry. Returns the next timeout value (in abstract
    /// units, at least 1) to re-arm with, or `None` once the node has
    /// halted.
    pub(crate) fn poll_scan(&self) -> Option<u64> {
        if self.halted() {
            return None;
        }
        let next = self.process.lock().on_timer_expire().max(1);
        self.timer_fires.fetch_add(1, Ordering::Relaxed);
        Some(next)
    }

    /// Timeout value for the first arming of the timer.
    pub(crate) fn initial_timeout(&self) -> u64 {
        self.process.lock().initial_timeout().max(1)
    }

    pub(crate) fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    pub(crate) fn timer_fires(&self) -> u64 {
        self.timer_fires.load(Ordering::Relaxed)
    }

    pub(crate) fn leader(&self) -> ProcessId {
        self.process.lock().leader()
    }

    pub(crate) fn cached_leader(&self) -> Option<ProcessId> {
        self.process.lock().cached_leader()
    }

    pub(crate) fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    pub(crate) fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
        self.wake();
    }

    pub(crate) fn halt(&self) {
        self.stop.store(true, Ordering::Release);
        self.wake();
    }

    fn wake(&self) {
        // Taking the lock orders the flag store before any waiter's next
        // check: a T3 thread between its `halted()` test and its
        // `wait_timeout` holds the lock, so the notification cannot slip
        // into that gap unseen.
        drop(
            self.wake_lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        self.wake_cv.notify_all();
    }

    /// Parks the calling thread until `deadline` or a wakeup. Returns
    /// `true` when the node halted during (or before) the wait — the
    /// caller must then exit instead of firing its timer.
    pub(crate) fn park_until(&self, deadline: Instant) -> bool {
        let mut guard = self
            .wake_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if self.halted() {
                return true;
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                return false;
            };
            let (g, _) = self
                .wake_cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
    }
}

/// A cheap, clonable, thread-safe view of one node's leader estimate and
/// crash status — what a co-located application (a replicated service's
/// per-node work loop, a client router) consults to gate its actions on Ω
/// without owning the [`Node`] itself.
///
/// Obtained from [`Node::probe`]; remains valid after the node crashes
/// (reporting the crash) and across either hosting substrate.
#[derive(Clone)]
pub struct LeaderProbe {
    core: Arc<NodeCore>,
}

impl LeaderProbe {
    pub(crate) fn new(core: Arc<NodeCore>) -> Self {
        LeaderProbe { core }
    }

    /// The probed node's identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.core.pid()
    }

    /// The estimate cached by the node's last `T2` iteration, or `None`
    /// once the node has crashed. No shared-memory reads.
    #[must_use]
    pub fn leader(&self) -> Option<ProcessId> {
        if self.core.is_crashed() {
            return None;
        }
        self.core.cached_leader()
    }

    /// Whether the probed node has crash-stopped.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.core.is_crashed()
    }
}

impl std::fmt::Debug for LeaderProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderProbe")
            .field("pid", &self.pid())
            .field("crashed", &self.is_crashed())
            .finish()
    }
}

/// A process of the election algorithm hosted on dedicated threads: one for
/// the `T2` heartbeat loop, one for the `T3` timer loop.
///
/// The Ω query [`leader`](Node::leader) can be called from any thread at
/// any time — it is the client-facing primitive. Crashing a node
/// ([`crash`](Node::crash)) halts both task threads permanently, exactly
/// the paper's crash-stop fault model.
///
/// The loop bodies themselves live on the substrate-independent core, so a
/// node can alternatively be hosted on the cooperative scheduler (see
/// [`coop`](crate::coop) and `Cluster::start_coop`) with no thread of its
/// own; such a node answers queries and crash-stops exactly the same way.
pub struct Node {
    core: Arc<NodeCore>,
    threads: Vec<JoinHandle<()>>,
}

impl Node {
    /// Spawns the task threads for `process`.
    #[must_use]
    pub fn spawn(process: Box<dyn OmegaProcess>, config: NodeConfig) -> Self {
        let core = NodeCore::new(process);
        let pid = core.pid();

        // Task T2: heartbeat loop.
        let t2 = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("{pid}-t2"))
                .spawn(move || {
                    while core.poll_step() {
                        std::thread::sleep(config.step_interval);
                    }
                })
                .expect("spawn T2 thread")
        };

        // Task T3: timer loop. The wait parks on the node's condvar, so a
        // quiescent node burns no cycles between expirations and still
        // honors crash/stop immediately (the flags notify the parker).
        let t3 = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("{pid}-t3"))
                .spawn(move || {
                    let mut timeout = core.initial_timeout();
                    loop {
                        let deadline = Instant::now() + config.timer_span(timeout);
                        if core.park_until(deadline) {
                            return;
                        }
                        match core.poll_scan() {
                            Some(next) => timeout = next,
                            None => return,
                        }
                    }
                })
                .expect("spawn T3 thread")
        };

        Node {
            core,
            threads: vec![t2, t3],
        }
    }

    /// Wraps an externally hosted core (no threads of its own): the
    /// cooperative runtime drives the task bodies, this handle serves the
    /// queries.
    pub(crate) fn hosted(core: Arc<NodeCore>) -> Self {
        Node {
            core,
            threads: Vec::new(),
        }
    }

    /// This node's process identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.core.pid()
    }

    /// A clonable [`LeaderProbe`] onto this node, for application layers
    /// that gate work on the node's Ω output.
    #[must_use]
    pub fn probe(&self) -> LeaderProbe {
        LeaderProbe::new(Arc::clone(&self.core))
    }

    /// The Ω query (task `T1`): the node's current leader estimate.
    ///
    /// Returns `None` if the node has crashed — a crashed process answers
    /// nothing.
    #[must_use]
    pub fn leader(&self) -> Option<ProcessId> {
        if self.is_crashed() {
            return None;
        }
        Some(self.core.leader())
    }

    /// The estimate cached by the last `T2` iteration (cheap; no shared
    /// memory reads).
    #[must_use]
    pub fn cached_leader(&self) -> Option<ProcessId> {
        if self.is_crashed() {
            return None;
        }
        self.core.cached_leader()
    }

    /// Number of `T2` heartbeat iterations executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.core.steps()
    }

    /// Number of `T3` timer expirations handled so far.
    #[must_use]
    pub fn timer_fires(&self) -> u64 {
        self.core.timer_fires()
    }

    /// Crash-stops the node: both tasks halt permanently.
    pub fn crash(&self) {
        self.core.crash();
    }

    /// Whether the node has crashed.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.core.is_crashed()
    }

    /// Stops the tasks and waits for any dedicated threads to exit.
    pub fn shutdown(&mut self) {
        self.core.halt();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("pid", &self.pid())
            .field("crashed", &self.is_crashed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::{Alg1Memory, Alg1Process};
    use omega_registers::MemorySpace;

    fn single_node() -> (MemorySpace, Node) {
        let space = MemorySpace::new(1);
        let mem = Alg1Memory::new(&space);
        let process = Box::new(Alg1Process::new(mem, ProcessId::new(0)));
        let node = Node::spawn(process, NodeConfig::default());
        (space, node)
    }

    #[test]
    fn san_pacing_factors_are_pinned() {
        // The canonical profile: 3 ms heartbeat, 5 ms timeout unit. The
        // scenario crate re-exports this via `ThreadDriver::san_like`;
        // there must be exactly one definition of these numbers.
        let like = NodeConfig::san_like();
        assert_eq!(like.step_interval, Duration::from_millis(3));
        assert_eq!(like.tick, Duration::from_millis(5));

        // The stretch is anchored at the commodity profile...
        assert_eq!(NodeConfig::san_paced(SanLatency::commodity()), like);
        // ...scales linearly with expected access time...
        let double = SanLatency {
            base: Duration::from_millis(1),
            jitter: Duration::from_millis(1),
        };
        assert_eq!(
            NodeConfig::san_paced(double),
            NodeConfig {
                step_interval: Duration::from_millis(6),
                tick: Duration::from_millis(10),
            }
        );
        // ...and floors at the default pacing for instant disks.
        assert_eq!(
            NodeConfig::san_paced(SanLatency::instant()),
            NodeConfig::default()
        );
    }

    #[test]
    fn node_runs_and_answers_queries() {
        let (space, mut node) = single_node();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(node.leader(), Some(ProcessId::new(0)));
        assert_eq!(node.pid(), ProcessId::new(0));
        node.shutdown();
        // The single process heartbeated: its PROGRESS register was written.
        assert!(space.stats().total_writes() > 0);
    }

    #[test]
    fn crash_halts_progress() {
        let (space, node) = single_node();
        std::thread::sleep(Duration::from_millis(20));
        node.crash();
        assert!(node.is_crashed());
        assert_eq!(node.leader(), None, "crashed nodes answer nothing");
        // Give threads a moment to observe the flag, then measure quiescence.
        std::thread::sleep(Duration::from_millis(20));
        let before = space.stats().total_writes();
        std::thread::sleep(Duration::from_millis(40));
        let after = space.stats().total_writes();
        assert_eq!(before, after, "a crashed process takes no more steps");
    }

    #[test]
    fn parked_timer_thread_honors_crash_and_shutdown_immediately() {
        // A huge tick arms the first timer deadline hours away. The old
        // loop busy-sliced 5 ms sleeps to stay responsive; the parked wait
        // must instead be *notified* out of the full-length sleep — a join
        // that returns quickly is the proof.
        let space = MemorySpace::new(1);
        let mem = Alg1Memory::new(&space);
        let process = Box::new(Alg1Process::new(mem, ProcessId::new(0)));
        let config = NodeConfig {
            step_interval: Duration::from_micros(300),
            tick: Duration::from_secs(3_600),
        };
        let mut node = Node::spawn(process, config);
        std::thread::sleep(Duration::from_millis(10));
        let start = Instant::now();
        node.crash();
        node.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "T3 must wake from its parked deadline on crash/stop, not sleep it out"
        );
    }

    #[test]
    fn park_until_sleeps_to_deadline_without_spinning() {
        let space = MemorySpace::new(1);
        let mem = Alg1Memory::new(&space);
        let core = NodeCore::new(Box::new(Alg1Process::new(mem, ProcessId::new(0))));
        let start = Instant::now();
        let halted = core.park_until(start + Duration::from_millis(30));
        assert!(!halted, "no halt was requested");
        assert!(start.elapsed() >= Duration::from_millis(30));
        core.halt();
        assert!(core.park_until(start + Duration::from_secs(3_600)));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let (_space, mut node) = single_node();
        node.shutdown();
        node.shutdown();
        drop(node);
    }

    #[test]
    fn debug_shows_state() {
        let (_space, node) = single_node();
        let out = format!("{node:?}");
        assert!(out.contains("p0"));
    }
}
